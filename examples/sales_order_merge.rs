//! The Section 2 story as an application: a month of sales orders lands in
//! the delta of a VBAP-like table and must be merged without downtime.
//!
//! Run with: `cargo run --release --example sales_order_merge -- [scale] [cols]`
//! (defaults: scale 0.002 => 66K rows, 12 columns).
//!
//! Compares the naive merge (the paper's "current systems would merge
//! approx. 20 hours every month") against the optimized parallel merge on
//! the same data, and extrapolates both to the paper's full table size.

use hyrise::merge::{merge_column_naive, parallel::merge_column_parallel};
use hyrise::storage::{DeltaPartition, MainPartition};
use hyrise::workload::VbapScenario;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.002);
    let cols: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let full = VbapScenario::paper();
    let s = full.scaled(scale).with_cols(cols);
    println!(
        "VBAP scenario: {} rows x {} cols, merging {} new rows ({}x scale of the paper's",
        s.rows, s.cols, s.merge_rows, scale
    );
    println!("33M x 230 with 750K-row delta); {threads} threads\n");

    let distinct = s.column_distinct_counts();
    let mut t_naive = Duration::ZERO;
    let mut t_opt = Duration::ZERO;
    for (c, &dc) in distinct.iter().enumerate() {
        let main = MainPartition::from_values(&s.generate_main_column(c, dc));
        let mut delta = DeltaPartition::new();
        for v in s.generate_delta_column(c, dc) {
            delta.insert(v);
        }
        let naive = merge_column_naive(&main, &delta, threads);
        let opt = merge_column_parallel(&main, &delta, threads);
        assert_eq!(
            naive.main.dictionary().values(),
            opt.main.dictionary().values(),
            "both merges must agree"
        );
        t_naive += naive.stats.t_total();
        t_opt += opt.stats.t_total();
    }

    println!("measured at this scale ({} columns):", s.cols);
    println!(
        "  naive merge     : {:>10.1} ms",
        t_naive.as_secs_f64() * 1e3
    );
    println!("  optimized merge : {:>10.1} ms", t_opt.as_secs_f64() * 1e3);
    println!(
        "  speedup         : {:>10.1}x",
        t_naive.as_secs_f64() / t_opt.as_secs_f64().max(1e-12)
    );

    let factor = (full.rows as f64 / s.rows as f64) * (full.cols as f64 / s.cols as f64);
    println!("\nextrapolated to the full VBAP table (33M rows x 230 columns):");
    println!(
        "  naive merge     : {:>10.1} min   (paper measured 12 min on their machine)",
        t_naive.as_secs_f64() * factor / 60.0
    );
    println!(
        "  optimized merge : {:>10.1} min",
        t_opt.as_secs_f64() * factor / 60.0
    );
    println!(
        "  merged updates/s: {:>10.0}      (paper: ~1,000 naive)",
        full.merge_rows as f64 / (t_opt.as_secs_f64() * factor)
    );
}

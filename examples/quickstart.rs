//! Quickstart: the paper's Figure 5/6 example end-to-end on the public API.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Walks through: a dictionary-compressed main partition, a write-optimized
//! delta with its CSB+ tree, and the optimized merge that folds the delta
//! back in — showing the dictionary growth (6 -> 9 values) and the code
//! width growth (3 -> 4 bits) from the paper's running example.

use hyrise::merge::{merge_column_optimized, parallel::merge_column_parallel};
use hyrise::query::Query;
use hyrise::storage::{Attribute, DeltaPartition, MainPartition};

fn main() {
    // The paper's column values, encoded as integers that preserve their
    // lexicographic order:
    // apple=1 bravo=2 charlie=3 delta=4 frank=6 golf=7 hotel=8 inbox=9 young=25
    println!("== Main partition (read-optimized, dictionary-compressed) ==");
    let main = MainPartition::from_values(&[8u64, 4, 6, 4, 1, 3, 9]);
    println!(
        "tuples      : {:?}",
        (0..main.len()).map(|i| main.get(i)).collect::<Vec<_>>()
    );
    println!(
        "dictionary  : {:?} ({} values)",
        main.dictionary().values(),
        main.dictionary().len()
    );
    println!(
        "code width  : {} bits (ceil(log2 {}))",
        main.code_bits(),
        main.dictionary().len()
    );
    println!("codes       : {:?}", main.codes().collect::<Vec<_>>());
    println!("'hotel'(=8) is encoded as {}", main.code(0));
    println!();

    println!("== Delta partition (write-optimized, uncompressed + CSB+ tree) ==");
    let mut delta = DeltaPartition::new();
    for v in [2u64, 3, 7, 3, 25] {
        delta.insert(v);
    }
    println!("tuples      : {:?}", delta.values());
    println!("unique      : {:?}", delta.sorted_unique());
    println!(
        "'charlie'(=3) occurs at delta positions {:?}",
        delta.lookup(&3).unwrap().collect::<Vec<u32>>()
    );
    println!();

    println!("== Queries spanning both partitions (the unified Query builder) ==");
    let mut attr = Attribute::from_main(main.clone());
    for v in [2u64, 3, 7, 3, 25] {
        attr.append(v);
    }
    // Predicates compile to dictionary value-id ranges: the main partition
    // is scanned in code space (no tuple decoded), the delta by value.
    println!(
        "Query::scan(0).eq(3)         -> rows {:?}",
        Query::scan(0).eq(3).run(&attr).into_rows()
    );
    println!(
        "Query::scan(0).between(4, 8) -> rows {:?}",
        Query::scan(0).between(4, 8).run(&attr).into_rows()
    );
    println!(
        "  ...same query .sum(0)      -> {}",
        Query::scan(0).between(4, 8).sum(0).run(&attr).sum()
    );
    println!(
        "  ...same query .min_max(0)  -> {:?}",
        Query::scan(0).between(4, 8).min_max(0).run(&attr).min_max()
    );
    println!();

    println!("== The optimized merge (Section 5.3) ==");
    let merged = merge_column_optimized(&main, &delta);
    println!(
        "merged dictionary : {:?} ({} values)",
        merged.main.dictionary().values(),
        merged.main.dictionary().len()
    );
    println!(
        "code width        : {} bits (grew from 3)",
        merged.main.code_bits()
    );
    println!(
        "'hotel' re-encoded: {} -> {}",
        main.code(0),
        merged.main.code(0)
    );
    println!(
        "merged column     : {:?}",
        (0..merged.main.len())
            .map(|i| merged.main.get(i))
            .collect::<Vec<_>>()
    );
    println!();

    println!("== Same merge, multi-core (Section 6.2) ==");
    let par = merge_column_parallel(&main, &delta, 4);
    assert_eq!(
        par.main.dictionary().values(),
        merged.main.dictionary().values()
    );
    assert_eq!(
        par.main.codes().collect::<Vec<_>>(),
        merged.main.codes().collect::<Vec<_>>(),
        "parallel merge is bit-identical to the serial one"
    );
    println!("parallel merge output is bit-identical to the serial optimized merge ✓");
}

//! The paper's thesis in motion: one read-optimized store serving an
//! OLTP-style mixed workload (Figure 1's distribution) while the merge runs
//! online in the background.
//!
//! Run with: `cargo run --release --example mixed_workload -- [seconds]`
//!
//! Spawns reader/writer threads sampling query types from the Figure 1 OLTP
//! mix against an [`OnlineTable`], plus a background merge thread driven by
//! the Section 4 trigger policy (merge when N_D > 5% N_M). Reports
//! sustained query and update throughput and the number of merges that ran
//! — updates keep flowing *during* merges, which is the point.

use hyrise::merge::{MergePolicy, OnlineTable};
use hyrise::workload::{QueryMix, QueryType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const COLS: usize = 4;

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let workers = 4usize;

    // Bulk-load 200K rows, merge them into main as the starting state.
    let table = Arc::new(OnlineTable::<u64>::new(COLS));
    for i in 0..200_000u64 {
        let row: Vec<u64> = (0..COLS as u64).map(|c| (i * 31 + c) % 10_000).collect();
        table.insert_row(&row);
    }
    table.merge(8, None).expect("initial merge");
    println!(
        "loaded {} rows into main; running the Figure-1 OLTP mix for {seconds}s...",
        table.main_len()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let merges = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Background merge scheduler: the Section 3 strategy (b), constantly
        // merging in the background when the trigger fires.
        {
            let (table, stop, merges) =
                (Arc::clone(&table), Arc::clone(&stop), Arc::clone(&merges));
            s.spawn(move || {
                let policy = MergePolicy {
                    delta_fraction: 0.05,
                    threads: 4,
                    ..MergePolicy::default()
                };
                while !stop.load(Ordering::Relaxed) {
                    if table.maybe_merge(&policy).is_some() {
                        merges.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
        }
        // Mixed-workload workers.
        for w in 0..workers {
            let (table, stop, reads, writes) = (
                Arc::clone(&table),
                Arc::clone(&stop),
                Arc::clone(&reads),
                Arc::clone(&writes),
            );
            s.spawn(move || {
                let mix = QueryMix::oltp();
                let mut rng = StdRng::seed_from_u64(1000 + w as u64);
                while !stop.load(Ordering::Relaxed) {
                    let rows = table.row_count();
                    match mix.sample(&mut rng) {
                        QueryType::Lookup => {
                            let r = rng.gen_range(0..rows);
                            std::hint::black_box(table.get(rng.gen_range(0..COLS), r));
                            reads.fetch_add(1, Ordering::Relaxed);
                        }
                        QueryType::TableScan | QueryType::RangeSelect => {
                            // Sampled scan: touch a window of rows in one column.
                            let col = rng.gen_range(0..COLS);
                            let start = rng.gen_range(0..rows.max(2) - 1);
                            let end = (start + 512).min(rows);
                            let mut acc = 0u64;
                            for r in start..end {
                                acc = acc.wrapping_add(table.get(col, r));
                            }
                            std::hint::black_box(acc);
                            reads.fetch_add(1, Ordering::Relaxed);
                        }
                        QueryType::Insert => {
                            let i = writes.fetch_add(1, Ordering::Relaxed);
                            let row: Vec<u64> =
                                (0..COLS as u64).map(|c| (i * 7 + c) % 10_000).collect();
                            table.insert_row(&row);
                        }
                        QueryType::Modification => {
                            let i = writes.fetch_add(1, Ordering::Relaxed);
                            let old = rng.gen_range(0..rows);
                            let row: Vec<u64> =
                                (0..COLS as u64).map(|c| (i * 11 + c) % 10_000).collect();
                            table.update_row(old, &row);
                        }
                        QueryType::Delete => {
                            writes.fetch_add(1, Ordering::Relaxed);
                            let r = rng.gen_range(0..rows);
                            table.delete_row(r);
                        }
                    }
                }
            });
        }
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
        let elapsed = t0.elapsed().as_secs_f64();
        // Wait for workers to wind down (scope join), then report.
        let _ = elapsed;
    });

    let elapsed = seconds as f64;
    let r = reads.load(Ordering::Relaxed);
    let w = writes.load(Ordering::Relaxed);
    let m = merges.load(Ordering::Relaxed);
    println!("\nresults over {elapsed:.0}s with {workers} workers:");
    println!(
        "  read queries : {:>10}  ({:>9.0}/s)",
        r,
        r as f64 / elapsed
    );
    println!(
        "  writes       : {:>10}  ({:>9.0}/s)",
        w,
        w as f64 / elapsed
    );
    println!("  merges run   : {:>10}  (online, in the background)", m);
    println!(
        "  final state  : {} rows in main, {} awaiting merge, {} valid",
        table.main_len(),
        table.delta_len(),
        table.valid_row_count()
    );
    println!("\npaper context: the analyzed customer systems required 3,000-18,000");
    println!("updates/second sustained; writes above landed in the delta without ever");
    println!("blocking on the {m} merges that ran concurrently.");
}

//! Merge scheduling (Sections 3 and 9): pausing/cancelling a merge under
//! load and throttling its thread budget.
//!
//! Run with: `cargo run --release --example merge_scheduling`
//!
//! The paper treats scheduling as orthogonal but sketches the hooks: "a
//! scheduling algorithm can detect a good point in time to start and even
//! pause and resume the merge process" and "depending on the current system
//! load it can be advisable to prolong the merge process in favor to
//! increase the current insert throughput". This example demonstrates both:
//!
//! 1. A merge cancelled mid-flight leaves the table untouched (atomic
//!    commit) and can be retried later.
//! 2. The same merge run with 1 thread vs all threads shows the resource
//!    trade-off a scheduler would arbitrate.

use hyrise::merge::OnlineTable;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let table = Arc::new(OnlineTable::<u64>::new(8));
    println!("loading 600K rows x 8 columns into the delta...");
    for i in 0..600_000u64 {
        let row: Vec<u64> = (0..8u64).map(|c| (i * 131 + c * 17) % 50_000).collect();
        table.insert_row(&row);
    }

    // --- 1. Cancellation: the scheduler changes its mind. ---
    println!("\n[1] start a merge, cancel it almost immediately:");
    let cancel = Arc::new(AtomicBool::new(false));
    let before_rows = table.row_count();
    let handle = {
        let (table, cancel) = (Arc::clone(&table), Arc::clone(&cancel));
        std::thread::spawn(move || table.merge(2, Some(&cancel)))
    };
    std::thread::sleep(Duration::from_millis(2));
    cancel.store(true, Ordering::Relaxed);
    match handle.join().unwrap() {
        Err(e) => println!("    merge returned: {e}"),
        Ok(_) => println!("    merge finished before the cancel landed (also fine)"),
    }
    assert_eq!(table.row_count(), before_rows, "no rows may be lost");
    println!(
        "    table intact: {} rows, {} still in delta",
        table.row_count(),
        table.delta_len()
    );

    // --- 2. Throttled vs full-resource merge. ---
    if table.delta_len() > 0 {
        println!("\n[2] the scheduler's trade-off — same merge, different thread budgets:");
        // Duplicate the table state for a fair comparison.
        let rows: Vec<Vec<u64>> = (0..table.row_count()).map(|r| table.row(r)).collect();
        let build = || {
            let t = OnlineTable::<u64>::new(8);
            for r in &rows {
                t.insert_row(r);
            }
            t
        };

        let throttled = build();
        let t0 = Instant::now();
        throttled.merge(1, None).unwrap();
        let t_throttled = t0.elapsed();

        let full = build();
        let t0 = Instant::now();
        full.merge(threads, None).unwrap();
        let t_full = t0.elapsed();

        println!(
            "    1 thread   : {:>8.1} ms  (strategy (b): minimize resource footprint)",
            t_throttled.as_secs_f64() * 1e3
        );
        println!(
            "    {threads:>2} threads : {:>8.1} ms  (strategy (a): merge with all resources)",
            t_full.as_secs_f64() * 1e3
        );
        println!(
            "    speedup    : {:>8.1}x",
            t_throttled.as_secs_f64() / t_full.as_secs_f64().max(1e-12)
        );
    }

    // --- 3. And the retried merge commits. ---
    println!("\n[3] retry the cancelled merge to completion:");
    let stats = table.merge(threads, None).unwrap();
    println!(
        "    merged {} columns, {} tuples, in {:.1} ms; delta now {}",
        stats.columns.len(),
        stats.total_tuples(),
        stats.t_wall.as_secs_f64() * 1e3,
        table.delta_len()
    );
}

#!/usr/bin/env bash
# Refresh BENCH_baseline.json — the medians the CI perf-regression gate
# compares against. Run this from the repo root on the machine class CI
# uses, whenever a deliberate perf change (or a new gated bench) lands:
#
#   scripts/refresh_bench_baseline.sh
#
# The gated benches are scan, query_engine, dict_merge, merge_pipeline,
# shard_scale, governor, contended_writers and wal_append; the gate fails
# CI when any median regresses more than 25% (see crates/bench/src/gate.rs).
# wal_append's fsync entry is dropped before the update: its median is a
# property of the runner's disk sync latency, not of this code.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

for bench in scan query_engine dict_merge merge_pipeline shard_scale governor contended_writers wal_append; do
    cargo bench -p hyrise-bench --bench "$bench" | tee -a "$out"
done

filtered="$(mktemp)"
grep -v '^wal_append/fsync/' "$out" > "$filtered"
mv "$filtered" "$out"

cargo run --release -p hyrise-bench --bin bench_gate -- update "$out" \
    --baseline BENCH_baseline.json
echo "refreshed BENCH_baseline.json — commit it with your change"

#!/usr/bin/env bash
# Refresh BENCH_baseline.json — the medians the CI perf-regression gate
# compares against. Run this from the repo root on the machine class CI
# uses, whenever a deliberate perf change (or a new gated bench) lands:
#
#   scripts/refresh_bench_baseline.sh
#
# The gated benches are scan, scan_swar, morsel_scan, query_engine,
# dict_merge, merge_pipeline, shard_scale, governor, contended_writers,
# wal_append and client_swarm;
# the gate fails CI when any median regresses more than 25% — except
# entries with a per-entry override (crates/bench/src/gate.rs
# TOLERANCE_OVERRIDES): wal_append/fsync is gated at a widened 50%,
# because its median tracks the runner's device sync latency.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

for bench in scan scan_swar morsel_scan query_engine dict_merge merge_pipeline shard_scale governor contended_writers wal_append client_swarm; do
    cargo bench -p hyrise-bench --bench "$bench" | tee -a "$out"
done

cargo run --release -p hyrise-bench --bin bench_gate -- update "$out" \
    --baseline BENCH_baseline.json
echo "refreshed BENCH_baseline.json — commit it with your change"

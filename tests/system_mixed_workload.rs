//! Full-system test: the Figure-1 OLTP mix driven against an online table
//! while the background merge scheduler keeps the delta bounded — the
//! paper's combined-workload thesis as one executable assertion.

use hyrise::driver::{drive, row_for_seed, DriverStats};
use hyrise::merge::{MergePolicy, MergeScheduler, OnlineTable};
use hyrise::workload::{QueryMix, UpdateStream};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const COLS: usize = 4;
const INITIAL_ROWS: u64 = 20_000;

fn loaded_table() -> Arc<OnlineTable<u64>> {
    let table = Arc::new(OnlineTable::<u64>::new(COLS));
    for i in 0..INITIAL_ROWS {
        table.insert_row(&row_for_seed(i, COLS));
    }
    table.merge(4, None).expect("initial merge");
    table
}

#[test]
fn oltp_mix_with_background_merging_stays_consistent() {
    let table = loaded_table();
    let policy = MergePolicy {
        delta_fraction: 0.05,
        threads: 2,
        ..MergePolicy::default()
    };
    let sched = MergeScheduler::spawn(Arc::clone(&table), policy, Duration::from_millis(2));

    // Drive the OLTP mix from two concurrent workers.
    let totals: Vec<DriverStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let table = Arc::clone(&table);
                s.spawn(move || {
                    let mut stream = UpdateStream::new(QueryMix::oltp(), INITIAL_ROWS);
                    let mut rng = StdRng::seed_from_u64(100 + w);
                    drive(&table, &mut stream, &mut rng, 15_000)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    // Let the scheduler drain, then stop it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while table.delta_fraction() > policy.delta_fraction && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    sched.shutdown();

    // Accounting: every insert/update appended exactly one row.
    let appended: u64 = totals.iter().map(|t| t.inserts + t.updates).sum();
    assert_eq!(
        table.row_count() as u64,
        INITIAL_ROWS + appended,
        "no rows lost or duplicated"
    );

    // The scheduler really ran and kept the delta bounded.
    assert!(sched.stats().merges >= 1, "background merges must have run");
    assert!(
        table.delta_fraction() <= policy.delta_fraction + 1e-9,
        "delta bounded after drain: {}",
        table.delta_fraction()
    );

    // Visibility: valid rows = all rows minus explicit invalidations.
    let invalidated: u64 = totals.iter().map(|t| t.updates + t.deletes).sum();
    // Deletes/updates may hit the same row twice; valid count can exceed the
    // naive difference but never the total, and never fall below total minus
    // invalidations.
    let valid = table.valid_row_count() as u64;
    let total_rows = table.row_count() as u64;
    assert!(valid <= total_rows);
    assert!(
        valid >= total_rows - invalidated,
        "{valid} vs {total_rows} - {invalidated}"
    );

    // The original rows that were never touched must read back exactly.
    let mut intact = 0;
    for r in (0..INITIAL_ROWS as usize).step_by(999) {
        if table.is_valid(r) {
            assert_eq!(
                table.row(r),
                row_for_seed(r as u64, COLS),
                "row {r} corrupted"
            );
            intact += 1;
        }
    }
    assert!(intact > 0, "some original rows must remain valid");
}

#[test]
fn sustained_update_rate_meets_the_low_target() {
    // A miniature Figure-9 check at system level: insert-only workload with
    // background merging must sustain well over the paper's 3,000 upd/s low
    // target on a modern machine (per-column costs here are far below the
    // 300-column normalization the paper uses, so this is a smoke bound,
    // not the fig9 reproduction).
    let table = loaded_table();
    let policy = MergePolicy {
        delta_fraction: 0.05,
        threads: 4,
        ..MergePolicy::default()
    };
    let sched = MergeScheduler::spawn(Arc::clone(&table), policy, Duration::from_millis(1));

    let n = 50_000u64;
    let t0 = std::time::Instant::now();
    for i in 0..n {
        table.insert_row(&row_for_seed(INITIAL_ROWS + i, COLS));
    }
    // Include the drain in the measured window (Equation 1 charges T_M).
    // The scheduler stops merging once the delta is back under the trigger
    // fraction, so drain to that point, not to empty.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while table.delta_fraction() > policy.delta_fraction && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = t0.elapsed();
    sched.shutdown();

    let rate = n as f64 / elapsed.as_secs_f64();
    if cfg!(debug_assertions) {
        // Debug builds are 10-50x slower; only sanity-check the plumbing.
        assert!(
            rate > 100.0,
            "sustained {rate:.0} upd/s even in a debug build"
        );
    } else {
        assert!(
            rate > 3_000.0,
            "sustained {rate:.0} upd/s must beat the paper's low target"
        );
    }
    assert_eq!(table.row_count() as u64, INITIAL_ROWS + n);
}

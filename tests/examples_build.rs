//! Smoke test: every example under `examples/` must keep building.
//!
//! The examples are the facade crate's public-API walkthroughs; nothing
//! else forces them through the compiler on `cargo test`, so a re-export
//! rename in `src/lib.rs` could silently rot them. This test shells out
//! to the same cargo that is running the test suite and asserts
//! `cargo build --examples` succeeds and covers all four examples.

use std::path::Path;
use std::process::Command;

const EXPECTED_EXAMPLES: [&str; 4] = [
    "merge_scheduling",
    "mixed_workload",
    "quickstart",
    "sales_order_merge",
];

#[test]
fn all_examples_build() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");

    for name in EXPECTED_EXAMPLES {
        let path = Path::new(manifest_dir)
            .join("examples")
            .join(format!("{name}.rs"));
        assert!(
            path.is_file(),
            "expected example source {} is missing",
            path.display()
        );
    }

    let output = Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

//! System-level stress for the sharding layer: concurrent routed inserts
//! and cross-shard fan-out scans must stay correct while the
//! [`ShardedScheduler`] runs per-shard merges underneath — the acceptance
//! bar for the scale-out layer.

use hyrise::driver::{drive_sharded, preload_sharded};
use hyrise::merge::MergePolicy;
use hyrise::query::Query;
use hyrise::shard::{ShardedScheduler, ShardedTable};
use hyrise::workload::ShardedWorkload;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const COLS: usize = 2;
const KEY_DOMAIN: u64 = 500;

/// Rows keep an invariant scans can check mid-flight: col1 = col0 * 7 + 1.
fn linked_row(i: u64) -> [u64; 2] {
    let key = i % KEY_DOMAIN;
    [key, key * 7 + 1]
}

#[test]
fn concurrent_inserts_and_scans_survive_per_shard_merges() {
    const SHARDS: usize = 4;
    let table = Arc::new(
        ShardedTable::<u64>::builder()
            .shards(SHARDS)
            .columns(COLS)
            .build()
            .unwrap(),
    );
    table
        .insert_rows(&(0..20_000u64).map(linked_row).collect::<Vec<_>>())
        .unwrap();
    table.merge_all(2).unwrap();

    let policy = MergePolicy {
        delta_fraction: 0.02,
        threads: 1,
        ..MergePolicy::default()
    };
    let sched = ShardedScheduler::spawn(Arc::clone(&table), policy, 2, Duration::from_millis(1));

    let stop = Arc::new(AtomicBool::new(false));
    let inserted = Arc::new(AtomicU64::new(20_000));
    let scans_run = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        // Two writers: one batched, one row-at-a-time.
        for w in 0..2u64 {
            let (table, stop, inserted) =
                (Arc::clone(&table), Arc::clone(&stop), Arc::clone(&inserted));
            s.spawn(move || {
                let mut i = 1_000_000 * (w + 1);
                while !stop.load(Ordering::Relaxed) {
                    if w == 0 {
                        let batch: Vec<[u64; 2]> = (0..64).map(|k| linked_row(i + k)).collect();
                        table.insert_rows(&batch).unwrap();
                        inserted.fetch_add(64, Ordering::Relaxed);
                        i += 64;
                    } else {
                        table.insert_row(&linked_row(i));
                        inserted.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                }
            });
        }
        // Two fan-out readers verifying invariants while merges run.
        for r in 0..2u64 {
            let (table, stop, scans_run) = (
                Arc::clone(&table),
                Arc::clone(&stop),
                Arc::clone(&scans_run),
            );
            s.spawn(move || {
                let mut probe = r * 31;
                while !stop.load(Ordering::Relaxed) {
                    let key = probe % KEY_DOMAIN;
                    let hits = Query::scan(0).eq(key).run(&*table).into_rows();
                    assert!(
                        hits.len() >= (20_000 / KEY_DOMAIN) as usize,
                        "preloaded occurrences of key {key} must stay visible"
                    );
                    for id in hits {
                        assert_eq!(table.get(id, 0), key, "scan hit holds probed key");
                        assert_eq!(table.get(id, 1), key * 7 + 1, "row invariant");
                    }
                    assert!(Query::scan(0).count().run(&*table).count() >= 20_000);
                    scans_run.fetch_add(1, Ordering::Relaxed);
                    probe += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(500));
        stop.store(true, Ordering::Relaxed);
    });

    // Drain, then check global accounting.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while table.max_delta_fraction() > policy.delta_fraction && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    sched.shutdown();
    let stats = sched.stats();

    assert_eq!(
        table.row_count() as u64,
        inserted.load(Ordering::Relaxed),
        "no rows lost across routed inserts and per-shard merges"
    );
    assert!(
        scans_run.load(Ordering::Relaxed) > 0,
        "readers made progress"
    );
    assert!(stats.merges >= 2, "merges ran during the stress window");
    assert!(
        stats.per_shard.iter().filter(|s| s.merges > 0).count() >= 2,
        "merges spread across shards: {:?}",
        stats.per_shard
    );
    assert!(
        table.max_delta_fraction() <= policy.delta_fraction,
        "every shard's delta bounded after drain"
    );
    // Aggregate cross-check after quiescing: sum(col1) = 7*sum(col0) + N.
    table.merge_all(2).unwrap();
    let keys_sum = Query::scan(0).sum(0).run(&*table).sum();
    let linked_sum = Query::scan(0).sum(1).run(&*table).sum();
    assert_eq!(
        linked_sum,
        keys_sum * 7 + Query::scan(0).count().run(&*table).count() as u128,
        "column invariant holds in aggregate across all shards"
    );
}

#[test]
fn sharded_mix_with_scheduler_stays_consistent() {
    let table = ShardedTable::<u64>::builder()
        .shards(3)
        .columns(3)
        .build()
        .unwrap();
    let workload = ShardedWorkload::oltp(3).with_volumes(4_000, 5_000);
    let ids = preload_sharded(&table, &workload).unwrap();
    assert_eq!(ids.len() as u64, workload.initial_rows());

    let table = Arc::new(table);
    let policy = MergePolicy {
        delta_fraction: 0.05,
        threads: 1,
        ..MergePolicy::default()
    };
    let sched = ShardedScheduler::spawn(Arc::clone(&table), policy, 2, Duration::from_millis(2));
    let stats = drive_sharded(&table, &workload, &ids);
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while table.max_delta_fraction() > policy.delta_fraction && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    sched.shutdown();

    let appended: u64 = stats.iter().map(|s| s.inserts + s.updates).sum();
    assert_eq!(
        table.row_count() as u64,
        workload.initial_rows() + appended,
        "exact accounting under the full mix + background merging"
    );
    let invalidated: u64 = stats.iter().map(|s| s.updates + s.deletes).sum();
    let valid = table.valid_row_count() as u64;
    assert!(valid <= table.row_count() as u64);
    assert!(valid >= table.row_count() as u64 - invalidated);
    assert_eq!(valid as usize, Query::scan(0).count().run(&*table).count());
    assert!(
        sched.stats().merges >= 1,
        "the mix's writes must have triggered background merges"
    );
    assert!(
        table.max_delta_fraction() <= policy.delta_fraction,
        "delta bounded after drain: {}",
        table.max_delta_fraction()
    );
}

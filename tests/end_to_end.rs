//! End-to-end lifecycle tests: a mixed-type table under the insert-only
//! model, merged repeatedly, checked against a plain row-store reference
//! after every wave.

use hyrise::merge::parallel::merge_table_parallel;
use hyrise::query::{table_select, Query};
use hyrise::storage::Value as _;
use hyrise::storage::{AnyValue, ColumnType, Schema, Table, V16};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Plain reference: rows + validity flags.
struct Reference {
    rows: Vec<Vec<AnyValue>>,
    valid: Vec<bool>,
}

impl Reference {
    fn new() -> Self {
        Self {
            rows: Vec::new(),
            valid: Vec::new(),
        }
    }

    fn insert(&mut self, row: Vec<AnyValue>) -> usize {
        self.rows.push(row);
        self.valid.push(true);
        self.rows.len() - 1
    }

    fn update(&mut self, old: usize, row: Vec<AnyValue>) -> usize {
        let id = self.insert(row);
        self.valid[old] = false;
        id
    }

    fn delete(&mut self, row: usize) {
        self.valid[row] = false;
    }
}

fn check_equal(table: &Table, reference: &Reference) {
    assert_eq!(table.row_count(), reference.rows.len());
    for (r, want) in reference.rows.iter().enumerate() {
        assert_eq!(&table.row(r).unwrap(), want, "row {r}");
        assert_eq!(table.is_valid(r), reference.valid[r], "validity of row {r}");
    }
    assert_eq!(
        table.valid_row_count(),
        reference.valid.iter().filter(|v| **v).count()
    );
}

fn random_row(rng: &mut StdRng) -> Vec<AnyValue> {
    vec![
        AnyValue::U64(rng.gen_range(0..500)),
        AnyValue::U32(rng.gen_range(0..100)),
        AnyValue::V16(V16::from_seed(rng.gen_range(0..50))),
    ]
}

#[test]
fn mixed_type_table_through_four_merge_waves() {
    let schema = Schema::new(vec![
        ("order", ColumnType::U64),
        ("qty", ColumnType::U32),
        ("doc", ColumnType::V16),
    ]);
    let mut table = Table::new("orders", schema);
    let mut reference = Reference::new();
    let mut rng = StdRng::seed_from_u64(2024);

    for wave in 0..4 {
        // A mixed batch of inserts, updates and deletes.
        for _ in 0..1_000 {
            match rng.gen_range(0..10) {
                0..=6 => {
                    let row = random_row(&mut rng);
                    table.insert_row(&row).unwrap();
                    reference.insert(row);
                }
                7..=8 if !reference.rows.is_empty() => {
                    let old = rng.gen_range(0..reference.rows.len());
                    let row = random_row(&mut rng);
                    table.update_row(old, &row).unwrap();
                    reference.update(old, row);
                }
                _ if !reference.rows.is_empty() => {
                    let victim = rng.gen_range(0..reference.rows.len());
                    table.delete_row(victim).unwrap();
                    reference.delete(victim);
                }
                _ => {}
            }
        }
        check_equal(&table, &reference);

        // Merge and re-check: the merge must be observably a no-op for reads.
        let stats = merge_table_parallel(&mut table, 4);
        assert_eq!(stats.columns.len(), 3);
        assert_eq!(table.delta_len(), 0, "wave {wave}: everything merged");
        check_equal(&table, &reference);
    }
    assert!(table.main_len() > 3_000, "several waves' rows live in main");
}

#[test]
fn queries_agree_before_and_after_merge() {
    let schema = Schema::new(vec![("k", ColumnType::U64), ("v", ColumnType::U32)]);
    let mut table = Table::new("t", schema);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..3_000 {
        table
            .insert_row(&[
                AnyValue::U64(rng.gen_range(0..50)),
                AnyValue::U32(rng.gen_range(0..10)),
            ])
            .unwrap();
    }
    // Some history churn.
    for _ in 0..300 {
        let old = rng.gen_range(0..table.row_count());
        table
            .update_row(
                old,
                &[AnyValue::U64(rng.gen_range(0..50)), AnyValue::U32(1)],
            )
            .unwrap();
    }

    let probe = 17u64;
    let before_eq = Query::scan(0)
        .eq(AnyValue::U64(probe))
        .run(&table)
        .into_rows();
    let before_pred = table_select(
        &table,
        |row| matches!((row[0], row[1]), (AnyValue::U64(k), AnyValue::U32(v)) if k < 5 && v > 3),
    );

    merge_table_parallel(&mut table, 4);

    assert_eq!(
        Query::scan(0)
            .eq(AnyValue::U64(probe))
            .run(&table)
            .into_rows(),
        before_eq
    );
    let after_pred = table_select(
        &table,
        |row| matches!((row[0], row[1]), (AnyValue::U64(k), AnyValue::U32(v)) if k < 5 && v > 3),
    );
    assert_eq!(after_pred, before_pred);
}

#[test]
fn dictionary_shrinks_memory_versus_uncompressed() {
    // The compression premise (Section 2 / Figure 4): low-cardinality
    // columns compress massively under dictionary + bit-packing.
    let schema = Schema::new(vec![("status", ColumnType::V16)]);
    let mut table = Table::new("t", schema);
    for i in 0..20_000u64 {
        table
            .insert_row(&[AnyValue::V16(V16::from_seed(i % 8))])
            .unwrap();
    }
    let before = table.memory_bytes();
    merge_table_parallel(&mut table, 2);
    let after = table.memory_bytes();
    // 20K x 16B = 320KB raw; merged: 3 bits/tuple + 8-entry dictionary.
    assert!(
        after < before / 10,
        "merge must compress: {before} -> {after}"
    );
    assert!(
        after < 20_000,
        "3-bit codes for 20K tuples stay under 20KB, got {after}"
    );
}

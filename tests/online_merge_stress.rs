//! Concurrency tests for the online merge protocol: inserts, reads and
//! merges racing; cancellation atomicity; trigger-policy loops.

use hyrise::merge::{MergePolicy, OnlineTable};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn seeded_row(i: u64, cols: usize) -> Vec<u64> {
    (0..cols as u64)
        .map(|c| i.wrapping_mul(2654435761).wrapping_add(c) % 100_000)
        .collect()
}

#[test]
fn writers_and_mergers_race_without_losing_rows() {
    const COLS: usize = 3;
    let table = Arc::new(OnlineTable::<u64>::new(COLS));
    for i in 0..5_000 {
        table.insert_row(&seeded_row(i, COLS));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let inserted = Arc::new(AtomicU64::new(5_000));
    let merges_done = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Two writers.
        for w in 0..2u64 {
            let (table, stop, inserted) =
                (Arc::clone(&table), Arc::clone(&stop), Arc::clone(&inserted));
            s.spawn(move || {
                let mut i = 1_000_000 * (w + 1);
                while !stop.load(Ordering::Relaxed) {
                    table.insert_row(&seeded_row(i, COLS));
                    inserted.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // One reader verifying rows it knows exist.
        {
            let (table, stop) = (Arc::clone(&table), Arc::clone(&stop));
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for r in (0..5_000).step_by(431) {
                        assert_eq!(
                            table.row(r),
                            seeded_row(r as u64, COLS),
                            "pre-loaded rows stable"
                        );
                    }
                }
            });
        }
        // One merger hammering merges.
        {
            let (table, stop, merges_done) = (
                Arc::clone(&table),
                Arc::clone(&stop),
                Arc::clone(&merges_done),
            );
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if table.delta_len() > 0 {
                        table.merge(2, None).unwrap();
                        merges_done.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        table.row_count() as u64,
        inserted.load(Ordering::Relaxed),
        "no lost rows"
    );
    assert!(
        merges_done.load(Ordering::Relaxed) > 0,
        "merges actually ran"
    );
    // Everything still readable and correct after the dust settles.
    for r in (0..5_000).step_by(97) {
        assert_eq!(table.row(r), seeded_row(r as u64, 3));
    }
}

#[test]
fn cancellation_under_concurrent_inserts_is_atomic() {
    const COLS: usize = 2;
    let table = Arc::new(OnlineTable::<u64>::new(COLS));
    for i in 0..50_000 {
        table.insert_row(&seeded_row(i, COLS));
    }

    // Run several cancel-racing merges; each either commits fully or not at
    // all; rows are never lost either way.
    for round in 0..5 {
        let cancel = Arc::new(AtomicBool::new(false));
        let before_rows = table.row_count();
        let handle = {
            let (table, cancel) = (Arc::clone(&table), Arc::clone(&cancel));
            std::thread::spawn(move || table.merge(2, Some(&cancel)))
        };
        // Insert while the merge may be running.
        for i in 0..500 {
            table.insert_row(&seeded_row(10_000_000 + round * 1000 + i, COLS));
        }
        cancel.store(true, Ordering::Relaxed);
        let result = handle.join().unwrap();
        assert_eq!(
            table.row_count(),
            before_rows + 500,
            "round {round}: rows conserved"
        );
        match result {
            Ok(_) => assert_eq!(
                table.delta_len(),
                500,
                "committed: only the racing inserts remain"
            ),
            Err(_) => assert!(table.delta_len() >= 500, "cancelled: frozen delta restored"),
        }
        // Spot-check content integrity.
        for r in (0..50_000).step_by(9973) {
            assert_eq!(table.row(r), seeded_row(r as u64, COLS), "round {round}");
        }
    }
    // Final merge to quiesce.
    table.merge(4, None).unwrap();
    assert_eq!(table.delta_len(), 0);
}

#[test]
fn trigger_policy_keeps_delta_bounded() {
    let table = OnlineTable::<u64>::new(2);
    for i in 0..20_000 {
        table.insert_row(&seeded_row(i, 2));
    }
    table.merge(4, None).unwrap();

    let policy = MergePolicy {
        delta_fraction: 0.02,
        threads: 4,
        ..MergePolicy::default()
    };
    let mut merges = 0;
    for i in 0..20_000u64 {
        table.insert_row(&seeded_row(100_000 + i, 2));
        if table.maybe_merge(&policy).is_some() {
            merges += 1;
            // Post-merge the delta is empty; fraction resets.
            assert_eq!(table.delta_len(), 0);
        }
        assert!(
            table.delta_fraction() <= policy.delta_fraction + 1e-4,
            "delta must never exceed the trigger by more than one insert"
        );
    }
    assert!(
        merges >= 10,
        "2% trigger on a growing 20K..40K main: many merges, got {merges}"
    );
    assert_eq!(table.row_count(), 40_000);
}

#[test]
fn update_rate_accounting_on_online_table() {
    // Measure Equation 1 on a real insert+merge cycle.
    let table = OnlineTable::<u64>::new(4);
    let n = 30_000u64;
    let t0 = std::time::Instant::now();
    for i in 0..n {
        table.insert_row(&seeded_row(i, 4));
    }
    let t_u = t0.elapsed();
    let stats = table.merge(4, None).unwrap();
    let rate = hyrise::merge::update_rate(n as usize, t_u, stats.t_wall);
    assert!(rate.is_finite() && rate > 0.0);
    // Sanity: a laptop-class machine does much better than the paper's
    // 1,000 upd/s naive floor on a 4-column table.
    assert!(rate > 1_000.0, "measured {rate} updates/sec");
}

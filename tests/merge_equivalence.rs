//! Cross-algorithm equivalence at integration scale: naive, optimized and
//! parallel merges must produce bit-identical partitions across value types,
//! uniqueness regimes and repeated merge generations.

use hyrise::merge::parallel::merge_column_parallel;
use hyrise::merge::{merge_column_naive, merge_column_optimized};
use hyrise::storage::{DeltaPartition, MainPartition, Value, V16};
use hyrise::workload::values::{values_with_unique, UniqueSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn delta_from<V: Value>(values: &[V]) -> DeltaPartition<V> {
    let mut d = DeltaPartition::new();
    for &v in values {
        d.insert(v);
    }
    d
}

fn assert_all_equal<V: Value>(main: &MainPartition<V>, delta: &DeltaPartition<V>, threads: usize) {
    let a = merge_column_naive(main, delta, threads).main;
    let b = merge_column_optimized(main, delta).main;
    let c = merge_column_parallel(main, delta, threads).main;
    assert_eq!(a.dictionary().values(), b.dictionary().values());
    assert_eq!(b.dictionary().values(), c.dictionary().values());
    let ca: Vec<u64> = a.codes().collect();
    let cb: Vec<u64> = b.codes().collect();
    let cc: Vec<u64> = c.codes().collect();
    assert_eq!(ca, cb);
    assert_eq!(cb, cc);
    assert_eq!(a.code_bits(), c.code_bits());
}

fn scenario<V: Value>(n_m: usize, n_d: usize, lambda_m: f64, lambda_d: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let main_vals: Vec<V> = values_with_unique(&mut rng, UniqueSpec::from_lambda(n_m, lambda_m));
    let main = MainPartition::from_values(&main_vals);
    // Delta half-overlaps the main's domain.
    let spec = UniqueSpec::from_lambda(n_d, lambda_d).offset((main.dictionary().len() / 2) as u64);
    let delta_vals: Vec<V> = values_with_unique(&mut rng, spec);
    let delta = delta_from(&delta_vals);
    for threads in [1, 4, 13] {
        assert_all_equal(&main, &delta, threads);
    }
}

#[test]
fn equivalence_u64_low_uniqueness() {
    scenario::<u64>(60_000, 6_000, 0.01, 0.02, 1);
}

#[test]
fn equivalence_u64_full_uniqueness() {
    scenario::<u64>(40_000, 8_000, 1.0, 1.0, 2);
}

#[test]
fn equivalence_u32_narrow_values() {
    scenario::<u32>(50_000, 5_000, 0.1, 0.1, 3);
}

#[test]
fn equivalence_v16_wide_values() {
    scenario::<V16>(30_000, 3_000, 0.5, 0.5, 4);
}

#[test]
fn equivalence_degenerate_shapes() {
    // Empty delta.
    let main = MainPartition::from_values(&(0u64..10_000).map(|i| i % 37).collect::<Vec<_>>());
    assert_all_equal(&main, &DeltaPartition::new(), 8);
    // Empty main.
    let delta = delta_from(&(0u64..5_000).map(|i| i % 91).collect::<Vec<_>>());
    assert_all_equal(&MainPartition::empty(), &delta, 8);
    // Single-value column.
    let main = MainPartition::from_values(&vec![42u64; 10_000]);
    let delta = delta_from(&vec![42u64; 1_000]);
    assert_all_equal(&main, &delta, 8);
    // Delta entirely new values.
    let main = MainPartition::from_values(&(0u64..5_000).collect::<Vec<_>>());
    let delta = delta_from(&(1_000_000u64..1_003_000).collect::<Vec<_>>());
    assert_all_equal(&main, &delta, 8);
    // Delta entirely duplicate values.
    let delta = delta_from(&(0u64..3_000).collect::<Vec<_>>());
    assert_all_equal(&main, &delta, 8);
}

#[test]
fn five_merge_generations_stay_consistent() {
    // Repeatedly merge successive deltas with the *parallel* algorithm and
    // verify the final column against a from-scratch bulk load of all data.
    let mut rng = StdRng::seed_from_u64(55);
    let mut all: Vec<u64> = values_with_unique(&mut rng, UniqueSpec::from_lambda(20_000, 0.05));
    let mut main = MainPartition::from_values(&all);
    for gen in 0..5u64 {
        let spec = UniqueSpec::from_lambda(4_000, 0.2).offset(gen * 300);
        let delta_vals: Vec<u64> = values_with_unique(&mut rng, spec);
        all.extend_from_slice(&delta_vals);
        main = merge_column_parallel(&main, &delta_from(&delta_vals), 6).main;

        let reference = MainPartition::from_values(&all);
        assert_eq!(
            main.dictionary().values(),
            reference.dictionary().values(),
            "gen {gen}"
        );
        assert_eq!(
            main.codes().collect::<Vec<_>>(),
            reference.codes().collect::<Vec<_>>(),
            "gen {gen}: incremental merges must equal a bulk rebuild"
        );
    }
}

#[test]
fn code_width_growth_across_generations() {
    // Dictionary growth across merges must widen codes exactly per Eq. 4.
    let mut main = MainPartition::from_values(&[0u64, 1]); // 2 values, 1 bit
    assert_eq!(main.code_bits(), 1);
    let mut next_value = 2u64;
    for expected_bits in [2u8, 3, 4, 5, 6, 7, 8] {
        // Double the dictionary by adding as many new values as it holds.
        let add = main.dictionary().len();
        let delta = delta_from(&(next_value..next_value + add as u64).collect::<Vec<_>>());
        next_value += add as u64;
        main = merge_column_parallel(&main, &delta, 4).main;
        assert_eq!(
            main.code_bits(),
            expected_bits,
            "after growing to {} values",
            main.dictionary().len()
        );
    }
}

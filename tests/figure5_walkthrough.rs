//! The paper's Figures 5 and 6, executed end-to-end through the facade
//! crate's public API. Every concrete number in the figures is asserted.

use hyrise::bitpack::bits_for;
use hyrise::merge::parallel::merge_column_parallel;
use hyrise::merge::{merge_column_naive, merge_column_optimized, merge_dictionaries};
use hyrise::storage::{DeltaPartition, MainPartition};

/// Word encoding preserving lexicographic order:
/// apple=1 bravo=2 charlie=3 delta=4 frank=6 golf=7 hotel=8 inbox=9 young=25
const APPLE: u64 = 1;
const BRAVO: u64 = 2;
const CHARLIE: u64 = 3;
const DELTA: u64 = 4;
const FRANK: u64 = 6;
const GOLF: u64 = 7;
const HOTEL: u64 = 8;
const INBOX: u64 = 9;
const YOUNG: u64 = 25;

fn paper_main() -> MainPartition<u64> {
    // Figure 5's main partition fragment [hotel delta frank delta] extended
    // so every dictionary word occurs (the figure shows a 6-word dictionary).
    MainPartition::from_values(&[HOTEL, DELTA, FRANK, DELTA, APPLE, CHARLIE, INBOX])
}

fn paper_delta() -> DeltaPartition<u64> {
    let mut d = DeltaPartition::new();
    for v in [BRAVO, CHARLIE, GOLF, CHARLIE, YOUNG] {
        d.insert(v);
    }
    d
}

#[test]
fn figure5_pre_merge_state() {
    let main = paper_main();
    // "The main partition has a dictionary consisting of its sorted unique
    // values (6 in total). Hence, the encoded values are stored using
    // 3 (= ceil(log 6)) bits."
    assert_eq!(main.dictionary().len(), 6);
    assert_eq!(main.code_bits(), 3);
    assert_eq!(
        main.dictionary().values(),
        &[APPLE, CHARLIE, DELTA, FRANK, HOTEL, INBOX]
    );

    let delta = paper_delta();
    // "there are five tuples ... the CSB+ tree containing all the unique
    // uncompressed values ... the value 'charlie' is inserted at positions
    // 1 and 3."
    assert_eq!(delta.len(), 5);
    assert_eq!(delta.unique_len(), 4);
    assert_eq!(
        delta.lookup(&CHARLIE).unwrap().collect::<Vec<_>>(),
        vec![1, 3]
    );
}

#[test]
fn figure6_step1a_compressed_delta() {
    // "we create the dictionary for the delta partition (with 4 distinct
    // values) and compute the compressed delta partition using 2 bits"
    let delta = paper_delta();
    let c = delta.compress();
    assert_eq!(c.dict, vec![BRAVO, CHARLIE, GOLF, YOUNG]);
    assert_eq!(bits_for(c.dict.len()), 2);
    // Figure 6 shows codes 00 01 10 01 11.
    assert_eq!(c.codes, vec![0, 1, 2, 1, 3]);
}

#[test]
fn figure6_step1b_auxiliary_structures() {
    let main = paper_main();
    let delta = paper_delta();
    let dm = merge_dictionaries(main.dictionary().values(), &delta.compress().dict);
    // Main auxiliary: 0000 0010 0011 0100 0110 0111.
    assert_eq!(dm.x_m, vec![0, 2, 3, 4, 6, 7]);
    // Delta auxiliary: 0001 0010 0101 1000.
    assert_eq!(dm.x_d, vec![1, 2, 5, 8]);
    // Merged dictionary: 9 sorted unique words.
    assert_eq!(
        dm.merged,
        vec![APPLE, BRAVO, CHARLIE, DELTA, FRANK, GOLF, HOTEL, INBOX, YOUNG]
    );
}

#[test]
fn figure6_step2b_lookup_replaces_search() {
    let main = paper_main();
    let delta = paper_delta();
    let out = merge_column_optimized(&main, &delta);
    // "the first compressed value in the main partition has a compressed
    // value of 4 ... the value stored at index 4 in the auxiliary structure
    // ... corresponds to 6" — and 9 unique values need 4 bits.
    assert_eq!(main.code(0), 4);
    assert_eq!(out.main.code(0), 6);
    assert_eq!(out.main.code_bits(), 4);
    assert_eq!(out.main.dictionary().len(), 9);
    // The merged column is main ++ delta, values preserved.
    let got: Vec<u64> = (0..out.main.len()).map(|i| out.main.get(i)).collect();
    assert_eq!(
        got,
        vec![
            HOTEL, DELTA, FRANK, DELTA, APPLE, CHARLIE, INBOX, BRAVO, CHARLIE, GOLF, CHARLIE, YOUNG
        ]
    );
}

#[test]
fn all_algorithms_reproduce_the_figure() {
    let main = paper_main();
    let delta = paper_delta();
    let reference = merge_column_optimized(&main, &delta);
    for (name, out) in [
        ("naive", merge_column_naive(&main, &delta, 2).main),
        ("parallel", merge_column_parallel(&main, &delta, 3).main),
    ] {
        assert_eq!(
            out.dictionary().values(),
            reference.main.dictionary().values(),
            "{name}"
        );
        assert_eq!(
            out.codes().collect::<Vec<_>>(),
            reference.main.codes().collect::<Vec<_>>(),
            "{name} codes"
        );
    }
}

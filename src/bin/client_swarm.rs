//! Client-swarm smoke driver: an in-process server plus N wire clients
//! replaying the Section 2 enterprise mix, with the admission gate and
//! merge schedulers live underneath. This is the CI entry point for the
//! network stack — it exercises preload, mixed reads/writes, throttling,
//! and graceful shutdown end to end and prints a one-screen report.
//!
//! Environment:
//!
//! * `SWARM_SECS` — approximate wall-time budget (default 2): swarm
//!   rounds run until it is spent.
//! * `SWARM_CLIENTS` — concurrent client connections (default 4).
//! * `SWARM_OPS` — operations per client per round (default 400).
//! * `SWARM_DURABLE` — set to `1` to run against a durable (WAL-backed)
//!   table in a scratch directory instead of a volatile one.

use hyrise::server::{drive_swarm, start, CatalogConfig, ServerConfig, TableSpec};
use hyrise::workload::SwarmWorkload;
use std::time::{Duration, Instant};

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let secs = env_or("SWARM_SECS", 2);
    let clients = env_or("SWARM_CLIENTS", 4) as usize;
    let ops = env_or("SWARM_OPS", 400) as usize;
    let durable = env_or("SWARM_DURABLE", 0) == 1;

    let scratch = std::env::temp_dir().join(format!("hyrise-client-swarm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut srv = start(
        "127.0.0.1:0",
        ServerConfig {
            // Workers must out-size the swarm: every client holds its
            // connection for a whole round.
            workers: clients + 4,
            catalog: CatalogConfig {
                data_dir: durable.then(|| scratch.clone()),
                ..CatalogConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = srv.addr().to_string();

    let mut c = hyrise::server::Client::connect(&addr).expect("client connect");
    let spec = if durable {
        TableSpec::durable("swarm", 4, 4, false)
    } else {
        TableSpec::volatile("swarm", 4, 4)
    };
    c.create_table(&spec).expect("create table");

    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut round = 0u64;
    let mut total_ops = 0u64;
    let mut total_rows = 0u64;
    while Instant::now() < deadline {
        // Reseed per round so rounds differ but any round replays exactly.
        let workload = SwarmWorkload::oltp(clients)
            .with_volumes(if round == 0 { 5_000 } else { 0 }, ops)
            .with_insert_batch(8)
            .with_seed(0x5AA5 + round);
        let report = drive_swarm(&addr, "swarm", &workload).expect("swarm round");
        total_ops += report.ops;
        total_rows += report.rows_inserted;
        round += 1;
        println!(
            "round {round}: {} ops in {:?} ({} rows inserted, {} throttled, {} shed, {} dropped)",
            report.ops,
            report.elapsed,
            report.rows_inserted,
            report.throttled,
            report.shed,
            report.dropped
        );
    }

    let stats = c.table_stats("swarm").expect("table stats");
    let gate = srv.gate().stats();
    println!("table: {stats:?}");
    println!("admission: {gate:?}");
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    assert!(round > 0 && total_ops > 0, "swarm did no work");
    assert!(total_rows > 0, "swarm inserted nothing");
    assert!(stats.merges > 0, "schedulers never merged");
    println!("client_swarm ok: {round} rounds, {total_ops} ops, {total_rows} rows");
}

//! Standalone table server: the engine behind a TCP socket.
//!
//! ```text
//! hyrise_server [--addr HOST:PORT] [--workers N] [--data-dir PATH]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:5433`; port 0 picks a
//!   free port and prints it).
//! * `--workers` — connection worker threads (default 8). Each client
//!   connection occupies a worker for its lifetime, so this bounds the
//!   number of concurrent clients.
//! * `--data-dir` — root directory for durable tables (`<dir>/<name>/`).
//!   Without it, only volatile tables can be created.
//!
//! The server runs until stdin closes or a line starting with `q` is
//! entered, then shuts down gracefully (drains workers, stops every
//! table's merge scheduler) and prints the admission counters.

use hyrise::server::{start, AdmissionConfig, CatalogConfig, ServerConfig};
use std::io::BufRead;

fn usage() -> ! {
    eprintln!("usage: hyrise_server [--addr HOST:PORT] [--workers N] [--data-dir PATH]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:5433".to_string();
    let mut workers = 8usize;
    let mut data_dir = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--data-dir" => data_dir = Some(value("--data-dir").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    let config = ServerConfig {
        workers,
        admission: AdmissionConfig::default(),
        catalog: CatalogConfig {
            data_dir,
            ..CatalogConfig::default()
        },
    };
    let mut srv = match start(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("hyrise_server listening on {}", srv.addr());
    println!("(press q<Enter> or close stdin to stop)");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim_start().starts_with('q') => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let stats = srv.gate().stats();
    srv.shutdown();
    println!("admission: {stats:?}");
}

//! Kill -9 crash harness: the executable proof behind the durability
//! claim. The parent process spawns itself in *child* mode against a
//! fresh WAL directory, lets it hammer a deterministic op stream for a
//! random few milliseconds, `SIGKILL`s it mid-flight, recovers the
//! directory, and checks the recovered table against an in-memory model
//! replaying the same stream:
//!
//! * every operation the child **acknowledged** (fsynced side file) must
//!   be present — at most one unacknowledged trailing op may also have
//!   landed (the child acks strictly between ops);
//! * after quiescing merges on both sides, dictionaries and packed code
//!   words must be **byte-identical** — the merge result depends only on
//!   the row value sequence, never on where the kill landed;
//! * the recovered table must keep accepting writes.
//!
//! Rounds alternate the fsync policy (buffered appends survive process
//! death — that is the buffered-WAL contract) and include a sharded
//! round, where each shard independently sits at the acked boundary or
//! one op past it (multi-shard batches may tear; see
//! `ShardedTable::insert_rows`).
//!
//! Environment: `CRASH_ROUNDS` (default 6) rounds per mode set;
//! `CRASH_SEED` overrides the base seed.

use hyrise::merge::{OnlineTable, TableMergeStats};
use hyrise::shard::ShardedTable;
use hyrise::{recover, recover_sharded, Durability};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

const COLS: usize = 2;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn row(seed: u64) -> Vec<u64> {
    (0..COLS as u64)
        .map(|c| splitmix(seed.wrapping_add(c)) % 100_000)
        .collect()
}

/// Op `i` of stream `seed` — identical in child and model.
enum Op {
    InsertBatch(u64, usize),
    Delete(u64),
    Merge,
}

fn op(seed: u64, i: u64) -> Op {
    let r = splitmix(seed.wrapping_mul(0x5851_F42D).wrapping_add(i));
    match r % 10 {
        0..=6 => Op::InsertBatch(r, (r % 48 + 16) as usize),
        7..=8 => Op::Delete(r >> 8),
        _ => Op::Merge,
    }
}

/// Apply op `i` to a single table. Returns false when the op was a no-op
/// (nothing durable changed), so no-ops can be acked without ambiguity.
fn apply_single(t: &OnlineTable<u64>, seed: u64, i: u64) -> hyrise::Result<()> {
    match op(seed, i) {
        Op::InsertBatch(s, n) => {
            let batch: Vec<Vec<u64>> = (0..n as u64).map(|k| row(s.wrapping_add(k))).collect();
            t.insert_rows(&batch)?;
        }
        Op::Delete(target) => {
            let rows = t.row_count();
            if rows > 0 {
                t.try_delete_row(target as usize % rows)?;
            }
        }
        Op::Merge => {
            if t.delta_len() > 0 {
                t.merge_with(hyrise::merge::MergeGrant::with_threads(2), None)
                    .map(|_: TableMergeStats| ())?;
            }
        }
    }
    Ok(())
}

fn apply_sharded(t: &ShardedTable<u64>, seed: u64, i: u64) -> hyrise::Result<()> {
    match op(seed, i) {
        Op::InsertBatch(s, n) => {
            let batch: Vec<Vec<u64>> = (0..n as u64).map(|k| row(s.wrapping_add(k))).collect();
            t.insert_rows(&batch)?;
        }
        Op::Delete(target) => {
            let shard = t.shard(target as usize % t.num_shards());
            let rows = shard.row_count();
            if rows > 0 {
                shard.try_delete_row((target >> 8) as usize % rows)?;
            }
        }
        Op::Merge => {
            t.merge_all(2)?;
        }
    }
    Ok(())
}

fn ack_path(dir: &Path) -> PathBuf {
    dir.with_extension("acks")
}

/// Child mode: run the op stream until killed, acking each completed op.
fn run_child(dir: &Path, seed: u64, fsync: bool, sharded: bool) -> ! {
    let acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(ack_path(dir))
        .expect("open ack file");
    let mut acks = std::io::BufWriter::new(acks);
    let mut ack = |i: u64| {
        acks.write_all(&i.to_le_bytes()).expect("ack write");
        acks.flush().expect("ack flush");
        if fsync {
            acks.get_ref().sync_data().expect("ack sync");
        }
    };
    let durability = Durability::Wal {
        dir: dir.to_path_buf(),
        fsync,
    };
    if sharded {
        let t = ShardedTable::<u64>::builder()
            .shards(3)
            .columns(COLS)
            .durability(durability)
            .build()
            .expect("build sharded");
        for i in 0.. {
            apply_sharded(&t, seed, i).expect("sharded op");
            ack(i);
        }
    } else {
        let t = OnlineTable::<u64>::builder()
            .columns(COLS)
            .durability(durability)
            .build()
            .expect("build table");
        for i in 0.. {
            apply_single(&t, seed, i).expect("single op");
            ack(i);
        }
    }
    unreachable!("the op stream is infinite; the parent kills us");
}

/// Number of acked ops (the file is a flat array of little-endian u64s; a
/// torn trailing ack just rounds down, which the one-op slack absorbs).
fn read_acks(dir: &Path) -> u64 {
    std::fs::read(ack_path(dir)).map_or(0, |b| (b.len() / 8) as u64)
}

fn logical_state(t: &OnlineTable<u64>) -> (usize, Vec<Vec<u64>>, Vec<bool>) {
    let rows = (0..t.row_count())
        .map(|r| (0..COLS).map(|c| t.get(c, r)).collect())
        .collect();
    let valid = (0..t.row_count()).map(|r| t.is_valid(r)).collect();
    (t.row_count(), rows, valid)
}

/// Quiesce both sides and demand byte-identical mains.
fn assert_bytes_identical(a: &OnlineTable<u64>, b: &OnlineTable<u64>, what: &str) {
    if a.delta_len() > 0 {
        a.merge(2, None).expect("quiesce recovered");
    }
    if b.delta_len() > 0 {
        b.merge(2, None).expect("quiesce model");
    }
    let (sa, sb) = (a.snapshot(), b.snapshot());
    for c in 0..COLS {
        assert_eq!(
            sa.col(c).main().dictionary().values(),
            sb.col(c).main().dictionary().values(),
            "{what}: column {c} dictionaries differ"
        );
        assert_eq!(
            sa.col(c).main().packed_codes().words(),
            sb.col(c).main().packed_codes().words(),
            "{what}: column {c} packed code words differ"
        );
    }
    assert_eq!(
        sa.validity().valid_count(),
        sb.validity().valid_count(),
        "{what}: valid counts differ"
    );
}

/// One single-table round: spawn, kill, recover, verify.
fn round_single(exe: &Path, scratch: &Path, seed: u64, fsync: bool, delay_ms: u64) {
    let dir = scratch.join(format!("single-{seed:x}"));
    let mut child = Command::new(exe)
        .args([
            "child",
            dir.to_str().unwrap(),
            &seed.to_string(),
            &(fsync as u8).to_string(),
            "0",
        ])
        .spawn()
        .expect("spawn child");
    std::thread::sleep(Duration::from_millis(delay_ms));
    child.kill().expect("SIGKILL child"); // SIGKILL on unix: no cleanup runs
    child.wait().expect("reap child");

    let acked = read_acks(&dir);
    let recovered: OnlineTable<u64> = recover(&dir).expect("recover after kill");

    // The model replays acked ops; the recovered state must equal that,
    // or that plus exactly the one op that was in flight at kill time.
    let model = OnlineTable::<u64>::new(COLS);
    for i in 0..acked {
        apply_single(&model, seed, i).expect("model op");
    }
    let got = logical_state(&recovered);
    if got != logical_state(&model) {
        apply_single(&model, seed, acked).expect("model slack op");
        assert_eq!(
            got,
            logical_state(&model),
            "fsync={fsync}: recovered state matches neither {acked} acked \
             ops nor one op past them"
        );
    }
    assert_bytes_identical(&recovered, &model, "single");

    // Still alive: the recovered table keeps logging and recovering.
    recovered
        .insert_rows(&[row(0xDEAD)])
        .expect("post-crash insert");
    let n = recovered.row_count();
    drop(recovered);
    let again: OnlineTable<u64> = recover(&dir).expect("second recovery");
    assert_eq!(again.row_count(), n, "post-crash write survived");
    println!("  single fsync={fsync} delay={delay_ms}ms: acked={acked}, rows={n} ok");
}

/// One sharded round: every shard independently sits at the acked
/// boundary or one op past it.
fn round_sharded(exe: &Path, scratch: &Path, seed: u64, delay_ms: u64) {
    let dir = scratch.join(format!("sharded-{seed:x}"));
    let mut child = Command::new(exe)
        .args(["child", dir.to_str().unwrap(), &seed.to_string(), "0", "1"])
        .spawn()
        .expect("spawn child");
    std::thread::sleep(Duration::from_millis(delay_ms));
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    let acked = read_acks(&dir);
    let recovered: ShardedTable<u64> = recover_sharded(&dir).expect("recover sharded");
    let model = ShardedTable::<u64>::builder()
        .shards(3)
        .columns(COLS)
        .build()
        .expect("model");
    for i in 0..acked {
        apply_sharded(&model, seed, i).expect("model op");
    }
    // Per-shard slack: op `acked` may have reached any subset of shards
    // (documented tearing), so compare each shard against the model at
    // the boundary, then once more after the slack op.
    let before: Vec<_> = recovered
        .shards()
        .iter()
        .zip(model.shards())
        .map(|(r, m)| (logical_state(r) == logical_state(m), logical_state(r)))
        .collect();
    apply_sharded(&model, seed, acked).expect("model slack op");
    for (s, ((matched, got), m)) in before.iter().zip(model.shards()).enumerate() {
        assert!(
            *matched || *got == logical_state(m),
            "shard {s}: state matches neither side of the acked boundary"
        );
    }
    for (s, (r, m)) in recovered.shards().iter().zip(model.shards()).enumerate() {
        // Byte-identity needs both sides at the same prefix; skip shards
        // sitting on the torn side (their logical equality was asserted
        // above against the slack model).
        if logical_state(r) == logical_state(m) {
            assert_bytes_identical(r, m, &format!("shard {s}"));
        }
    }
    println!("  sharded delay={delay_ms}ms: acked={acked} ok");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 6 && args[1] == "child" {
        let dir = PathBuf::from(&args[2]);
        let seed: u64 = args[3].parse().expect("seed");
        let fsync = args[4] == "1";
        let sharded = args[5] == "1";
        run_child(&dir, seed, fsync, sharded);
    }

    let rounds: u64 = std::env::var("CRASH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let base_seed: u64 = std::env::var("CRASH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap()
                .as_nanos() as u64
        });
    println!("crash harness: {rounds} rounds per mode, base seed {base_seed:#x}");

    let exe = std::env::current_exe().expect("own path");
    let scratch = std::env::temp_dir().join(format!("hyrise-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    for r in 0..rounds {
        let seed = splitmix(base_seed.wrapping_add(r));
        // Delays sweep from "killed during the very first ops" to "killed
        // deep into merge churn".
        let delay = 10 + seed % 190;
        round_single(&exe, &scratch, seed, r % 2 == 0, delay);
    }
    for r in 0..rounds.div_ceil(2) {
        let seed = splitmix(base_seed.wrapping_add(0x5AD + r));
        round_sharded(&exe, &scratch, seed, 10 + seed % 190);
    }

    let _ = std::fs::remove_dir_all(&scratch);
    println!("crash harness: all rounds byte-identical after recovery");
}

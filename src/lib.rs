//! # hyrise — facade crate
//!
//! Reproduction of *Fast Updates on Read-Optimized Databases Using Multi-Core
//! CPUs* (Krueger et al., VLDB 2011): a dictionary-encoded in-memory column
//! store with a write-optimized delta partition and the paper's linear-time,
//! architecture-aware, multi-core delta merge.
//!
//! This crate re-exports the workspace crates under stable module names:
//!
//! * [`bitpack`] — fixed-width bit-packed vectors (`E_C` bits per code).
//! * [`csb`] — the CSB+ tree indexing the delta partition.
//! * [`storage`] — dictionaries, main/delta partitions, attributes, tables.
//! * [`merge`] — the merge algorithms (naive, optimized, parallel), the
//!   analytical cost model and the online merge manager.
//! * [`shard`] — the scale-out layer: [`shard::ShardedTable`] partitions
//!   rows across N online tables and [`shard::ShardedScheduler`] grants
//!   merge threads across shards.
//! * [`query`] — the unified query layer: the [`query::Query`] builder and
//!   the one [`query::Executor`] trait behind every backend (attribute,
//!   snapshot, online table, sharded table, heterogeneous table), with
//!   equality/range predicates pushed down to dictionary value-id space.
//! * [`workload`] — the Section 2 enterprise-data model and generators.
//! * [`server`] — the network front-end: the length-prefixed wire
//!   protocol, the multi-tenant table [`server::Catalog`], the
//!   governor-driven [`server::AdmissionGate`], the TCP server, the
//!   [`server::Client`] library and the [`server::drive_swarm`] driver.
//!
//! Durability lives in [`merge`]: build a crash-durable table with
//! [`TableBuilder`] + [`Durability::Wal`], and reopen it after a crash
//! with [`recover`] (or [`recover_sharded`] for a partitioned table).
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` for the
//! paper-to-module map.

pub mod driver;

pub use hyrise_bitpack as bitpack;
pub use hyrise_core as merge;
pub use hyrise_core::shard;
pub use hyrise_core::{
    recover, recover_sharded, recover_with, Durability, Error, Result, ShardedTableBuilder,
    TableBuilder, TableConfig,
};
pub use hyrise_csb as csb;
pub use hyrise_query as query;
pub use hyrise_server as server;
pub use hyrise_storage as storage;
pub use hyrise_workload as workload;

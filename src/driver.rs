//! Mixed-workload driver: executes a [`workload`](crate::workload) operation
//! stream against an [`OnlineTable`], closing the
//! loop between the Section 2 workload characterization and the merge
//! machinery — the "single system for both transactional and analytical
//! workloads" the paper argues for, in miniature.
//!
//! [`drive_sharded`] is the scale-out version: one worker thread per shard
//! replays a [`ShardedWorkload`] stream against a [`ShardedTable`] facade —
//! lookups and updates address rows by global `(shard, row)` id, range
//! selects fan out across shards, and window scans read per-shard
//! snapshots, all while a `ShardedScheduler` (owned by the caller) keeps
//! each shard's delta bounded.

use crate::merge::{OnlineTable, Result, TableConfig};
use crate::shard::{ShardRowId, ShardedTable};
use crate::workload::{Operation, ShardedWorkload, UpdateStream};
use hyrise_query::Query;
use hyrise_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Execution counters for a driven workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Point lookups executed.
    pub lookups: u64,
    /// Scan windows executed (and tuples touched).
    pub scans: u64,
    /// Tuples touched by scans.
    pub scanned_tuples: u64,
    /// Range selects executed.
    pub ranges: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows updated (new version + invalidation).
    pub updates: u64,
    /// Rows deleted (invalidated).
    pub deletes: u64,
    /// Checksum accumulated from reads (prevents dead-code elimination and
    /// doubles as a determinism probe).
    pub checksum: u64,
}

impl DriverStats {
    /// Total write operations.
    pub fn writes(&self) -> u64 {
        self.inserts + self.updates + self.deletes
    }

    /// Total read operations.
    pub fn reads(&self) -> u64 {
        self.lookups + self.scans + self.ranges
    }
}

/// Build the row written for value seed `seed` (deterministic, one value per
/// column derived from the seed).
pub fn row_for_seed<V: Value>(seed: u64, cols: usize) -> Vec<V> {
    (0..cols as u64)
        .map(|c| V::from_seed((seed.wrapping_mul(31).wrapping_add(c)) & 0xFFFF_FFFF))
        .collect()
}

/// Execute `n` operations from `stream` against `table`. Row indices from
/// the stream are clamped to the live table (the stream's logical row count
/// tracks inserts but the driver is authoritative).
pub fn drive<V: Value, R: Rng>(
    table: &OnlineTable<V>,
    stream: &mut UpdateStream,
    rng: &mut R,
    n: usize,
) -> DriverStats {
    let cols = table.num_columns();
    let mut stats = DriverStats::default();
    for _ in 0..n {
        match stream.next_op(rng) {
            Operation::Lookup { row } => {
                let rows = table.row_count();
                if rows > 0 {
                    let r = (row as usize).min(rows - 1);
                    stats.checksum = stats
                        .checksum
                        .wrapping_add(table.get(r % cols.max(1) % cols, r).to_u64_lossy());
                    stats.lookups += 1;
                }
            }
            Operation::Scan { start, len } => {
                // Window scans bypass the query engine (row-at-a-time
                // reads), so they register with the governor's read
                // counters explicitly — the scheduler should see this
                // bandwidth consumer like any engine run.
                let _read = crate::merge::governor::begin_read();
                let rows = table.row_count();
                if rows > 0 {
                    let s = (start as usize).min(rows - 1);
                    let e = (s + len as usize).min(rows);
                    let mut acc = 0u64;
                    for r in s..e {
                        acc = acc.wrapping_add(table.get(0, r).to_u64_lossy());
                    }
                    stats.checksum = stats.checksum.wrapping_add(acc);
                    stats.scans += 1;
                    stats.scanned_tuples += (e - s) as u64;
                }
            }
            Operation::RangeSelect { lo, hi } => {
                // One engine call against the table's snapshot executor:
                // the predicate is pushed down to dictionary value-id space
                // on the merged main partition, and the scan itself runs
                // without the table lock.
                let hits = Query::scan(0)
                    .between(V::from_seed(lo), V::from_seed(hi))
                    .count()
                    .run(table)
                    .count();
                stats.checksum = stats.checksum.wrapping_add(hits as u64);
                stats.ranges += 1;
            }
            Operation::Insert { seed } => {
                table.insert_row(&row_for_seed::<V>(seed, cols));
                stats.inserts += 1;
            }
            Operation::Update { row, seed } => {
                let rows = table.row_count();
                if rows > 0 {
                    table.update_row((row as usize).min(rows - 1), &row_for_seed::<V>(seed, cols));
                    stats.updates += 1;
                }
            }
            Operation::Delete { row } => {
                let rows = table.row_count();
                if rows > 0 {
                    table.delete_row((row as usize).min(rows - 1));
                    stats.deletes += 1;
                }
            }
        }
    }
    stats
}

/// Build the hash-sharded table a [`ShardedWorkload`] scenario runs
/// against, from one [`TableConfig`]: shard count from the workload,
/// columns/durability/governor from the config. With
/// [`crate::merge::Durability::Wal`] each shard logs into its own
/// sub-directory under the configured root.
pub fn sharded_table_for<V: Value>(
    workload: &ShardedWorkload,
    config: TableConfig,
) -> Result<ShardedTable<V>> {
    let mut b = ShardedTable::<V>::builder()
        .shards(workload.shards)
        .columns(config.columns)
        .durability(config.durability);
    if let Some(g) = config.governor {
        b = b.governor(g);
    }
    b.build()
}

/// Preload a [`ShardedTable`] with the scenario's initial rows (batched
/// routing, then a quiescing merge of every shard) and return their global
/// ids in seed order. Merges run under the default
/// [`crate::merge::MergeGrant`]; use [`preload_sharded_with`] to pick a
/// strategy or cap the merge's peak memory. Fails only on a durable
/// table whose WAL append or merge checkpoint fails.
pub fn preload_sharded<V: Value>(
    table: &ShardedTable<V>,
    workload: &ShardedWorkload,
) -> Result<Vec<ShardRowId>> {
    preload_sharded_with(table, workload, crate::merge::MergeGrant::default())
}

/// As [`preload_sharded`], with an explicit merge grant: the strategy,
/// thread count and [`crate::merge::MergeBudget`] apply to every shard's
/// quiescing merge, so a budget of K columns bounds the preload's peak
/// extra memory to the largest K-column working set per shard.
pub fn preload_sharded_with<V: Value>(
    table: &ShardedTable<V>,
    workload: &ShardedWorkload,
    grant: crate::merge::MergeGrant,
) -> Result<Vec<ShardRowId>> {
    let cols = table.num_columns();
    let rows: Vec<Vec<V>> = (0..workload.initial_rows())
        .map(|i| row_for_seed(i, cols))
        .collect();
    let ids = table.insert_rows(&rows)?;
    table.merge_all_with(grant)?;
    Ok(ids)
}

/// Execute the sharded scenario: `workload.shards` worker threads, each
/// replaying its own deterministic stream against the shared facade.
/// `preloaded` are the ids returned by [`preload_sharded`]; workers address
/// reads/updates against them plus their own appended rows. Returns one
/// [`DriverStats`] per worker.
pub fn drive_sharded<V: Value>(
    table: &ShardedTable<V>,
    workload: &ShardedWorkload,
    preloaded: &[ShardRowId],
) -> Vec<DriverStats> {
    let cols = table.num_columns();
    let base: Arc<Vec<ShardRowId>> = Arc::new(preloaded.to_vec());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workload.shards)
            .map(|w| {
                let base = Arc::clone(&base);
                s.spawn(move || {
                    let mut stream = workload.stream(w);
                    let mut rng = StdRng::seed_from_u64(workload.shard_seed(w));
                    let mut stats = DriverStats::default();
                    // Rows this worker appended (readable without races; other
                    // workers' appends are invisible to its id space).
                    let mut own: Vec<ShardRowId> = Vec::new();
                    // Worker-unique value seeds: mix the worker index into
                    // the low bits (`row_for_seed` masks to 32 bits, so a
                    // high-bit tag would vanish).
                    let tag = (w as u64 + 1).wrapping_mul(0x9E37_79B9) << 16;
                    // None until this worker knows at least one row (empty
                    // preload and no own inserts yet): row-addressed ops are
                    // skipped rather than underflowing.
                    let pick = |row: u64, own: &[ShardRowId]| -> Option<ShardRowId> {
                        let n = base.len() + own.len();
                        let idx = (row as usize).min(n.checked_sub(1)?);
                        Some(if idx < base.len() {
                            base[idx]
                        } else {
                            own[idx - base.len()]
                        })
                    };
                    for _ in 0..workload.ops_per_shard {
                        match stream.next_op(&mut rng) {
                            Operation::Lookup { row } => {
                                let Some(id) = pick(row, &own) else { continue };
                                stats.checksum =
                                    stats.checksum.wrapping_add(table.get(id, 0).to_u64_lossy());
                                stats.lookups += 1;
                            }
                            Operation::Scan { start, len } => {
                                // Window scan over one shard's snapshot: reads
                                // are lock-free and consistent mid-merge, and
                                // register as governor read pressure (they
                                // bypass the engine's own counters).
                                let _read = crate::merge::governor::begin_read();
                                let shard = (start as usize) % table.num_shards();
                                let snap = table.shard(shard).snapshot();
                                let rows = snap.row_count();
                                if rows > 0 {
                                    let s0 = (start as usize) % rows;
                                    let e = (s0 + len as usize).min(rows);
                                    let mut acc = 0u64;
                                    for r in s0..e {
                                        acc = acc.wrapping_add(snap.col(0).get(r).to_u64_lossy());
                                    }
                                    stats.checksum = stats.checksum.wrapping_add(acc);
                                    stats.scanned_tuples += (e - s0) as u64;
                                }
                                stats.scans += 1;
                            }
                            Operation::RangeSelect { lo, hi } => {
                                // Cross-shard fan-out on the key column —
                                // one query, executed per-shard and merged.
                                let hits = Query::scan(table.key_col())
                                    .between(V::from_seed(lo), V::from_seed(hi))
                                    .count()
                                    .run(table)
                                    .count();
                                stats.checksum = stats.checksum.wrapping_add(hits as u64);
                                stats.ranges += 1;
                            }
                            Operation::Insert { seed } => {
                                own.push(table.insert_row(&row_for_seed::<V>(tag | seed, cols)));
                                stats.inserts += 1;
                            }
                            Operation::Update { row, seed } => {
                                let Some(old) = pick(row, &own) else { continue };
                                own.push(
                                    table.update_row(old, &row_for_seed::<V>(tag | seed, cols)),
                                );
                                stats.updates += 1;
                            }
                            Operation::Delete { row } => {
                                let Some(id) = pick(row, &own) else { continue };
                                table.delete_row(id);
                                stats.deletes += 1;
                            }
                        }
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::QueryMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn driven_table(ops: usize) -> (OnlineTable<u64>, DriverStats) {
        let table = OnlineTable::<u64>::new(3);
        for i in 0..2_000u64 {
            table.insert_row(&row_for_seed(i, 3));
        }
        let mut stream = UpdateStream::new(QueryMix::oltp(), 2_000);
        let mut rng = StdRng::seed_from_u64(5);
        let stats = drive(&table, &mut stream, &mut rng, ops);
        (table, stats)
    }

    #[test]
    fn driver_executes_the_mix() {
        let (table, stats) = driven_table(20_000);
        assert_eq!(stats.reads() + stats.writes(), 20_000);
        let write_frac = stats.writes() as f64 / 20_000.0;
        assert!(
            (write_frac - 0.17).abs() < 0.02,
            "OLTP mix write fraction, got {write_frac}"
        );
        assert_eq!(
            table.row_count() as u64,
            2_000 + stats.inserts + stats.updates
        );
        assert!(stats.scanned_tuples > 0);
    }

    #[test]
    fn driver_is_deterministic() {
        let (_, a) = driven_table(5_000);
        let (_, b) = driven_table(5_000);
        assert_eq!(a, b, "same seeds, same execution");
    }

    #[test]
    fn sharded_driver_executes_the_mix_with_exact_accounting() {
        let w = ShardedWorkload::oltp(4).with_volumes(2_000, 3_000);
        let table = sharded_table_for::<u64>(
            &w,
            TableConfig {
                columns: 3,
                ..TableConfig::default()
            },
        )
        .unwrap();
        let ids = preload_sharded(&table, &w).unwrap();
        assert_eq!(ids.len(), 8_000);
        assert_eq!(table.main_len(), 8_000, "preload quiesces into main");

        let stats = drive_sharded(&table, &w, &ids);
        assert_eq!(stats.len(), 4);
        let ops: u64 = stats.iter().map(|s| s.reads() + s.writes()).sum();
        assert_eq!(ops, 12_000);
        let appended: u64 = stats.iter().map(|s| s.inserts + s.updates).sum();
        assert_eq!(
            table.row_count() as u64,
            8_000 + appended,
            "every insert/update appended exactly one row"
        );
        let invalidated: u64 = stats.iter().map(|s| s.updates + s.deletes).sum();
        let valid = table.valid_row_count() as u64;
        assert!(valid <= table.row_count() as u64);
        assert!(valid >= table.row_count() as u64 - invalidated);
        assert!(stats.iter().any(|s| s.ranges > 0), "fan-out ranges ran");
        assert!(stats.iter().any(|s| s.scanned_tuples > 0));
    }

    #[test]
    fn preload_with_budget_and_strategy_matches_default() {
        use crate::merge::{MergeBudget, MergeGrant, MergeStrategy};
        let a = ShardedTable::<u64>::builder()
            .shards(2)
            .columns(3)
            .build()
            .unwrap();
        let b = ShardedTable::<u64>::builder()
            .shards(2)
            .columns(3)
            .build()
            .unwrap();
        let w = ShardedWorkload::oltp(2).with_volumes(500, 0);
        let ids_a = preload_sharded(&a, &w).unwrap();
        let ids_b = preload_sharded_with(
            &b,
            &w,
            MergeGrant::with_threads(2)
                .strategy(MergeStrategy::Optimized)
                .budget(MergeBudget::columns(1)),
        )
        .unwrap();
        assert_eq!(ids_a, ids_b, "grant must not change routing or ids");
        assert_eq!(a.main_len(), b.main_len(), "both preloads fully quiesced");
        for id in ids_a.iter().step_by(37) {
            assert_eq!(a.row(*id), b.row(*id));
        }
    }

    #[test]
    fn sharded_driver_tolerates_empty_preload() {
        let table = ShardedTable::<u64>::builder()
            .shards(2)
            .columns(2)
            .build()
            .unwrap();
        let w = ShardedWorkload::oltp(2).with_volumes(0, 500);
        let ids = preload_sharded(&table, &w).unwrap();
        assert!(ids.is_empty());
        let stats = drive_sharded(&table, &w, &ids);
        // Row-addressed ops before the first insert are skipped, not panics;
        // inserts still execute and later reads can proceed.
        assert!(stats.iter().map(|s| s.inserts).sum::<u64>() > 0);
        assert_eq!(
            table.row_count() as u64,
            stats.iter().map(|s| s.inserts + s.updates).sum::<u64>()
        );
    }

    #[test]
    fn sharded_driver_op_counts_are_deterministic() {
        // Checksums may vary with cross-worker interleavings (scans see other
        // workers' fresh rows), but each worker's op sequence is seeded, so
        // the per-kind counts must reproduce exactly.
        let run = || {
            let table = ShardedTable::<u64>::builder()
                .shards(3)
                .columns(2)
                .build()
                .unwrap();
            let w = ShardedWorkload::oltp(3).with_volumes(1_000, 2_000);
            let ids = preload_sharded(&table, &w).unwrap();
            drive_sharded(&table, &w, &ids)
                .into_iter()
                .map(|s| {
                    (
                        s.lookups, s.scans, s.ranges, s.inserts, s.updates, s.deletes,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn driving_across_merges_preserves_results() {
        let table = OnlineTable::<u64>::new(3);
        for i in 0..2_000u64 {
            table.insert_row(&row_for_seed(i, 3));
        }
        let mut stream = UpdateStream::new(QueryMix::oltp(), 2_000);
        let mut rng = StdRng::seed_from_u64(5);
        // Interleave driving and merging; final row count must balance.
        let mut total = DriverStats::default();
        for _ in 0..4 {
            let s = drive(&table, &mut stream, &mut rng, 2_500);
            total.inserts += s.inserts;
            total.updates += s.updates;
            table.merge(2, None).unwrap();
            assert_eq!(table.delta_len(), 0);
        }
        assert_eq!(
            table.row_count() as u64,
            2_000 + total.inserts + total.updates
        );
        assert_eq!(table.main_len(), table.row_count(), "everything merged");
    }
}

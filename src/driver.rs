//! Mixed-workload driver: executes a [`workload`](crate::workload) operation
//! stream against an [`OnlineTable`](crate::merge::OnlineTable), closing the
//! loop between the Section 2 workload characterization and the merge
//! machinery — the "single system for both transactional and analytical
//! workloads" the paper argues for, in miniature.

use crate::merge::OnlineTable;
use crate::workload::{Operation, UpdateStream};
use hyrise_storage::Value;
use rand::Rng;

/// Execution counters for a driven workload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Point lookups executed.
    pub lookups: u64,
    /// Scan windows executed (and tuples touched).
    pub scans: u64,
    /// Tuples touched by scans.
    pub scanned_tuples: u64,
    /// Range selects executed.
    pub ranges: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows updated (new version + invalidation).
    pub updates: u64,
    /// Rows deleted (invalidated).
    pub deletes: u64,
    /// Checksum accumulated from reads (prevents dead-code elimination and
    /// doubles as a determinism probe).
    pub checksum: u64,
}

impl DriverStats {
    /// Total write operations.
    pub fn writes(&self) -> u64 {
        self.inserts + self.updates + self.deletes
    }

    /// Total read operations.
    pub fn reads(&self) -> u64 {
        self.lookups + self.scans + self.ranges
    }
}

/// Build the row written for value seed `seed` (deterministic, one value per
/// column derived from the seed).
pub fn row_for_seed<V: Value>(seed: u64, cols: usize) -> Vec<V> {
    (0..cols as u64)
        .map(|c| V::from_seed((seed.wrapping_mul(31).wrapping_add(c)) & 0xFFFF_FFFF))
        .collect()
}

/// Execute `n` operations from `stream` against `table`. Row indices from
/// the stream are clamped to the live table (the stream's logical row count
/// tracks inserts but the driver is authoritative).
pub fn drive<V: Value, R: Rng>(
    table: &OnlineTable<V>,
    stream: &mut UpdateStream,
    rng: &mut R,
    n: usize,
) -> DriverStats {
    let cols = table.num_columns();
    let mut stats = DriverStats::default();
    for _ in 0..n {
        match stream.next_op(rng) {
            Operation::Lookup { row } => {
                let rows = table.row_count();
                if rows > 0 {
                    let r = (row as usize).min(rows - 1);
                    stats.checksum = stats
                        .checksum
                        .wrapping_add(table.get(r % cols.max(1) % cols, r).to_u64_lossy());
                    stats.lookups += 1;
                }
            }
            Operation::Scan { start, len } => {
                let rows = table.row_count();
                if rows > 0 {
                    let s = (start as usize).min(rows - 1);
                    let e = (s + len as usize).min(rows);
                    let mut acc = 0u64;
                    for r in s..e {
                        acc = acc.wrapping_add(table.get(0, r).to_u64_lossy());
                    }
                    stats.checksum = stats.checksum.wrapping_add(acc);
                    stats.scans += 1;
                    stats.scanned_tuples += (e - s) as u64;
                }
            }
            Operation::RangeSelect { lo, hi } => {
                // Approximate a range select by probing a sample of rows for
                // membership (the OnlineTable keeps columns behind a lock, so
                // the zero-copy scan operators of `hyrise-query` apply to
                // offline `Attribute`s; this driver exercises the lock path).
                let rows = table.row_count();
                if rows > 0 {
                    let mut hits = 0u64;
                    let step = (rows / 512).max(1);
                    for r in (0..rows).step_by(step) {
                        let v = table.get(0, r).to_u64_lossy();
                        if v >= lo && v <= hi {
                            hits += 1;
                        }
                    }
                    stats.checksum = stats.checksum.wrapping_add(hits);
                    stats.ranges += 1;
                }
            }
            Operation::Insert { seed } => {
                table.insert_row(&row_for_seed::<V>(seed, cols));
                stats.inserts += 1;
            }
            Operation::Update { row, seed } => {
                let rows = table.row_count();
                if rows > 0 {
                    table.update_row((row as usize).min(rows - 1), &row_for_seed::<V>(seed, cols));
                    stats.updates += 1;
                }
            }
            Operation::Delete { row } => {
                let rows = table.row_count();
                if rows > 0 {
                    table.delete_row((row as usize).min(rows - 1));
                    stats.deletes += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::QueryMix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn driven_table(ops: usize) -> (OnlineTable<u64>, DriverStats) {
        let table = OnlineTable::<u64>::new(3);
        for i in 0..2_000u64 {
            table.insert_row(&row_for_seed(i, 3));
        }
        let mut stream = UpdateStream::new(QueryMix::oltp(), 2_000);
        let mut rng = StdRng::seed_from_u64(5);
        let stats = drive(&table, &mut stream, &mut rng, ops);
        (table, stats)
    }

    #[test]
    fn driver_executes_the_mix() {
        let (table, stats) = driven_table(20_000);
        assert_eq!(stats.reads() + stats.writes(), 20_000);
        let write_frac = stats.writes() as f64 / 20_000.0;
        assert!(
            (write_frac - 0.17).abs() < 0.02,
            "OLTP mix write fraction, got {write_frac}"
        );
        assert_eq!(
            table.row_count() as u64,
            2_000 + stats.inserts + stats.updates
        );
        assert!(stats.scanned_tuples > 0);
    }

    #[test]
    fn driver_is_deterministic() {
        let (_, a) = driven_table(5_000);
        let (_, b) = driven_table(5_000);
        assert_eq!(a, b, "same seeds, same execution");
    }

    #[test]
    fn driving_across_merges_preserves_results() {
        let table = OnlineTable::<u64>::new(3);
        for i in 0..2_000u64 {
            table.insert_row(&row_for_seed(i, 3));
        }
        let mut stream = UpdateStream::new(QueryMix::oltp(), 2_000);
        let mut rng = StdRng::seed_from_u64(5);
        // Interleave driving and merging; final row count must balance.
        let mut total = DriverStats::default();
        for _ in 0..4 {
            let s = drive(&table, &mut stream, &mut rng, 2_500);
            total.inserts += s.inserts;
            total.updates += s.updates;
            table.merge(2, None).unwrap();
            assert_eq!(table.delta_len(), 0);
        }
        assert_eq!(
            table.row_count() as u64,
            2_000 + total.inserts + total.updates
        );
        assert_eq!(table.main_len(), table.row_count(), "everything merged");
    }
}

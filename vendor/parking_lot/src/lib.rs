//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no registry access, so this path crate
//! provides the `parking_lot` API this workspace uses: [`Mutex`] /
//! [`RwLock`] whose lock methods return guards directly (no poison
//! `Result`). Poisoning is transparently swallowed, matching
//! `parking_lot` semantics where a panicking lock holder does not poison.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Sequence helpers: only `SliceRandom::shuffle` (Fisher–Yates).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + RngCore + ?Sized;
}

impl<T> SliceRandom for [T] {
    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + RngCore + ?Sized,
    {
        for i in (1..self.len()).rev() {
            let j = (crate::bounded(rng.next_u64(), i as u128 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }
}

//! Offline stub of the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *exact* API surface it consumes:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic, fast, and of more
//! than sufficient quality for workload generation and benchmarks.
//!
//! This is NOT a cryptographic RNG and makes no attempt to reproduce the
//! value streams of the real `rand` crate; all seeds in this workspace are
//! fixed, so results are reproducible against *this* implementation.

pub mod rngs;
pub mod seq;

/// Minimal core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] just like the real crate.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a random word to `[0, 1)` with 53 bits of precision.
///
/// Public so the sibling vendored `proptest` stub shares one
/// implementation of the sampling arithmetic (real `proptest` builds on
/// `rand` the same way).
#[inline]
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a random word to `[0, 1]` (both endpoints reachable) with 53 bits
/// of precision — the inclusive-range counterpart of [`unit_f64`].
#[inline]
pub fn unit_f64_inclusive(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Uniform integer in `[0, span)` via 128-bit widening multiply
/// (Lemire's method without the rejection step; the bias is < 2^-64
/// per sample, irrelevant for workload generation).
///
/// Public for the same reason as [`unit_f64`].
#[inline]
pub fn bounded(word: u64, span: u128) -> u128 {
    (word as u128 * span) >> 64
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let lo = self.start as u128;
                let span = self.end as u128 - lo;
                (lo + bounded(rng.next_u64(), span)) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let lo = start as u128;
                let span = end as u128 - lo + 1;
                (lo + bounded(rng.next_u64(), span)) as $t
            }
        }
    )*};
}

uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + bounded(rng.next_u64(), span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let lo = start as i128;
                let span = (end as i128 - lo) as u128 + 1;
                (lo + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start);
                // `start + u * span` can round up to `end`; the half-open
                // contract excludes it.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let v = start + (unit_f64_inclusive(rng.next_u64()) as $t) * (end - start);
                // Both endpoints are in-contract; rounding must not
                // overshoot either.
                v.clamp(start, end)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn full_u64_range_inclusive_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0..=u64::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

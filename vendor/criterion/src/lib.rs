//! Offline stub of the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this path crate
//! implements the API surface the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] with [`BenchmarkId`] and
//! [`Throughput`], plus the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark is calibrated to pick an iteration
//! count whose batch lasts roughly `TARGET_BATCH` (10 ms), then `sample_size`
//! batches are timed. The harness reports min / median / max ns per
//! iteration and derived throughput (median-based; the median is what the
//! repo's CI regression gate compares against `BENCH_baseline.json`) —
//! intentionally simpler than real criterion (no outlier analysis, no HTML
//! reports, no saved baselines), but stable enough to track
//! order-of-magnitude regressions.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    /// Marker measurement type (only wall-clock time is supported).
    pub struct WallTime;
}

/// Re-export of the compiler optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target duration for one timed batch of iterations.
const TARGET_BATCH: Duration = Duration::from_millis(10);

pub struct Criterion {
    /// Substring filter taken from the CLI (cargo bench passes trailing
    /// args through; flags are ignored).
    filter: Option<String>,
}

/// Real-criterion flags that take a value in the next argument; their
/// values must not be mistaken for the positional benchmark filter.
const VALUE_FLAGS: [&str; 9] = [
    "--sample-size",
    "--measurement-time",
    "--warm-up-time",
    "--save-baseline",
    "--baseline",
    "--load-baseline",
    "--output-format",
    "--color",
    "--profile-time",
];

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if VALUE_FLAGS.contains(&a.as_str()) {
                args.next(); // consume the flag's value
            } else if !a.starts_with('-') && !a.is_empty() {
                filter = Some(a);
                break;
            }
            // Bare flags (--bench, --verbose, …) and --flag=value forms
            // are ignored.
        }
        Criterion { filter }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _measurement: PhantomData,
        }
    }

    pub fn final_summary(&self) {}

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label);
        if self._criterion.matches(&full) {
            let mut bencher = Bencher::with_samples(self.sample_size);
            f(&mut bencher);
            report(&full, &bencher, self.throughput.as_ref());
        }
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label);
        if self._criterion.matches(&full) {
            let mut bencher = Bencher::with_samples(self.sample_size);
            f(&mut bencher, input);
            report(&full, &bencher, self.throughput.as_ref());
        }
        self
    }

    pub fn finish(self) {}
}

/// Collects per-sample timings; filled in by [`Bencher::iter`].
#[derive(Default)]
pub struct Bencher {
    samples_ns_per_iter: Vec<f64>,
    requested_samples: usize,
}

impl Bencher {
    fn with_samples(samples: usize) -> Self {
        Bencher {
            samples_ns_per_iter: Vec::new(),
            requested_samples: samples,
        }
    }

    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: find an iteration count whose batch takes ~TARGET_BATCH.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_BATCH || iters >= 1 << 30 {
                break;
            }
            let scale = if elapsed.is_zero() {
                16.0
            } else {
                (TARGET_BATCH.as_secs_f64() / elapsed.as_secs_f64()).min(16.0)
            };
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }

        let samples = self.requested_samples.max(2);
        self.samples_ns_per_iter.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns_per_iter
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Like [`Self::iter`], but the closure runs `iters` iterations itself
    /// and returns only the time that should count — for benchmarks that
    /// need per-sample setup (threads, tables) excluded from the timing.
    pub fn iter_custom<F>(&mut self, mut f: F)
    where
        F: FnMut(u64) -> Duration,
    {
        // Calibrate: find an iteration count whose batch takes ~TARGET_BATCH.
        let mut iters: u64 = 1;
        loop {
            let elapsed = f(iters);
            if elapsed >= TARGET_BATCH || iters >= 1 << 30 {
                break;
            }
            let scale = if elapsed.is_zero() {
                16.0
            } else {
                (TARGET_BATCH.as_secs_f64() / elapsed.as_secs_f64()).min(16.0)
            };
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }

        let samples = self.requested_samples.max(2);
        self.samples_ns_per_iter.clear();
        for _ in 0..samples {
            let elapsed = f(iters);
            self.samples_ns_per_iter
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn report(full_id: &str, bencher: &Bencher, throughput: Option<&Throughput>) {
    let s = &bencher.samples_ns_per_iter;
    if s.is_empty() {
        println!("{full_id:<50} (no samples collected)");
        return;
    }
    let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = s.iter().cloned().fold(0.0f64, f64::max);
    let median = {
        let mut sorted = s.clone();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        }
    };
    let thrpt = throughput.map(|t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (*n as f64, "elem"),
            Throughput::Bytes(n) => (*n as f64, "B"),
        };
        format!("  thrpt: {}", human_rate(count / (median * 1e-9), unit))
    });
    println!(
        "{full_id:<50} time: [{} {} {}]{}",
        human_time(min),
        human_time(median),
        human_time(max),
        thrpt.unwrap_or_default(),
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::with_samples(3);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples_ns_per_iter.len(), 3);
        assert!(b.samples_ns_per_iter.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("scan_eq", 8).label, "scan_eq/8");
        assert_eq!(BenchmarkId::from_parameter(4).label, "4");
    }
}

//! Test configuration and the deterministic RNG driving case generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Mirror of `proptest::test_runner::Config`, exposing only `cases`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the full workspace suite
        // CI-friendly while still exercising wide input diversity.
        Config { cases: 64 }
    }
}

/// The vendored `rand` generator, seeded from an FNV-1a hash of the
/// test's full path, so every property test has an independent,
/// reproducible stream (real proptest also builds on `rand`).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, span)` (`span > 0`) via widening multiply.
    #[inline]
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        rand::bounded(self.next_u64(), span)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        rand::unit_f64(self.next_u64())
    }

    /// Uniform `f64` in `[0, 1]` (both endpoints reachable).
    #[inline]
    pub fn unit_f64_inclusive(&mut self) -> f64 {
        rand::unit_f64_inclusive(self.next_u64())
    }
}

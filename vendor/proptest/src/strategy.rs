//! The [`Strategy`] trait and the combinators the workspace uses.
//!
//! A strategy here is just a deterministic sampler: `generate` draws one
//! value from the strategy's distribution using the harness RNG. There is
//! no value tree and no shrinking.

use crate::test_runner::TestRng;
use std::fmt::Debug;

pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted union of boxed strategies, built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight as u128) as u64;
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! uint_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let lo = self.start as u128;
                let span = self.end as u128 - lo;
                (lo + rng.below(span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let lo = start as u128;
                let span = end as u128 - lo + 1;
                (lo + rng.below(span)) as $t
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

uint_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // `start + u * span` can round up to `end`; the half-open
                // contract excludes it.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let v = start + (rng.unit_f64_inclusive() as $t) * (end - start);
                // Both endpoints are in-contract; rounding must not
                // overshoot either.
                v.clamp(start, end)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

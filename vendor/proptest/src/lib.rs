//! Offline stub of `proptest`.
//!
//! The build environment has no registry access, so this path crate
//! re-implements the subset of proptest the workspace's property suites
//! use: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`] /
//! [`prop_oneof!`], the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, `Just`, `any::<T>()`, numeric-range strategies,
//! weighted unions and `prop::collection::vec`.
//!
//! Semantics versus real proptest:
//! * Case generation is **deterministic**: the RNG is seeded from the
//!   test's module path and name, so failures always reproduce.
//! * There is **no shrinking**. On failure the harness prints the full
//!   `Debug` rendering of the generated inputs and the case index, then
//!   re-raises the panic.
//! * The default number of cases is 64 (smaller than upstream's 256) to
//!   keep CI runs fast; suites can still override it with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u64..100, (a, b) in (any::<u8>(), 0f64..=1.0)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let __vals = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    let __dbg = format!("{:#?}", &__vals);
                    let ( $($pat,)+ ) = __vals;
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body }),
                    );
                    if let ::std::result::Result::Err(__panic) = __outcome {
                        eprintln!(
                            "\n[proptest stub] property `{}` failed at case {}/{}; inputs were:\n{}\n",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __dbg,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` that participates in the proptest harness (no shrinking here,
/// so it simply panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skip the current case when a precondition does not hold.
/// Expands to an early return from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted (or unweighted) union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

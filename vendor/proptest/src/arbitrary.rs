//! `any::<T>()` — full-range uniform strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

//! Mirror of `proptest::prelude`: everything the property suites import.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Mirror of the `prop` module re-export (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

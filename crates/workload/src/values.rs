//! Uniform value generation with exact unique-value counts.
//!
//! Section 7: "The fraction of unique values lambda_M and lambda_D varies
//! from 0.1% to 100% ... For all experiments, the values are generated
//! uniformly at random." The experiments need the dictionary sizes to hit
//! their targets exactly, so the generator guarantees the unique count
//! rather than sampling a domain and hoping.

use hyrise_storage::Value;
use rand::seq::SliceRandom;
use rand::Rng;

/// How a column's values should be generated.
#[derive(Clone, Copy, Debug)]
pub struct UniqueSpec {
    /// Number of values to produce.
    pub n: usize,
    /// Exact number of distinct values among them (clamped to `1..=n`).
    pub unique: usize,
    /// Start of the seed range. Two generations overlap in value domain
    /// exactly where their seed ranges overlap, which is how the benchmarks
    /// control `|U_M ∩ U_D|` (the paper leaves the overlap to uniform
    /// chance; we default to half-overlap in the harnesses and document it).
    pub seed_offset: u64,
}

impl UniqueSpec {
    /// Spec for `n` values at unique fraction `lambda` (of `n`), seeds from 0.
    pub fn from_lambda(n: usize, lambda: f64) -> Self {
        let unique = ((n as f64 * lambda).round() as usize).clamp(1, n.max(1));
        Self {
            n,
            unique,
            seed_offset: 0,
        }
    }

    /// Same spec with a shifted seed range.
    pub fn offset(self, seed_offset: u64) -> Self {
        Self {
            seed_offset,
            ..self
        }
    }
}

/// Injective spreading of sequential seed indices over the 32-bit seed space
/// (odd multiplier => bijection mod 2^32), so generated values are not
/// trivially sorted.
#[inline]
fn spread(i: u64) -> u64 {
    (i.wrapping_mul(2_654_435_761)) & 0xFFFF_FFFF
}

/// Generate values per `spec`: exactly `spec.unique` distinct values (each
/// appearing at least once), the rest drawn uniformly among them, in random
/// order.
pub fn values_with_unique<V: Value, R: Rng>(rng: &mut R, spec: UniqueSpec) -> Vec<V> {
    if spec.n == 0 {
        return Vec::new();
    }
    let unique = spec.unique.clamp(1, spec.n);
    assert!(
        spec.seed_offset + unique as u64 <= u32::MAX as u64,
        "seed range exceeds the injective 32-bit seed space"
    );
    let mut out = Vec::with_capacity(spec.n);
    for i in 0..unique as u64 {
        out.push(V::from_seed(spread(spec.seed_offset + i)));
    }
    for _ in unique..spec.n {
        let i = rng.gen_range(0..unique as u64);
        out.push(V::from_seed(spread(spec.seed_offset + i)));
    }
    out.shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    fn unique_count<V: Value>(vals: &[V]) -> usize {
        vals.iter().collect::<HashSet<_>>().len()
    }

    #[test]
    fn exact_unique_counts() {
        let mut r = rng();
        for (n, u) in [(1000usize, 10usize), (1000, 1000), (1000, 1), (5000, 2500)] {
            let vals: Vec<u64> = values_with_unique(
                &mut r,
                UniqueSpec {
                    n,
                    unique: u,
                    seed_offset: 0,
                },
            );
            assert_eq!(vals.len(), n);
            assert_eq!(unique_count(&vals), u, "n={n} u={u}");
        }
    }

    #[test]
    fn lambda_constructor() {
        let spec = UniqueSpec::from_lambda(100_000, 0.001);
        assert_eq!(spec.unique, 100);
        let spec = UniqueSpec::from_lambda(100, 1.0);
        assert_eq!(spec.unique, 100);
        let spec = UniqueSpec::from_lambda(100, 0.0);
        assert_eq!(spec.unique, 1, "lambda=0 clamps to one distinct value");
    }

    #[test]
    fn seed_ranges_control_overlap() {
        let mut r = rng();
        let a: Vec<u64> = values_with_unique(
            &mut r,
            UniqueSpec {
                n: 500,
                unique: 100,
                seed_offset: 0,
            },
        );
        let b_disjoint: Vec<u64> = values_with_unique(
            &mut r,
            UniqueSpec {
                n: 500,
                unique: 100,
                seed_offset: 100,
            },
        );
        let b_same: Vec<u64> = values_with_unique(
            &mut r,
            UniqueSpec {
                n: 500,
                unique: 100,
                seed_offset: 0,
            },
        );
        let sa: HashSet<u64> = a.iter().copied().collect();
        let sd: HashSet<u64> = b_disjoint.iter().copied().collect();
        let ss: HashSet<u64> = b_same.iter().copied().collect();
        assert_eq!(sa.intersection(&sd).count(), 0, "disjoint seed ranges");
        assert_eq!(sa.intersection(&ss).count(), 100, "identical seed ranges");
    }

    #[test]
    fn works_for_all_value_types() {
        use hyrise_storage::V16;
        let mut r = rng();
        let spec = UniqueSpec {
            n: 300,
            unique: 30,
            seed_offset: 7,
        };
        assert_eq!(unique_count::<u32>(&values_with_unique(&mut r, spec)), 30);
        assert_eq!(unique_count::<u64>(&values_with_unique(&mut r, spec)), 30);
        assert_eq!(unique_count::<V16>(&values_with_unique(&mut r, spec)), 30);
    }

    #[test]
    fn deterministic_for_fixed_rng() {
        let a: Vec<u64> = values_with_unique(
            &mut rng(),
            UniqueSpec {
                n: 100,
                unique: 20,
                seed_offset: 0,
            },
        );
        let b: Vec<u64> = values_with_unique(
            &mut rng(),
            UniqueSpec {
                n: 100,
                unique: 20,
                seed_offset: 0,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_generation() {
        let vals: Vec<u64> = values_with_unique(
            &mut rng(),
            UniqueSpec {
                n: 0,
                unique: 0,
                seed_offset: 0,
            },
        );
        assert!(vals.is_empty());
    }

    #[test]
    #[should_panic(expected = "seed range")]
    fn oversized_seed_range_rejected() {
        let _: Vec<u64> = values_with_unique(
            &mut rng(),
            UniqueSpec {
                n: 10,
                unique: 10,
                seed_offset: u32::MAX as u64,
            },
        );
    }
}

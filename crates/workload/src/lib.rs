//! The Section 2 enterprise-data model and workload generators.
//!
//! The paper grounds its design in an analysis of 12 SAP Business Suite
//! customer systems (~74,000 tables each, 32 billion records inspected). We
//! cannot ship customer data, so this crate reconstructs the *published
//! aggregates* as generative models — every number the paper reports in
//! Figures 1–4 and the Section 2 "Merge Duration" scenario is encoded here
//! and can be re-emitted (that is what the `fig1..fig4` harness binaries do)
//! or sampled from (that is how the benchmark workloads pick their
//! parameters):
//!
//! * [`QueryMix`] — Figure 1's query-type distribution for OLTP, OLAP and
//!   TPC-C-like workloads.
//! * [`TableSizeModel`] — Figure 2's histogram of 73,979 tables by row count.
//! * [`LargeTableModel`] — Figure 3's 144 largest tables (rows 10M–1.6B,
//!   average 65M; columns 2–399, average 70).
//! * [`DistinctValueModel`] — Figure 4's distinct-value buckets for
//!   Inventory Management and Financial Accounting columns.
//! * [`VbapScenario`] — the VBAP sales-order merge scenario (33M rows, 230
//!   columns, 750k-row delta) with a scale knob.
//! * [`ShardedWorkload`] — the Section-2 mix spread across N shards of one
//!   logical table, one deterministic worker stream per shard.
//! * [`SwarmWorkload`] — the same mix replayed by N independent network
//!   clients (the `hyrise-server` crate's `drive_swarm` executes it over
//!   the wire).
//! * [`values`] — uniform value generators with exact unique-value counts
//!   (the `lambda` control of Section 7's experiments).

pub mod enterprise;
pub mod scenario;
pub mod sharded;
pub mod swarm;
pub mod updates;
pub mod values;

pub use enterprise::{DistinctValueModel, LargeTableModel, QueryMix, QueryType, TableSizeModel};
pub use scenario::VbapScenario;
pub use sharded::ShardedWorkload;
pub use swarm::SwarmWorkload;
pub use updates::{Operation, UpdateStream};
pub use values::{values_with_unique, UniqueSpec};

//! The Section 2 "Merge Duration" scenario: the VBAP sales-order table.
//!
//! "We picked the VBAP table with sales order data of 3 years (33 million
//! rows, 230 columns, 15 GB) and measured the merge of new sales order data
//! from one month of 750,000 rows, taking 1.8 trillion CPU cycles or 12
//! minutes. Converted, our initial implementation handled ~1,000 merged
//! updates per second."
//!
//! The scenario generator reproduces the table's *shape* — row/column counts
//! and per-column distinct-value distributions drawn from the Figure 4
//! model — at a configurable scale, so the `sec2_merge_duration` harness can
//! replay the measurement on laptop-class hardware and extrapolate.

use crate::enterprise::DistinctValueModel;
use crate::values::{values_with_unique, UniqueSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The VBAP merge scenario, scalable.
#[derive(Clone, Copy, Debug)]
pub struct VbapScenario {
    /// Rows in the main partition (paper: 33,000,000).
    pub rows: usize,
    /// Columns (paper: 230).
    pub cols: usize,
    /// Rows in the delta to merge (paper: 750,000 — one month of orders).
    pub merge_rows: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl VbapScenario {
    /// The paper's full-size scenario.
    pub fn paper() -> Self {
        Self {
            rows: 33_000_000,
            cols: 230,
            merge_rows: 750_000,
            seed: 0xBA9,
        }
    }

    /// Scale rows and delta by `f` (columns unchanged — merge cost is linear
    /// in columns, so the harness extrapolates instead).
    pub fn scaled(self, f: f64) -> Self {
        Self {
            rows: ((self.rows as f64 * f) as usize).max(1),
            merge_rows: ((self.merge_rows as f64 * f) as usize).max(1),
            ..self
        }
    }

    /// Same scenario with a different column count (for quick runs that
    /// extrapolate per-column costs).
    pub fn with_cols(self, cols: usize) -> Self {
        Self { cols, ..self }
    }

    /// Delta-to-main fraction (paper: 750k / 33M ≈ 2.3%).
    pub fn delta_fraction(&self) -> f64 {
        self.merge_rows as f64 / self.rows as f64
    }

    /// Per-column distinct-value counts for the main partition, drawn from
    /// the Financial Accounting distribution of Figure 4 (sales-order line
    /// items are dominated by configuration-valued columns).
    pub fn column_distinct_counts(&self) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let model = DistinctValueModel::financial_accounting();
        (0..self.cols)
            .map(|_| model.sample_distinct(&mut rng, self.rows as u64) as usize)
            .collect()
    }

    /// Generate one column's main values (`col` indexes into
    /// [`Self::column_distinct_counts`]).
    pub fn generate_main_column(&self, col: usize, distinct: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (col as u64).wrapping_mul(0x9E37));
        values_with_unique(
            &mut rng,
            UniqueSpec {
                n: self.rows,
                unique: distinct.min(self.rows),
                seed_offset: 0,
            },
        )
    }

    /// Generate one column's delta values. New sales orders mostly reuse the
    /// configured value domain (half the seed range overlaps the main's) and
    /// introduce a few new values — matching Section 2's "free value entries
    /// are very rare".
    pub fn generate_delta_column(&self, col: usize, distinct: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (col as u64).wrapping_mul(0x517C) ^ 1);
        let delta_distinct = ((distinct as f64 * self.delta_fraction()).ceil() as usize)
            .clamp(1, self.merge_rows.max(1));
        // Offset by half the delta's distinct count: ~half the delta's values
        // are new to the dictionary.
        let offset = (distinct.saturating_sub(delta_distinct / 2)) as u64;
        values_with_unique(
            &mut rng,
            UniqueSpec {
                n: self.merge_rows,
                unique: delta_distinct,
                seed_offset: offset,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_scenario_dimensions() {
        let s = VbapScenario::paper();
        assert_eq!(s.rows, 33_000_000);
        assert_eq!(s.cols, 230);
        assert_eq!(s.merge_rows, 750_000);
        assert!((s.delta_fraction() - 0.0227).abs() < 0.001);
    }

    #[test]
    fn scaling_preserves_delta_fraction() {
        let s = VbapScenario::paper().scaled(0.01);
        assert_eq!(s.rows, 330_000);
        assert_eq!(s.merge_rows, 7_500);
        assert!((s.delta_fraction() - VbapScenario::paper().delta_fraction()).abs() < 1e-6);
        assert_eq!(s.cols, 230, "columns unchanged by scaling");
    }

    #[test]
    fn distinct_counts_are_reproducible_and_bounded() {
        let s = VbapScenario::paper().scaled(0.001).with_cols(20);
        let a = s.column_distinct_counts();
        let b = s.column_distinct_counts();
        assert_eq!(a, b, "same seed, same counts");
        assert_eq!(a.len(), 20);
        for &d in &a {
            assert!((1..=s.rows).contains(&d));
        }
        // Figure 4 FA: most columns have few distinct values.
        let small = a.iter().filter(|d| **d <= 32).count();
        assert!(
            small * 2 > a.len(),
            "majority of FA columns are small-domain"
        );
    }

    #[test]
    fn generated_columns_have_requested_shape() {
        let s = VbapScenario::paper().scaled(0.0005).with_cols(3);
        let counts = s.column_distinct_counts();
        let main = s.generate_main_column(0, counts[0]);
        assert_eq!(main.len(), s.rows);
        let distinct: HashSet<u64> = main.iter().copied().collect();
        assert_eq!(distinct.len(), counts[0].min(s.rows));

        let delta = s.generate_delta_column(0, counts[0]);
        assert_eq!(delta.len(), s.merge_rows);
    }

    #[test]
    fn delta_overlaps_main_domain_partially() {
        let s = VbapScenario {
            rows: 10_000,
            cols: 1,
            merge_rows: 1_000,
            seed: 42,
        };
        let distinct = 1000usize;
        let main: HashSet<u64> = s.generate_main_column(0, distinct).into_iter().collect();
        let delta: HashSet<u64> = s.generate_delta_column(0, distinct).into_iter().collect();
        let shared = main.intersection(&delta).count();
        assert!(shared > 0, "delta must reuse configured values");
        assert!(shared < delta.len(), "delta must also introduce new values");
    }
}

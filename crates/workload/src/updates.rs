//! Update-stream generation: turning Figure 1's aggregate mix into a
//! concrete stream of table operations.
//!
//! Section 2 reports update rates of 3,000–18,000 updates/second against the
//! most active tables, with modifications concentrated on recent rows
//! (open orders get edited; historical ones do not). The stream generator
//! models that with an 80/20 self-similar skew over the row space: 80% of
//! updates touch the most recent 20% of rows, recursively.

use crate::enterprise::{QueryMix, QueryType};
use rand::Rng;

/// One operation against a table (reads carry enough detail for a driver to
/// execute them; writes carry the value seed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operation {
    /// Point read of a row.
    Lookup {
        /// Row to read (index into the *current* row space; drivers clamp).
        row: u64,
    },
    /// Sequential scan of a column window.
    Scan {
        /// First row of the window.
        start: u64,
        /// Window length.
        len: u64,
    },
    /// Range select on a value interval (seeds; drivers map to values).
    RangeSelect {
        /// Low value seed.
        lo: u64,
        /// High value seed.
        hi: u64,
    },
    /// Insert a new row built from this seed.
    Insert {
        /// Value seed for the new row.
        seed: u64,
    },
    /// Insert-only update of an existing row.
    Update {
        /// Row to supersede.
        row: u64,
        /// Value seed for the new version.
        seed: u64,
    },
    /// Invalidate a row.
    Delete {
        /// Row to invalidate.
        row: u64,
    },
}

impl Operation {
    /// Does this operation write (enter the delta / flip validity)?
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Operation::Insert { .. } | Operation::Update { .. } | Operation::Delete { .. }
        )
    }
}

/// Stream generator over a logical row space of `rows` rows.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    mix: QueryMix,
    /// Current logical row count (grows as the stream emits inserts).
    rows: u64,
    /// Skew parameter: probability mass on the most recent fraction (0.8
    /// on 0.2 gives the classic 80/20 rule; 0.5 is uniform).
    hot_mass: f64,
    next_seed: u64,
}

impl UpdateStream {
    /// A stream over an initially `rows`-row table with the given mix and
    /// the 80/20 recency skew.
    pub fn new(mix: QueryMix, rows: u64) -> Self {
        Self {
            mix,
            rows: rows.max(1),
            hot_mass: 0.8,
            next_seed: 1,
        }
    }

    /// Replace the skew (0.5 = uniform; must be in `[0.5, 1.0)`).
    pub fn with_hot_mass(mut self, hot_mass: f64) -> Self {
        assert!(
            (0.5..1.0).contains(&hot_mass),
            "hot_mass must be in [0.5, 1.0)"
        );
        self.hot_mass = hot_mass;
        self
    }

    /// Current logical row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Self-similar skewed row pick favouring *recent* (high-index) rows.
    fn skewed_row<R: Rng>(&self, rng: &mut R) -> u64 {
        let mut lo = 0f64;
        let mut hi = self.rows as f64;
        // Recurse the 80/20 split a few levels; 8 levels of 0.8 mass covers
        // a 6-order-of-magnitude row space adequately.
        for _ in 0..8 {
            if hi - lo < 2.0 {
                break;
            }
            if rng.gen_bool(self.hot_mass) {
                lo = hi - (hi - lo) * (1.0 - self.hot_mass);
            } else {
                hi -= (hi - lo) * (1.0 - self.hot_mass);
            }
        }
        (rng.gen_range(lo..hi) as u64).min(self.rows - 1)
    }

    /// Emit the next operation.
    pub fn next_op<R: Rng>(&mut self, rng: &mut R) -> Operation {
        match self.mix.sample(rng) {
            QueryType::Lookup => Operation::Lookup {
                row: self.skewed_row(rng),
            },
            QueryType::TableScan => {
                let len = rng.gen_range(64..4096u64).min(self.rows);
                let start = rng.gen_range(0..self.rows.saturating_sub(len).max(1));
                Operation::Scan { start, len }
            }
            QueryType::RangeSelect => {
                let lo = rng.gen_range(0..u32::MAX as u64 / 2);
                let hi = lo + rng.gen_range(1..u32::MAX as u64 / 4);
                Operation::RangeSelect { lo, hi }
            }
            QueryType::Insert => {
                self.rows += 1;
                self.next_seed += 1;
                Operation::Insert {
                    seed: self.next_seed,
                }
            }
            QueryType::Modification => {
                self.rows += 1; // insert-only: new version appends
                self.next_seed += 1;
                Operation::Update {
                    row: self.skewed_row(rng),
                    seed: self.next_seed,
                }
            }
            QueryType::Delete => Operation::Delete {
                row: self.skewed_row(rng),
            },
        }
    }

    /// Emit a batch of operations.
    pub fn batch<R: Rng>(&mut self, rng: &mut R, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12)
    }

    #[test]
    fn write_fraction_matches_mix() {
        let mut s = UpdateStream::new(QueryMix::oltp(), 10_000);
        let mut r = rng();
        let n = 100_000;
        let writes = s.batch(&mut r, n).iter().filter(|o| o.is_write()).count();
        let frac = writes as f64 / n as f64;
        assert!(
            (frac - QueryMix::oltp().write_fraction()).abs() < 0.01,
            "got {frac}"
        );
    }

    #[test]
    fn row_count_grows_with_inserts_and_updates() {
        let mut s = UpdateStream::new(QueryMix::tpcc(), 100);
        let mut r = rng();
        let before = s.rows();
        let batch = s.batch(&mut r, 10_000);
        let appends = batch
            .iter()
            .filter(|o| matches!(o, Operation::Insert { .. } | Operation::Update { .. }))
            .count() as u64;
        assert_eq!(
            s.rows(),
            before + appends,
            "insert-only: every write version appends"
        );
    }

    #[test]
    fn skew_prefers_recent_rows() {
        let mut s = UpdateStream::new(QueryMix::oltp(), 1_000_000);
        let mut r = rng();
        let mut recent = 0usize;
        let mut total = 0usize;
        for _ in 0..200_000 {
            if let Operation::Update { row, .. } = s.next_op(&mut r) {
                total += 1;
                if row >= s.rows() * 4 / 5 {
                    recent += 1;
                }
            }
        }
        assert!(total > 1_000, "need updates to measure");
        let frac = recent as f64 / total as f64;
        // 80% of mass on the top 20% (approximately; the row space grows).
        assert!(
            frac > 0.6,
            "recent-row fraction {frac} too low for 80/20 skew"
        );
    }

    #[test]
    fn uniform_mass_is_unskewed() {
        let mut s = UpdateStream::new(QueryMix::oltp(), 1_000_000).with_hot_mass(0.5);
        let mut r = rng();
        let mut top_half = 0usize;
        let mut total = 0usize;
        for _ in 0..100_000 {
            if let Operation::Lookup { row } = s.next_op(&mut r) {
                total += 1;
                if row >= s.rows() / 2 {
                    top_half += 1;
                }
            }
        }
        let frac = top_half as f64 / total as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "uniform pick should split evenly, got {frac}"
        );
    }

    #[test]
    fn rows_never_out_of_range() {
        let mut s = UpdateStream::new(QueryMix::tpcc(), 3);
        let mut r = rng();
        for _ in 0..20_000 {
            match s.next_op(&mut r) {
                Operation::Lookup { row }
                | Operation::Update { row, .. }
                | Operation::Delete { row } => {
                    assert!(row < s.rows());
                }
                Operation::Scan { start, len } => {
                    assert!(start < s.rows());
                    assert!(len >= 1);
                }
                _ => {}
            }
        }
    }

    #[test]
    #[should_panic(expected = "hot_mass")]
    fn invalid_hot_mass_rejected() {
        let _ = UpdateStream::new(QueryMix::oltp(), 10).with_hot_mass(1.0);
    }
}

//! Multi-shard workload: the Section 2 enterprise mix replayed against a
//! horizontally partitioned table.
//!
//! Section 2's analysis is per-system, not per-table: a Business Suite
//! instance spreads its 3,000–18,000 updates/second and its analytical
//! scans over many hot tables at once. The sharded scenario models that
//! one step down — one logical table partitioned over N shards, each shard
//! receiving its own slice of the global operation stream from a dedicated
//! worker. Per-shard streams are seeded independently and deterministically,
//! so a run is reproducible while the shards stay uncorrelated (no two
//! workers replay the same op sequence in lockstep).

use crate::enterprise::QueryMix;
use crate::updates::UpdateStream;

/// A multi-shard Section-2 scenario: the shape of the workload each
/// shard-worker replays. The driver owning the actual table (the `hyrise`
/// facade's `drive_sharded`) turns each [`ShardedWorkload::stream`] into
/// executed operations.
#[derive(Clone, Copy, Debug)]
pub struct ShardedWorkload {
    /// Number of shards (= concurrent workers).
    pub shards: usize,
    /// The Figure-1 query mix every worker draws from.
    pub mix: QueryMix,
    /// Rows preloaded per shard before the mix starts.
    pub initial_rows_per_shard: u64,
    /// Operations each worker executes.
    pub ops_per_shard: usize,
    /// Base RNG seed; per-shard seeds derive from it.
    pub seed: u64,
}

impl ShardedWorkload {
    /// An OLTP-mix scenario over `shards` shards (the heavy-concurrent-
    /// traffic default).
    pub fn oltp(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            mix: QueryMix::oltp(),
            initial_rows_per_shard: 10_000,
            ops_per_shard: 10_000,
            seed: 0x5AD,
        }
    }

    /// Same scenario with a different mix.
    pub fn with_mix(self, mix: QueryMix) -> Self {
        Self { mix, ..self }
    }

    /// Same scenario with different preload / op counts.
    pub fn with_volumes(self, initial_rows_per_shard: u64, ops_per_shard: usize) -> Self {
        Self {
            initial_rows_per_shard,
            ops_per_shard,
            ..self
        }
    }

    /// Total rows preloaded across shards.
    pub fn initial_rows(&self) -> u64 {
        self.initial_rows_per_shard * self.shards as u64
    }

    /// Total operations across shards.
    pub fn total_ops(&self) -> usize {
        self.ops_per_shard * self.shards
    }

    /// The deterministic RNG seed for shard `shard`'s worker (distinct per
    /// shard, stable across runs).
    pub fn shard_seed(&self, shard: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(shard as u64 + 1)
    }

    /// The operation stream shard `shard`'s worker replays. Each stream
    /// sees the *global* initial row space (reads may address any row; the
    /// driver routes) but advances independently.
    pub fn stream(&self, shard: usize) -> UpdateStream {
        // Distinct hot-set evolution per shard comes from the per-shard RNG
        // seed; the stream itself is shaped purely by the mix and row count.
        let _ = shard;
        UpdateStream::new(self.mix, self.initial_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scenario_dimensions() {
        let w = ShardedWorkload::oltp(4).with_volumes(5_000, 2_000);
        assert_eq!(w.shards, 4);
        assert_eq!(w.initial_rows(), 20_000);
        assert_eq!(w.total_ops(), 8_000);
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let w = ShardedWorkload::oltp(8);
        let seeds: Vec<u64> = (0..8).map(|s| w.shard_seed(s)).collect();
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), 8, "no two shards share a seed");
        assert_eq!(seeds, (0..8).map(|s| w.shard_seed(s)).collect::<Vec<_>>());
    }

    #[test]
    fn per_shard_streams_diverge_under_their_seeds() {
        let w = ShardedWorkload::oltp(2);
        let mut a = w.stream(0);
        let mut b = w.stream(1);
        let mut rng_a = StdRng::seed_from_u64(w.shard_seed(0));
        let mut rng_b = StdRng::seed_from_u64(w.shard_seed(1));
        let ops_a = a.batch(&mut rng_a, 200);
        let ops_b = b.batch(&mut rng_b, 200);
        assert_ne!(ops_a, ops_b, "different seeds, different op sequences");
    }

    #[test]
    fn streams_honour_the_mix() {
        let w = ShardedWorkload::oltp(3).with_mix(QueryMix::olap());
        let mut s = w.stream(1);
        let mut rng = StdRng::seed_from_u64(w.shard_seed(1));
        let n = 20_000;
        let writes = s.batch(&mut rng, n).iter().filter(|o| o.is_write()).count();
        let frac = writes as f64 / n as f64;
        assert!(
            (frac - QueryMix::olap().write_fraction()).abs() < 0.02,
            "OLAP write fraction off: {frac}"
        );
    }

    #[test]
    fn at_least_one_shard() {
        let w = ShardedWorkload::oltp(0);
        assert_eq!(w.shards, 1);
    }
}

//! Client-swarm workload: the Section 2 enterprise mix replayed by N
//! independent network clients against one served table.
//!
//! [`ShardedWorkload`](crate::sharded::ShardedWorkload) models concurrency
//! *inside* the process (one worker per shard); the swarm models the
//! traffic shape the ROADMAP's "heavy traffic from many users" goal
//! implies: every client is an independent request/response loop over its
//! own connection, drawing from its own deterministically seeded
//! [`UpdateStream`], with no knowledge of sharding — routing is the
//! server's problem. The driver owning the actual connections (the
//! `hyrise-server` crate's `drive_swarm`) turns each [`SwarmWorkload::stream`]
//! into wire calls.

use crate::enterprise::QueryMix;
use crate::updates::UpdateStream;

/// The shape of a client-swarm run.
#[derive(Clone, Copy, Debug)]
pub struct SwarmWorkload {
    /// Number of concurrent clients (each on its own connection).
    pub clients: usize,
    /// The Figure-1 query mix every client draws from.
    pub mix: QueryMix,
    /// Rows preloaded into the table before the swarm starts.
    pub initial_rows: u64,
    /// Operations each client executes.
    pub ops_per_client: usize,
    /// Rows per batched insert (an `Insert` op sends this many rows in
    /// one request — the batched-mutation path of the wire protocol).
    pub insert_batch: usize,
    /// Base RNG seed; per-client seeds derive from it.
    pub seed: u64,
}

impl SwarmWorkload {
    /// An OLTP-mix swarm of `clients` clients.
    pub fn oltp(clients: usize) -> Self {
        Self {
            clients: clients.max(1),
            mix: QueryMix::oltp(),
            initial_rows: 10_000,
            ops_per_client: 2_000,
            insert_batch: 16,
            seed: 0x5AA5,
        }
    }

    /// The same swarm with a different mix.
    pub fn with_mix(self, mix: QueryMix) -> Self {
        Self { mix, ..self }
    }

    /// The same swarm with different preload / op counts.
    pub fn with_volumes(self, initial_rows: u64, ops_per_client: usize) -> Self {
        Self {
            initial_rows,
            ops_per_client,
            ..self
        }
    }

    /// The same swarm with a different insert batch size (≥ 1).
    pub fn with_insert_batch(self, insert_batch: usize) -> Self {
        Self {
            insert_batch: insert_batch.max(1),
            ..self
        }
    }

    /// The same swarm with a different base seed.
    pub fn with_seed(self, seed: u64) -> Self {
        Self { seed, ..self }
    }

    /// Total operations across clients.
    pub fn total_ops(&self) -> usize {
        self.ops_per_client * self.clients
    }

    /// The deterministic RNG seed for client `client` (distinct per
    /// client, stable across runs).
    pub fn client_seed(&self, client: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(client as u64 + 1)
    }

    /// The operation stream client `client` replays. Each stream sees the
    /// shared initial row space; divergence between clients comes from
    /// the per-client RNG seed.
    pub fn stream(&self, client: usize) -> UpdateStream {
        let _ = client;
        UpdateStream::new(self.mix, self.initial_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn swarm_dimensions() {
        let w = SwarmWorkload::oltp(8)
            .with_volumes(5_000, 1_000)
            .with_insert_batch(0);
        assert_eq!(w.clients, 8);
        assert_eq!(w.total_ops(), 8_000);
        assert_eq!(w.insert_batch, 1, "batch clamps to at least 1");
        assert_eq!(w.initial_rows, 5_000);
    }

    #[test]
    fn client_seeds_are_distinct_and_stable() {
        let w = SwarmWorkload::oltp(16);
        let seeds: Vec<u64> = (0..16).map(|c| w.client_seed(c)).collect();
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), 16, "no two clients share a seed");
        assert_eq!(seeds, (0..16).map(|c| w.client_seed(c)).collect::<Vec<_>>());
    }

    #[test]
    fn per_client_streams_diverge_under_their_seeds() {
        let w = SwarmWorkload::oltp(2);
        let mut a = w.stream(0);
        let mut b = w.stream(1);
        let mut rng_a = StdRng::seed_from_u64(w.client_seed(0));
        let mut rng_b = StdRng::seed_from_u64(w.client_seed(1));
        let ops_a = a.batch(&mut rng_a, 200);
        let ops_b = b.batch(&mut rng_b, 200);
        assert_ne!(ops_a, ops_b, "distinct seeds, distinct traffic");
    }
}

//! Generative reconstructions of the paper's Section 2 customer-data
//! analyses (Figures 1–4).
//!
//! The bar charts are not numerically labeled in the text, so per-category
//! numbers marked *estimated* below are read off the figures under the hard
//! constraints the text does state (OLTP ≈17% writes, OLAP ≈7% writes,
//! TPC-C 46% writes, >80%/>90% reads; Figure 2 counts sum to exactly 73,979
//! tables with 144 above 10M rows; Figure 4 percentages are printed in the
//! figure).

use rand::Rng;

/// The six query categories of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// Point read through an index.
    Lookup,
    /// Full-column sequential scan.
    TableScan,
    /// Range predicate select.
    RangeSelect,
    /// New row.
    Insert,
    /// Insert-only update of an existing row.
    Modification,
    /// Row invalidation.
    Delete,
}

impl QueryType {
    /// All categories, reads first.
    pub const ALL: [QueryType; 6] = [
        QueryType::Lookup,
        QueryType::TableScan,
        QueryType::RangeSelect,
        QueryType::Insert,
        QueryType::Modification,
        QueryType::Delete,
    ];

    /// Is this a write (delta-entering) operation?
    pub fn is_write(self) -> bool {
        matches!(
            self,
            QueryType::Insert | QueryType::Modification | QueryType::Delete
        )
    }
}

/// A workload's query-type distribution (weights sum to 100).
#[derive(Clone, Copy, Debug)]
pub struct QueryMix {
    /// Display name ("OLTP", "OLAP", "TPC-C").
    pub name: &'static str,
    /// Percentage per [`QueryType::ALL`] entry.
    pub percent: [f64; 6],
}

impl QueryMix {
    /// Customer OLTP systems: ">80% of all queries are read access ...
    /// ~17% are updates". Per-category split estimated from Figure 1.
    pub fn oltp() -> Self {
        Self {
            name: "OLTP",
            percent: [45.0, 20.0, 18.0, 9.0, 6.0, 2.0],
        }
    }

    /// Customer OLAP systems: ">90% reads, ~7% updates" (bulk loads count as
    /// inserts). Split estimated from Figure 1.
    pub fn olap() -> Self {
        Self {
            name: "OLAP",
            percent: [22.0, 42.0, 29.0, 5.0, 1.5, 0.5],
        }
    }

    /// The TPC-C contrast case: "a higher write ratio (46%) compared to our
    /// analysis (17%)". Split estimated from Figure 1.
    pub fn tpcc() -> Self {
        Self {
            name: "TPC-C",
            percent: [34.0, 8.0, 12.0, 30.0, 13.0, 3.0],
        }
    }

    /// Fraction of write queries (0..=1).
    pub fn write_fraction(&self) -> f64 {
        QueryType::ALL
            .iter()
            .zip(self.percent)
            .filter(|(t, _)| t.is_write())
            .map(|(_, p)| p)
            .sum::<f64>()
            / 100.0
    }

    /// Fraction of read queries (0..=1).
    pub fn read_fraction(&self) -> f64 {
        1.0 - self.write_fraction()
    }

    /// Sample one query type.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> QueryType {
        let mut x = rng.gen_range(0.0..100.0);
        for (t, p) in QueryType::ALL.iter().zip(self.percent) {
            if x < p {
                return *t;
            }
            x -= p;
        }
        QueryType::Lookup
    }
}

/// Figure 2: 73,979 tables clustered by row count. Counts reconstructed from
/// the arXiv text (see DESIGN.md); they sum exactly to the stated total and
/// decrease monotonically with size, with the stated 144 tables above 10M
/// rows.
#[derive(Clone, Debug)]
pub struct TableSizeModel;

impl TableSizeModel {
    /// `(bucket label, max rows in bucket, table count)`; min rows is the
    /// previous bucket's max + 1.
    pub const BUCKETS: [(&'static str, u64, u64); 8] = [
        ("0", 0, 46_418),
        ("1-100", 100, 15_553),
        ("100-1K", 1_000, 6_290),
        ("1K-10K", 10_000, 2_685),
        ("10K-100K", 100_000, 1_385),
        ("100K-1M", 1_000_000, 925),
        ("1M-10M", 10_000_000, 579),
        (">10M", 1_600_000_000, 144),
    ];

    /// Total number of tables (the paper's 73,979).
    pub fn total_tables() -> u64 {
        Self::BUCKETS.iter().map(|(_, _, c)| c).sum()
    }

    /// Sample a table's row count: bucket by frequency, uniform within.
    pub fn sample_rows<R: Rng>(rng: &mut R) -> u64 {
        let total = Self::total_tables();
        let mut pick = rng.gen_range(0..total);
        let mut lo = 0u64;
        for (_, hi, count) in Self::BUCKETS {
            if pick < count {
                if hi == 0 {
                    return 0;
                }
                return rng.gen_range(lo.max(1)..=hi);
            }
            pick -= count;
            lo = hi + 1;
        }
        unreachable!("weights cover the whole range")
    }
}

/// Figure 3: the 144 largest tables of one customer system. Deterministic
/// reconstruction matching the stated statistics: rows from 10M to 1.6B
/// averaging 65M (geometric decay, exponent fitted at construction), columns
/// from 2 to 399 averaging 70 (seeded exponential, clamped).
#[derive(Clone, Debug)]
pub struct LargeTableModel {
    tables: Vec<(u64, u32)>,
}

impl LargeTableModel {
    /// Number of tables in the model.
    pub const COUNT: usize = 144;
    const MIN_ROWS: f64 = 10.0e6;
    const MAX_ROWS: f64 = 1.6e9;
    const TARGET_AVG_ROWS: f64 = 65.0e6;
    const TARGET_AVG_COLS: f64 = 70.0;

    /// Build the model (fits the decay exponent numerically).
    pub fn new() -> Self {
        // rows_i = MIN * (MAX/MIN)^(((COUNT-1-i)/(COUNT-1))^gamma), fitted so
        // the mean hits 65M.
        let ratio = Self::MAX_ROWS / Self::MIN_ROWS;
        let mean_for = |gamma: f64| -> f64 {
            (0..Self::COUNT)
                .map(|i| {
                    let t = (Self::COUNT - 1 - i) as f64 / (Self::COUNT - 1) as f64;
                    Self::MIN_ROWS * ratio.powf(t.powf(gamma))
                })
                .sum::<f64>()
                / Self::COUNT as f64
        };
        let (mut lo, mut hi) = (0.5f64, 30.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if mean_for(mid) > Self::TARGET_AVG_ROWS {
                lo = mid; // larger gamma decays faster -> smaller mean
            } else {
                hi = mid;
            }
        }
        let gamma = 0.5 * (lo + hi);

        // Columns: seeded exponential around the target mean, clamped to the
        // stated [2, 399] range, then mean-corrected.
        let mut x = 0x5DEECE66Du64;
        let mut cols: Vec<u32> = (0..Self::COUNT)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                let c = 2.0 - (Self::TARGET_AVG_COLS - 4.0) * (1.0 - u).ln();
                c.clamp(2.0, 399.0) as u32
            })
            .collect();
        // Mean correction: nudge the largest entries until the mean matches.
        loop {
            let mean: f64 = cols.iter().map(|c| *c as f64).sum::<f64>() / cols.len() as f64;
            if (mean - Self::TARGET_AVG_COLS).abs() < 0.5 {
                break;
            }
            let idx = cols
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .expect("non-empty");
            if mean > Self::TARGET_AVG_COLS {
                cols[idx] = (cols[idx] - (cols[idx] / 10).max(1)).max(2);
            } else {
                let idx = cols
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| **c)
                    .map(|(i, _)| i)
                    .unwrap();
                cols[idx] = (cols[idx] + 5).min(399);
            }
        }

        let tables = (0..Self::COUNT)
            .map(|i| {
                let t = (Self::COUNT - 1 - i) as f64 / (Self::COUNT - 1) as f64;
                let rows = (Self::MIN_ROWS * ratio.powf(t.powf(gamma))) as u64;
                (rows, cols[i])
            })
            .collect();
        Self { tables }
    }

    /// `(rows, columns)` per table, sorted by descending rows (Figure 3's
    /// abscissa order is by position after sorting).
    pub fn tables(&self) -> &[(u64, u32)] {
        &self.tables
    }

    /// Mean rows across the 144 tables.
    pub fn avg_rows(&self) -> f64 {
        self.tables.iter().map(|(r, _)| *r as f64).sum::<f64>() / self.tables.len() as f64
    }

    /// Mean columns across the 144 tables.
    pub fn avg_cols(&self) -> f64 {
        self.tables.iter().map(|(_, c)| *c as f64).sum::<f64>() / self.tables.len() as f64
    }
}

impl Default for LargeTableModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Figure 4: distribution of distinct-value counts per column, for the two
/// analyzed application domains. Percentages are printed in the figure.
#[derive(Clone, Copy, Debug)]
pub struct DistinctValueModel {
    /// Domain name.
    pub name: &'static str,
    /// Percent of columns with 1–32 distinct values.
    pub pct_small: f64,
    /// Percent with 33–1023.
    pub pct_medium: f64,
    /// Percent with 1024–100,000,000.
    pub pct_large: f64,
}

impl DistinctValueModel {
    /// Inventory Management: 64% / 12% / 24%.
    pub fn inventory_management() -> Self {
        Self {
            name: "Inventory Management",
            pct_small: 64.0,
            pct_medium: 12.0,
            pct_large: 24.0,
        }
    }

    /// Financial Accounting: 78% / 9% / 13%.
    pub fn financial_accounting() -> Self {
        Self {
            name: "Financial Accounting",
            pct_small: 78.0,
            pct_medium: 9.0,
            pct_large: 13.0,
        }
    }

    /// Sample a column's distinct-value count, log-uniform within its bucket,
    /// capped at `max_rows` (a column cannot have more distinct values than
    /// rows).
    pub fn sample_distinct<R: Rng>(&self, rng: &mut R, max_rows: u64) -> u64 {
        let x = rng.gen_range(0.0..100.0);
        let (lo, hi) = if x < self.pct_small {
            (1u64, 32u64)
        } else if x < self.pct_small + self.pct_medium {
            (33, 1023)
        } else {
            (1024, 100_000_000)
        };
        let hi = hi.min(max_rows.max(1));
        let lo = lo.min(hi);
        // log-uniform
        let (llo, lhi) = ((lo as f64).ln(), (hi as f64 + 1.0).ln());
        let v = rng.gen_range(llo..lhi.max(llo + f64::EPSILON)).exp() as u64;
        v.clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn figure1_stated_constraints_hold() {
        let oltp = QueryMix::oltp();
        let olap = QueryMix::olap();
        let tpcc = QueryMix::tpcc();
        // "~17% (OLTP) and ~7% (OLAP) of all queries are updates"
        assert!(
            (oltp.write_fraction() - 0.17).abs() < 0.005,
            "{}",
            oltp.write_fraction()
        );
        assert!((olap.write_fraction() - 0.07).abs() < 0.005);
        // "the TPC-C benchmark ... has a higher write ratio (46%)"
        assert!((tpcc.write_fraction() - 0.46).abs() < 0.005);
        // ">80% of all queries are read access — for OLAP systems even over 90%"
        assert!(oltp.read_fraction() > 0.8);
        assert!(olap.read_fraction() > 0.9);
        for m in [oltp, olap, tpcc] {
            assert!(
                (m.percent.iter().sum::<f64>() - 100.0).abs() < 1e-9,
                "{} sums to 100",
                m.name
            );
        }
    }

    #[test]
    fn figure1_sampling_converges_to_mix() {
        let mix = QueryMix::oltp();
        let mut r = rng();
        let n = 200_000;
        let writes = (0..n).filter(|_| mix.sample(&mut r).is_write()).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - mix.write_fraction()).abs() < 0.01, "sampled {frac}");
    }

    #[test]
    fn figure2_totals() {
        assert_eq!(TableSizeModel::total_tables(), 73_979);
        assert_eq!(
            TableSizeModel::BUCKETS[7].2,
            144,
            "144 tables above 10M rows"
        );
        // Counts decrease monotonically with table size.
        for w in TableSizeModel::BUCKETS.windows(2) {
            assert!(w[0].2 > w[1].2);
        }
    }

    #[test]
    fn figure2_sampling_respects_buckets() {
        let mut r = rng();
        let mut empties = 0usize;
        let n = 50_000;
        for _ in 0..n {
            let rows = TableSizeModel::sample_rows(&mut r);
            assert!(rows <= 1_600_000_000);
            if rows == 0 {
                empties += 1;
            }
        }
        // ~62.7% of tables are empty in the model.
        let frac = empties as f64 / n as f64;
        assert!(
            (frac - 46_418.0 / 73_979.0).abs() < 0.01,
            "empty fraction {frac}"
        );
    }

    #[test]
    fn figure3_statistics_match_paper() {
        let m = LargeTableModel::new();
        assert_eq!(m.tables().len(), 144);
        let (max_rows, _) = m.tables()[0];
        let (min_rows, _) = *m.tables().last().unwrap();
        // "The number of rows varies from 10 million to 1.6 billion with an
        // average of 65 million rows, whereas the number of columns varies
        // from 2 to 399 with an average of 70."
        assert!(
            (1.55e9..=1.65e9).contains(&(max_rows as f64)),
            "max {max_rows}"
        );
        assert!(
            (0.95e7..=1.05e7).contains(&(min_rows as f64)),
            "min {min_rows}"
        );
        assert!(
            (m.avg_rows() - 65.0e6).abs() / 65.0e6 < 0.05,
            "avg rows {}",
            m.avg_rows()
        );
        assert!(
            (m.avg_cols() - 70.0).abs() < 2.0,
            "avg cols {}",
            m.avg_cols()
        );
        for (_, c) in m.tables() {
            assert!((2..=399).contains(c));
        }
        // Sorted by descending rows.
        for w in m.tables().windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
    }

    #[test]
    fn figure4_bucket_fractions() {
        let fa = DistinctValueModel::financial_accounting();
        let mut r = rng();
        let n = 100_000;
        let mut small = 0usize;
        for _ in 0..n {
            let d = fa.sample_distinct(&mut r, u64::MAX);
            assert!((1..=100_000_000).contains(&d));
            if d <= 32 {
                small += 1;
            }
        }
        let frac = small as f64 / n as f64 * 100.0;
        assert!((frac - 78.0).abs() < 1.0, "small-bucket fraction {frac}");
    }

    #[test]
    fn figure4_distinct_capped_by_rows() {
        let im = DistinctValueModel::inventory_management();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(im.sample_distinct(&mut r, 50) <= 50);
        }
    }
}

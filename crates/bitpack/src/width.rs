//! Bit-width arithmetic (the paper's Equation 4).

/// `ceil(log2(n))` for `n >= 1`. By convention `ceil_log2(0) == 0` and
/// `ceil_log2(1) == 0`.
///
/// ```
/// use hyrise_bitpack::ceil_log2;
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(6), 3); // paper, Figure 5: 6 values -> 3 bits
/// assert_eq!(ceil_log2(9), 4); // paper, Figure 5: 9 values -> 4 bits
/// ```
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// The compressed value-length for a dictionary with `cardinality` entries:
/// Equation 4, `E'_C = ceil(log2 |U'|)` bits, clamped to at least one bit.
///
/// The clamp covers the degenerate single-value (or empty) dictionary, on
/// which the paper is silent: a zero-bit layout would make positions
/// meaningless, so we spend one bit.
///
/// ```
/// use hyrise_bitpack::bits_for;
/// assert_eq!(bits_for(0), 1);
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(2), 1);
/// assert_eq!(bits_for(3), 2);
/// assert_eq!(bits_for(256), 8);
/// assert_eq!(bits_for(257), 9);
/// ```
#[inline]
pub fn bits_for(cardinality: usize) -> u8 {
    ceil_log2(cardinality).max(1) as u8
}

/// Largest value representable with `bits` bits (the mask for that width).
///
/// ```
/// use hyrise_bitpack::max_value_for_bits;
/// assert_eq!(max_value_for_bits(1), 1);
/// assert_eq!(max_value_for_bits(8), 255);
/// assert_eq!(max_value_for_bits(64), u64::MAX);
/// ```
#[inline]
pub fn max_value_for_bits(bits: u8) -> u64 {
    debug_assert!((1..=64).contains(&bits));
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_powers_of_two() {
        for k in 1..63u32 {
            let n = 1usize << k;
            assert_eq!(ceil_log2(n), k, "n = 2^{k}");
            assert_eq!(ceil_log2(n + 1), k + 1, "n = 2^{k}+1");
            assert_eq!(ceil_log2(n - 1), if k == 1 { 0 } else { k }, "n = 2^{k}-1");
        }
    }

    #[test]
    fn bits_for_monotone_nondecreasing() {
        let mut prev = 0;
        for n in 0..10_000usize {
            let b = bits_for(n);
            assert!(b >= prev, "bits_for must be monotone at n={n}");
            prev = b;
        }
    }

    #[test]
    fn bits_for_suffices_to_store_max_code() {
        // Codes are dictionary indices 0..cardinality, so the largest code is
        // cardinality-1 and must fit in bits_for(cardinality) bits.
        for card in 1..5_000usize {
            let bits = bits_for(card);
            let max_code = (card - 1) as u64;
            assert!(
                max_code <= max_value_for_bits(bits),
                "cardinality {card}: code {max_code} must fit in {bits} bits"
            );
        }
    }

    #[test]
    fn bits_for_is_tight() {
        // One bit fewer must NOT suffice (except at the >=1 clamp).
        for card in 3..5_000usize {
            let bits = bits_for(card);
            if bits > 1 {
                let max_code = (card - 1) as u64;
                if max_code > max_value_for_bits(bits - 1) {
                    continue; // tight, good
                }
                // Only powers of two regions can be non-tight; verify there is
                // no cardinality where we waste a whole bit.
                panic!("bits_for({card}) = {bits} wastes a bit");
            }
        }
    }

    #[test]
    fn max_value_masks() {
        assert_eq!(max_value_for_bits(2), 3);
        assert_eq!(max_value_for_bits(33), (1u64 << 33) - 1);
        assert_eq!(max_value_for_bits(63), u64::MAX >> 1);
    }
}

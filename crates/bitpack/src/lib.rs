//! Bit-packed integer vectors.
//!
//! The paper stores compressed values (dictionary codes) using exactly
//! `E_C = ceil(log2 |U|)` bits per value (Section 5, Equation 4), so that a
//! main partition of `N_M` tuples occupies `N_M * E_C / 8` bytes — the memory
//! traffic terms of Equations 13 and 14 assume precisely this layout.
//!
//! This crate provides that layout:
//!
//! * [`BitPackedVec`] — a dense vector of `len` unsigned values, each stored
//!   with a fixed bit width `bits` (1..=64), packed contiguously into `u64`
//!   words with no per-value padding.
//! * [`bits_for`] — the paper's Equation 4, clamped to a minimum of one bit.
//! * [`BitPackedVec::split_mut`] — disjoint, word-aligned mutable regions for
//!   the *parallel* Step 2 of the merge (Section 6.2.2): each thread receives
//!   a tuple range whose start index is a multiple of 64, so its first bit
//!   offset (`start * bits`) is a multiple of 64 and the threads write
//!   non-overlapping `&mut [u64]` slices without any synchronization.
//!
//! # Example
//!
//! ```
//! use hyrise_bitpack::{bits_for, BitPackedVec};
//!
//! // 9 distinct values need ceil(log2 9) = 4 bits, as in the paper's Figure 5.
//! let bits = bits_for(9);
//! assert_eq!(bits, 4);
//!
//! let mut v = BitPackedVec::new(bits);
//! for code in [6u64, 3, 4, 3, 0, 1, 2, 2, 5, 8] {
//!     v.push(code);
//! }
//! assert_eq!(v.get(0), 6);
//! assert_eq!(v.get(9), 8);
//! assert_eq!(v.len(), 10);
//! ```

mod region;
mod scan;
mod swar;
mod vec;
mod width;

pub use region::{BitRegion, RegionSplit};
pub use scan::SeqCursor;
pub use swar::{mask_count, mask_words, rows_from_mask};
pub use vec::{BitPackedIter, BitPackedVec};
pub use width::{bits_for, ceil_log2, max_value_for_bits};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_from_paper_figure5() {
        // Figure 5: merged dictionary has 9 unique values -> 4 bits per code.
        assert_eq!(bits_for(9), 4);
        // Pre-merge main dictionary has 6 unique values -> 3 bits per code.
        assert_eq!(bits_for(6), 3);
    }
}

//! Word-parallel SWAR scan kernels over the packed representation.
//!
//! The paper's Sec 6.1 memory-traffic model prices a scan at the bytes it
//! streams — which assumes the kernel is bandwidth-bound. A per-element
//! decode loop (shift, mask, compare, branch) is instruction-bound instead.
//! These kernels restore the model's assumption in portable Rust: each
//! iteration loads one aligned *window* of packed codes and compares every
//! full code lane inside it at once with branch-free mask algebra — the
//! SWAR analogue of the SIMD-Scan the paper cites \[27\], generalized to
//! every width 1..=64. Narrow codes (`b <= 16`) use `u64` windows; wide
//! codes use `u128` windows, which fit `floor(121 / b)` lanes where a `u64`
//! would fit only one or two — at 24 bits that is 5 codes per iteration
//! instead of 2 (121, not 128: the fast-path load is byte-addressed, one
//! unaligned 16-byte read at `bit / 8` plus a residual shift of at most 7,
//! so up to 7 high bits of the window are the next window's data).
//!
//! # Window extraction
//!
//! Codes are `b` bits wide, packed back-to-back. At logical index `idx` the
//! stream bit position is `idx * b`, i.e. word `w` at phase `p`. The window
//! (for a `W`-bit window built from `k = W/64` words)
//!
//! ```text
//! chunk = (words[w..w+k] >> p) | (words[w+k] << (W - p))
//! ```
//!
//! realigns the stream so lane `j` of the window is the code at `idx + j`,
//! sitting at fixed bit offset `j*b`. The last term is the *carry word*:
//! a code straddling the boundary is reassembled by it (`x << 1 << (W-1-p)`
//! realizes the shift branchlessly, `p == 0` included). One carry word
//! always suffices, and at the end of the buffer it is read as zero. Each
//! iteration consumes `m = floor(W / b)` whole lanes; the leftover bits
//! are re-read as the start of the next window, so no code is ever
//! processed split. Consecutive windows have no data dependency, so the
//! unrolled loop overlaps them in the pipeline — the scalar cursor's
//! serial buffer chain cannot.
//!
//! # Mask algebra
//!
//! With `H` = the high bit of every lane and `L` = the low `b-1` bits of
//! every lane, for `x = chunk XOR broadcast(code)`:
//!
//! ```text
//! t  = (x & L) + L          // high bit of t set iff lane's low bits != 0
//! eq = !(t | x) & H         // high bit set iff the whole lane is zero
//! ```
//!
//! The per-lane add cannot carry across lanes (two `(b-1)`-bit values sum
//! below `2^b`), which makes this *exact* — unlike the classic `haszero`
//! trick, whose borrow can leak a false positive into the lane above a
//! matching one. Per-lane unsigned `x >= y` composes the same way:
//!
//! ```text
//! d  = ((x & L) | H) - (y & L)                 // borrow-free per lane
//! ge = ((x & !y) | (!(x ^ y) & d)) & H
//! ```
//!
//! (`x`'s high bit beats `y`'s, or the high bits tie and the low-bit
//! subtraction keeps its lent high bit.) A range test is two `ge`s. A
//! sparse match lane-mask (equality probes) is turned into row ids by
//! `trailing_zeros` iteration with a reciprocal-multiply lane divide; a
//! dense one (range scans, few lanes per window) by *predicated* writes —
//! the lane-mask is compressed to one bit per lane by a single carry-free
//! multiply, then every lane's row id is stored unconditionally and the
//! output cursor advances by the lane's match bit, so there is no branch
//! to mispredict.
//! Counts use `count_ones`, and sums fold lanes pairwise with doubling
//! strides (each fold step widens the lane faster than the sum can grow,
//! so no step overflows).
//!
//! # Dense row masks
//!
//! The executor fuses conjunctive predicates by AND-ing *dense row masks*
//! (bit `r` of word `r / 64` = row `r` matches) produced per column by
//! [`BitPackedVec::fill_range_mask`] / [`BitPackedVec::and_range_mask`]
//! before any row id is materialized. A 64-row block covers exactly `b`
//! words for every width, so blocks are word-aligned everywhere and the
//! AND pass can skip a block entirely when its accumulated mask word is
//! already zero.

use crate::vec::BitPackedVec;
use crate::width::max_value_for_bits;

/// Widths above this use `u128` windows (a `u64` window fits at most 3
/// full lanes there, wasting most of each load on leftover bits).
const WIDE_BITS: u8 = 16;

/// Low `n` bits set (`n <= 64`).
#[inline]
fn low_bits(n: usize) -> u64 {
    debug_assert!(n <= 64);
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Number of `u64` words a dense row mask over `rows` rows needs.
#[inline]
pub fn mask_words(rows: usize) -> usize {
    rows.div_ceil(64)
}

/// Append `base + r` to `out` for every set bit `r` of the dense row mask.
/// `rows` bounds the mask (bits at or beyond `rows` must be zero, which the
/// mask producers guarantee).
pub fn rows_from_mask(masks: &[u64], rows: usize, base: usize, out: &mut Vec<usize>) {
    debug_assert!(masks.len() >= mask_words(rows));
    for (j, &w) in masks[..mask_words(rows)].iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let tz = w.trailing_zeros() as usize;
            out.push(base + j * 64 + tz);
            w &= w - 1;
        }
    }
}

/// Total set bits of a dense row mask (the fused-count fast path).
#[inline]
pub fn mask_count(masks: &[u64]) -> usize {
    masks.iter().map(|w| w.count_ones() as usize).sum()
}

/// The window word type the kernels are generic over: `u64` for narrow
/// codes, `u128` for wide ones.
trait SwarWord:
    Copy
    + PartialEq
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
    + std::ops::Not<Output = Self>
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Shl<u32, Output = Self>
    + std::ops::Shr<u32, Output = Self>
{
    const BITS: usize;
    /// Guaranteed-valid low bits of a fast-path window load; lane geometry
    /// is computed against this, not `BITS` (the `u128` fast load realigns
    /// by at most 7 bits, leaving `128 - 7 = 121` usable).
    const USABLE: usize;
    const ZERO: Self;
    const ONE: Self;
    const MAX: Self;
    fn from_u64(x: u64) -> Self;
    fn as_u64(self) -> u64;
    fn trailing_zeros(self) -> u32;
    fn count_ones(self) -> u32;
    fn wrapping_mul(self, rhs: Self) -> Self;
    /// Load the window at stream bit offset `bit` without bounds checks.
    ///
    /// # Safety
    /// `bit < Self::fast_bits(words.len())`.
    unsafe fn load_unchecked(words: &[u64], bit: usize) -> Self;
    /// [`Self::load_unchecked`] for a byte-aligned `bit` (`bit % 8 == 0`,
    /// which holds for every window when `bits % 8 == 0`): no residual
    /// shift, and all `BITS` of the window are valid.
    ///
    /// # Safety
    /// As [`Self::load_unchecked`], plus `bit % 8 == 0`.
    #[inline]
    unsafe fn load_unchecked_aligned(words: &[u64], bit: usize) -> Self {
        Self::load_unchecked(words, bit)
    }
    /// Exclusive upper bound on bit offsets [`Self::load_unchecked`] may be
    /// given for a buffer of `words_len` words.
    fn fast_bits(words_len: usize) -> usize;
}

impl SwarWord for u64 {
    const BITS: usize = 64;
    const USABLE: usize = 64;
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MAX: Self = u64::MAX;
    #[inline]
    fn from_u64(x: u64) -> Self {
        x
    }
    #[inline]
    fn as_u64(self) -> u64 {
        self
    }
    #[inline]
    fn trailing_zeros(self) -> u32 {
        u64::trailing_zeros(self)
    }
    #[inline]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
    #[inline]
    fn wrapping_mul(self, rhs: Self) -> Self {
        u64::wrapping_mul(self, rhs)
    }
    #[inline]
    unsafe fn load_unchecked(words: &[u64], bit: usize) -> Self {
        let w = bit >> 6;
        let p = (bit & 63) as u32;
        let x = *words.get_unchecked(w);
        let carry = *words.get_unchecked(w + 1);
        (x >> p) | ((carry << 1) << (63 - p))
    }
    #[cfg(target_endian = "little")]
    #[inline]
    unsafe fn load_unchecked_aligned(words: &[u64], bit: usize) -> Self {
        // One unaligned 8-byte read; `fast_bits` keeps its last byte at
        // most at `8 * len - 2`.
        u64::from_le(
            words
                .as_ptr()
                .cast::<u8>()
                .add(bit >> 3)
                .cast::<u64>()
                .read_unaligned(),
        )
    }
    #[inline]
    fn fast_bits(words_len: usize) -> usize {
        // `bit < 64 * (len - 1)` keeps the carry word in bounds.
        64 * words_len.saturating_sub(1)
    }
}

impl SwarWord for u128 {
    const BITS: usize = 128;
    const USABLE: usize = 121;
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MAX: Self = u128::MAX;
    #[inline]
    fn from_u64(x: u64) -> Self {
        x as u128
    }
    #[inline]
    fn as_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn trailing_zeros(self) -> u32 {
        u128::trailing_zeros(self)
    }
    #[inline]
    fn count_ones(self) -> u32 {
        u128::count_ones(self)
    }
    #[inline]
    fn wrapping_mul(self, rhs: Self) -> Self {
        u128::wrapping_mul(self, rhs)
    }
    #[cfg(target_endian = "little")]
    #[inline]
    unsafe fn load_unchecked(words: &[u64], bit: usize) -> Self {
        // Byte-addressed: one unaligned 16-byte load at `bit / 8`, then a
        // residual shift of at most 7 bits — instead of gathering three
        // words and funnel-shifting across 128 bits. Little-endian packed
        // words are a little-endian bit stream byte-for-byte, so the load
        // needs no swizzle.
        let p = bit >> 3;
        let sh = (bit & 7) as u32;
        let raw = words
            .as_ptr()
            .cast::<u8>()
            .add(p)
            .cast::<u128>()
            .read_unaligned();
        u128::from_le(raw) >> sh
    }
    #[cfg(target_endian = "little")]
    #[inline]
    unsafe fn load_unchecked_aligned(words: &[u64], bit: usize) -> Self {
        u128::from_le(
            words
                .as_ptr()
                .cast::<u8>()
                .add(bit >> 3)
                .cast::<u128>()
                .read_unaligned(),
        )
    }
    #[cfg(not(target_endian = "little"))]
    #[inline]
    unsafe fn load_unchecked(words: &[u64], bit: usize) -> Self {
        let w = bit >> 6;
        let p = (bit & 63) as u32;
        let x = (*words.get_unchecked(w) as u128) | ((*words.get_unchecked(w + 1) as u128) << 64);
        let carry = *words.get_unchecked(w + 2) as u128;
        (x >> p) | ((carry << 1) << (127 - p))
    }
    #[cfg(target_endian = "little")]
    #[inline]
    fn fast_bits(words_len: usize) -> usize {
        // `bit <= 64 * len - 121` puts the load's last byte `bit/8 + 15` at
        // most at byte `8 * len - 1`, the end of the buffer.
        (64 * words_len).saturating_sub(120)
    }
    #[cfg(not(target_endian = "little"))]
    #[inline]
    fn fast_bits(words_len: usize) -> usize {
        64 * words_len.saturating_sub(2)
    }
}

/// Low `n` bits of `W` set (`n <= W::BITS`).
#[inline]
fn low_w<W: SwarWord>(n: usize) -> W {
    debug_assert!(n <= W::BITS);
    if n >= W::BITS {
        W::MAX
    } else {
        (W::ONE << n as u32) - W::ONE
    }
}

/// Per-width SWAR constants: lane geometry plus the tiled `H`/`L` masks of
/// the module-level algebra.
#[derive(Clone, Copy)]
struct Lanes<W> {
    /// Lane width `b` in bits.
    bits: usize,
    /// Full lanes per window, `m = floor(W::USABLE / b)`.
    m: usize,
    /// High bit (`b-1`) of every lane.
    high: W,
    /// Low `b-1` bits of every lane.
    low: W,
    /// Fixed-point reciprocal of `b`: `floor(2^21 / b) + 1`, so that
    /// [`Self::lane_of`] divides by multiply-shift instead of a hardware
    /// division per match.
    recip: u64,
    /// Compaction multiplier `sum_{j<m} 2^(j*(b-1))` for [`Self::compact`]
    /// (built only when `m <= 8`, the predicated-write regime).
    cmagic: W,
    /// Compaction shift `m * (b-1)`.
    cshift: u32,
}

impl<W: SwarWord> Lanes<W> {
    #[inline]
    fn new(bits: u8) -> Self {
        let b = bits as usize;
        // Byte-multiple widths keep every window byte-aligned, so the
        // aligned fast load leaves all `BITS` valid, not just `USABLE`
        // (the checked tail load always yields `BITS` valid bits).
        let m = if b.is_multiple_of(8) {
            W::BITS / b
        } else {
            W::USABLE / b
        };
        let lane_high = W::ONE << (b - 1) as u32;
        let lane_low = W::from_u64(max_value_for_bits(bits) >> 1);
        let mut high = W::ZERO;
        let mut low = W::ZERO;
        for k in 0..m {
            high = high | (lane_high << (k * b) as u32);
            low = low | (lane_low << (k * b) as u32);
        }
        let mut cmagic = W::ZERO;
        if m <= 8 {
            // All shifts stay below `W::BITS`: `j*(b-1) < m*b <= USABLE`.
            for j in 0..m {
                cmagic = cmagic | (W::ONE << (j * (b - 1)) as u32);
            }
        }
        Self {
            bits: b,
            m,
            high,
            low,
            recip: (1u64 << 21) / b as u64 + 1,
            cmagic,
            cshift: (m * (b - 1)) as u32,
        }
    }

    /// `tz / bits` for a window bit offset `tz < W::BITS`, by reciprocal
    /// multiply. Exact: the reciprocal overshoots `2^21 / b` by at most
    /// `1`, so the product overshoots `tz / b` by at most `127 / 2^21` —
    /// far below the `1 / b >= 1 / 64` gap to the next integer.
    #[inline]
    fn lane_of(&self, tz: usize) -> usize {
        debug_assert!(tz < W::BITS);
        ((tz as u64 * self.recip) >> 21) as usize
    }

    /// `code` replicated into every lane.
    #[inline]
    fn broadcast(&self, code: u64) -> W {
        let mut c = W::ZERO;
        for k in 0..self.m {
            c = c | (W::from_u64(code) << (k * self.bits) as u32);
        }
        c
    }

    /// Mask covering the first `take` lanes.
    #[inline]
    fn valid(&self, take: usize) -> W {
        low_w::<W>(take * self.bits)
    }

    /// Lane-mask (high bit per matching lane) of `win == bc`, `bc` a
    /// [`Self::broadcast`] value. Exact for every width.
    #[inline]
    fn eq_lanes(&self, win: W, bc: W) -> W {
        let x = win ^ bc;
        let t = (x & self.low) + self.low;
        !(t | x) & self.high
    }

    /// Lane-mask of unsigned `x >= y` per lane. Bits of `x` above the lane
    /// region are ignored (they never reach a high bit and the low-bit
    /// subtraction is borrow-free per lane). The production range kernels
    /// use [`RangePred`], the subexpression-shared composition of two of
    /// these; this standalone form is the tests' reference.
    #[cfg(test)]
    #[inline]
    fn ge_lanes(&self, x: W, y: W) -> W {
        let d = ((x & self.low) | self.high) - (y & self.low);
        ((x & !y) | (!(x ^ y) & d)) & self.high
    }

    /// Compress a lane-mask (high bit per matching lane) into a dense
    /// `u64` whose bit `j` is lane `j`'s verdict, by one multiply.
    ///
    /// Lane `j`'s high bit sits at `j*b + (b-1)`; multiplying by
    /// `cmagic = sum_k 2^(k*(b-1))` produces terms at `j*b + (k+1)*(b-1)`,
    /// and the `k = m-1-j` term lands every lane at `cshift + j`. The
    /// positions are pairwise distinct — `(j1-j2)*b = (k2-k1)*(b-1)` with
    /// `gcd(b, b-1) = 1` forces `b | (k2-k1)`, impossible for
    /// `|k2-k1| < m <= b` except zero — so the product never carries and
    /// the wrap-around truncation only drops unused terms. Requires
    /// `m <= b`, which `m <= 8` guarantees on both window types (`u64`
    /// needs `b >= 8` to get `m <= 8`; `u128` windows only serve
    /// `b > 16 > m`).
    #[inline]
    fn compact(&self, lm: W) -> u64 {
        debug_assert!(self.m <= 8 && self.m <= self.bits);
        (lm.wrapping_mul(self.cmagic) >> self.cshift).as_u64()
    }
}

/// A pre-broadcast `lo <= x <= hi` window comparator with the
/// subexpressions the two `ge` halves share hoisted out of the loop.
/// [`RangePred::lanes`] returns a *raw* mask: callers AND it with
/// `high & valid(take)` once, instead of each half masking separately.
#[derive(Clone, Copy)]
struct RangePred<W> {
    low: W,
    high: W,
    lob: W,
    nlob: W,
    /// `lob & low` — the subtrahend of the `x >= lo` half.
    lob_low: W,
    hib: W,
    /// `(hib & low) | high` — the minuend of the `hi >= x` half.
    hl_h: W,
}

impl<W: SwarWord> RangePred<W> {
    #[inline]
    fn new(l: &Lanes<W>, lo: u64, hi: u64) -> Self {
        let lob = l.broadcast(lo);
        let hib = l.broadcast(hi);
        Self {
            low: l.low,
            high: l.high,
            lob,
            nlob: !lob,
            lob_low: lob & l.low,
            hib,
            hl_h: (hib & l.low) | l.high,
        }
    }

    /// Raw lane-mask of `lo <= x <= hi`: valid only at lane high-bit
    /// positions after the caller's `& high & valid` — other bits are
    /// garbage. `x & low` is computed once and shared by both halves.
    #[inline]
    fn lanes(&self, x: W) -> W {
        let xl = x & self.low;
        let d1 = (xl | self.high) - self.lob_low;
        let g1 = (x & self.nlob) | (!(x ^ self.lob) & d1);
        let d2 = self.hl_h - xl;
        let g2 = (self.hib & !x) | (!(self.hib ^ x) & d2);
        g1 & g2
    }
}

/// Extract the window at stream bit offset `bit`; out-of-range words read
/// as zero (the end of the buffer).
#[inline]
fn window_checked<W: SwarWord>(words: &[u64], bit: usize) -> W {
    let k = W::BITS / 64;
    let w = bit >> 6;
    let p = (bit & 63) as u32;
    let word = |i: usize| words.get(i).copied().unwrap_or(0);
    let mut x = W::from_u64(word(w));
    for i in 1..k {
        x = x | (W::from_u64(word(w + i)) << (64 * i) as u32);
    }
    (x >> p) | ((W::from_u64(word(w + k)) << 1) << (W::BITS as u32 - 1 - p))
}

/// Drive `f(idx, take, chunk)` over aligned windows of `take <= m` lanes
/// covering logical indices `start..end`. `chunk` holds the code at
/// `idx + j` in bits `[j*b, (j+1)*b)`; bits past `take * b` are garbage the
/// caller must mask.
#[inline]
fn for_each_window<W: SwarWord>(
    words: &[u64],
    bits: usize,
    m: usize,
    start: usize,
    end: usize,
    mut f: impl FnMut(usize, usize, W),
) {
    if start >= end {
        return;
    }
    let step = m * bits;
    let full_end = end - (end - start) % m;
    // Bit offsets strictly below this are safe for an unchecked load.
    let fast_bits = W::fast_bits(words.len());
    let mut idx = start;
    let mut bit = start * bits;
    // Fast region, unrolled 2x: full windows, unchecked loads. Windows of
    // a byte-multiple width always sit at byte offsets, where the aligned
    // load skips the residual shift.
    if bits.is_multiple_of(8) {
        while idx + 2 * m <= full_end && bit + step < fast_bits {
            // SAFETY: both offsets are below `fast_bits` and byte-aligned.
            unsafe {
                let c0 = W::load_unchecked_aligned(words, bit);
                let c1 = W::load_unchecked_aligned(words, bit + step);
                f(idx, m, c0);
                f(idx + m, m, c1);
            }
            idx += 2 * m;
            bit += 2 * step;
        }
    } else {
        while idx + 2 * m <= full_end && bit + step < fast_bits {
            // SAFETY: both windows' offsets (`bit` and `bit + step`) are
            // below `fast_bits`, the contract of `load_unchecked`.
            unsafe {
                let c0 = W::load_unchecked(words, bit);
                let c1 = W::load_unchecked(words, bit + step);
                f(idx, m, c0);
                f(idx + m, m, c1);
            }
            idx += 2 * m;
            bit += 2 * step;
        }
    }
    while idx < end {
        let take = m.min(end - idx);
        f(idx, take, window_checked::<W>(words, bit));
        idx += take;
        bit += take * bits;
    }
}

/// A compiled range predicate over codes: the window comparator the
/// kernels and the dense-mask producers share, after degenerate ranges
/// have been normalized away at the word level.
enum Cmp<W> {
    /// Nothing can match (inverted or out-of-width range).
    None,
    /// Everything matches (`[0, max]` over the full code domain).
    All,
    /// Collapsed range: one exact-equality compare per window.
    Eq { bc: W },
    /// Proper range: two per-lane `ge` compares per window.
    Range(RangePred<W>),
}

impl<W: SwarWord> Cmp<W> {
    /// Normalize `[lo, hi]` against width `bits`. This is the word-level
    /// short-circuit: degenerate ranges never construct a cursor or touch
    /// the packed words at all.
    fn compile(l: &Lanes<W>, lo: u64, hi: u64, bits: u8) -> Cmp<W> {
        let max = max_value_for_bits(bits);
        if lo > hi || lo > max {
            return Cmp::None;
        }
        let hi = hi.min(max);
        if lo == 0 && hi == max {
            return Cmp::All;
        }
        if lo == hi {
            return Cmp::Eq {
                bc: l.broadcast(lo),
            };
        }
        Cmp::Range(RangePred::new(l, lo, hi))
    }

    /// Raw lane-mask of matches in `chunk` — the caller ANDs with
    /// `high & valid(take)` once (only meaningful for `Eq`/`Range`;
    /// `None`/`All` are resolved before any window is read).
    #[inline]
    fn lanes(&self, l: &Lanes<W>, chunk: W) -> W {
        match *self {
            Cmp::Eq { bc } => l.eq_lanes(chunk, bc),
            Cmp::Range(ref p) => p.lanes(chunk),
            Cmp::None => W::ZERO,
            Cmp::All => W::MAX,
        }
    }
}

fn select_eq_w<W: SwarWord>(
    v: &BitPackedVec,
    code: u64,
    start: usize,
    end: usize,
    base: usize,
    out: &mut Vec<usize>,
) {
    let l = Lanes::<W>::new(v.bits());
    let bc = l.broadcast(code);
    for_each_window::<W>(v.words(), l.bits, l.m, start, end, |idx, take, chunk| {
        let hv = if take == l.m {
            l.high
        } else {
            l.high & l.valid(take)
        };
        let mut lm = l.eq_lanes(chunk, bc) & hv;
        while lm != W::ZERO {
            let tz = lm.trailing_zeros() as usize;
            out.push(base + idx + l.lane_of(tz));
            lm = lm & (lm - W::ONE);
        }
    });
}

fn select_range_w<W: SwarWord>(
    v: &BitPackedVec,
    lo: u64,
    hi: u64,
    start: usize,
    end: usize,
    base: usize,
    out: &mut Vec<usize>,
) {
    let l = Lanes::<W>::new(v.bits());
    let p = RangePred::new(&l, lo, hi);
    if l.m <= 8 {
        // Few lanes per window and range scans tend to be dense: write
        // every lane's row id unconditionally and advance the output
        // cursor by the lane's match bit — no data-dependent branch at
        // all. The raw lane-mask is compacted to a dense `u64` (one
        // multiply) so the per-lane probe is a narrow shift instead of a
        // wide-word variable shift. The extra `m` covers the partial tail
        // window's scratch writes (its unmatched lanes are written but
        // never claimed by the cursor).
        out.reserve((end - start) + l.m);
        let mut n = out.len();
        let ptr = out.as_mut_ptr();
        for_each_window::<W>(v.words(), l.bits, l.m, start, end, |idx, take, chunk| {
            let hv = if take == l.m {
                l.high
            } else {
                l.high & l.valid(take)
            };
            let cm = l.compact(p.lanes(chunk) & hv);
            for k in 0..l.m {
                // SAFETY: the cursor advances at most once per packed
                // element and scratch writes reach at most `m - 1` slots
                // past it, both inside the reserved `len + (end-start) + m`.
                unsafe {
                    *ptr.add(n) = base + idx + k;
                }
                n += ((cm >> k) & 1) as usize;
            }
        });
        // SAFETY: slots `..n` are initialized, `n <= capacity`.
        unsafe {
            out.set_len(n);
        }
    } else {
        for_each_window::<W>(v.words(), l.bits, l.m, start, end, |idx, take, chunk| {
            let hv = if take == l.m {
                l.high
            } else {
                l.high & l.valid(take)
            };
            let mut lm = p.lanes(chunk) & hv;
            while lm != W::ZERO {
                let tz = lm.trailing_zeros() as usize;
                out.push(base + idx + l.lane_of(tz));
                lm = lm & (lm - W::ONE);
            }
        });
    }
}

fn count_eq_w<W: SwarWord>(v: &BitPackedVec, code: u64, start: usize, end: usize) -> usize {
    let l = Lanes::<W>::new(v.bits());
    let bc = l.broadcast(code);
    let mut n = 0usize;
    for_each_window::<W>(v.words(), l.bits, l.m, start, end, |_, take, chunk| {
        let hv = if take == l.m {
            l.high
        } else {
            l.high & l.valid(take)
        };
        n += (l.eq_lanes(chunk, bc) & hv).count_ones() as usize;
    });
    n
}

fn count_range_w<W: SwarWord>(
    v: &BitPackedVec,
    lo: u64,
    hi: u64,
    start: usize,
    end: usize,
) -> usize {
    let l = Lanes::<W>::new(v.bits());
    let p = RangePred::new(&l, lo, hi);
    let mut n = 0usize;
    for_each_window::<W>(v.words(), l.bits, l.m, start, end, |_, take, chunk| {
        let hv = if take == l.m {
            l.high
        } else {
            l.high & l.valid(take)
        };
        n += (p.lanes(chunk) & hv).count_ones() as usize;
    });
    n
}

fn fill_range_mask_w<W: SwarWord>(
    v: &BitPackedVec,
    lo: u64,
    hi: u64,
    start: usize,
    end: usize,
    masks: &mut [u64],
) {
    let n = mask_words(end - start);
    let l = Lanes::<W>::new(v.bits());
    let cmp = Cmp::compile(&l, lo, hi, v.bits());
    match cmp {
        Cmp::None => masks[..n].fill(0),
        Cmp::All => {
            masks[..n].fill(u64::MAX);
            if n > 0 {
                let tail = (end - start) % 64;
                if tail != 0 {
                    masks[n - 1] = low_bits(tail);
                }
            }
        }
        _ => {
            masks[..n].fill(0);
            for_each_window::<W>(v.words(), l.bits, l.m, start, end, |idx, take, chunk| {
                let hv = if take == l.m {
                    l.high
                } else {
                    l.high & l.valid(take)
                };
                let mut lm = cmp.lanes(&l, chunk) & hv;
                while lm != W::ZERO {
                    let tz = lm.trailing_zeros() as usize;
                    let row = idx - start + l.lane_of(tz);
                    masks[row >> 6] |= 1u64 << (row & 63);
                    lm = lm & (lm - W::ONE);
                }
            });
        }
    }
}

fn and_range_mask_w<W: SwarWord>(
    v: &BitPackedVec,
    lo: u64,
    hi: u64,
    start: usize,
    end: usize,
    masks: &mut [u64],
) {
    let n = mask_words(end - start);
    let l = Lanes::<W>::new(v.bits());
    let cmp = Cmp::compile(&l, lo, hi, v.bits());
    match cmp {
        Cmp::None => masks[..n].fill(0),
        Cmp::All => {}
        _ => {
            for (j, slot) in masks[..n].iter_mut().enumerate() {
                if *slot == 0 {
                    continue;
                }
                let bstart = start + j * 64;
                let bend = (bstart + 64).min(end);
                let mut block = 0u64;
                for_each_window::<W>(v.words(), l.bits, l.m, bstart, bend, |idx, take, chunk| {
                    let hv = if take == l.m {
                        l.high
                    } else {
                        l.high & l.valid(take)
                    };
                    let mut lm = cmp.lanes(&l, chunk) & hv;
                    while lm != W::ZERO {
                        let tz = lm.trailing_zeros() as usize;
                        block |= 1u64 << ((idx - bstart) + l.lane_of(tz));
                        lm = lm & (lm - W::ONE);
                    }
                });
                *slot &= block;
            }
        }
    }
}

impl BitPackedVec {
    /// SWAR equality select over logical indices `start..end`: `base + i`
    /// for every matching `i` (global index). Caller guarantees `code` fits
    /// the width and `start <= end <= len()`.
    pub(crate) fn swar_select_eq_into(
        &self,
        code: u64,
        start: usize,
        end: usize,
        base: usize,
        out: &mut Vec<usize>,
    ) {
        if self.bits() > WIDE_BITS {
            select_eq_w::<u128>(self, code, start, end, base, out)
        } else {
            select_eq_w::<u64>(self, code, start, end, base, out)
        }
    }

    /// SWAR range select over a normalized proper range (`lo < hi`, both in
    /// width, not the full domain), restricted to `start..end`.
    pub(crate) fn swar_select_in_range_into(
        &self,
        lo: u64,
        hi: u64,
        start: usize,
        end: usize,
        base: usize,
        out: &mut Vec<usize>,
    ) {
        if self.bits() > WIDE_BITS {
            select_range_w::<u128>(self, lo, hi, start, end, base, out)
        } else {
            select_range_w::<u64>(self, lo, hi, start, end, base, out)
        }
    }

    /// SWAR population count of `value == code` over `start..end` (caller
    /// checked the width).
    pub(crate) fn swar_count_eq(&self, code: u64, start: usize, end: usize) -> usize {
        if self.bits() > WIDE_BITS {
            count_eq_w::<u128>(self, code, start, end)
        } else {
            count_eq_w::<u64>(self, code, start, end)
        }
    }

    /// SWAR population count of `lo <= value <= hi` over a normalized
    /// proper range, restricted to `start..end`.
    pub(crate) fn swar_count_in_range(&self, lo: u64, hi: u64, start: usize, end: usize) -> usize {
        if self.bits() > WIDE_BITS {
            count_range_w::<u128>(self, lo, hi, start, end)
        } else {
            count_range_w::<u64>(self, lo, hi, start, end)
        }
    }

    /// SWAR horizontal sum: fold the lanes of each window pairwise with
    /// doubling strides, one `u128` accumulate per window instead of per
    /// element.
    ///
    /// Overflow safety: after `t` fold steps a partial sum aggregates at
    /// most `2^t` values below `2^b`, so it needs `b + t` bits while its
    /// lane has grown to `b * 2^t` — the lane always wins. Clipped top
    /// lanes (when `2s` overshoots bit 64) hold proportionally fewer
    /// addends and fit for the same reason. The full-window total is at
    /// most `floor(64/b) * (2^b - 1) <= 2^33`, so it fits a `u64` before
    /// the `u128` accumulate.
    pub(crate) fn swar_sum(&self) -> u128 {
        self.swar_sum_range(0, self.len())
    }

    /// [`Self::swar_sum`] restricted to logical indices `start..end` — the
    /// per-morsel aggregate kernel.
    pub(crate) fn swar_sum_range(&self, start: usize, end: usize) -> u128 {
        if start >= end {
            return 0;
        }
        let l = Lanes::<u64>::new(self.bits());
        // Fold plan: step t merges width-s lanes at spacing 2s, s = b << t.
        let mut fold_masks = [0u64; 6];
        let mut strides = [0usize; 6];
        let mut steps = 0usize;
        let mut s = l.bits;
        while s < l.m * l.bits {
            let mut mask = 0u64;
            let mut p = 0usize;
            while p < 64 {
                mask |= low_bits(s.min(64 - p)) << p;
                p += 2 * s;
            }
            fold_masks[steps] = mask;
            strides[steps] = s;
            steps += 1;
            s <<= 1;
        }
        let mut acc: u128 = 0;
        for_each_window::<u64>(self.words(), l.bits, l.m, start, end, |_, take, chunk| {
            let mut x = chunk & l.valid(take);
            for t in 0..steps {
                x = (x & fold_masks[t]) + ((x >> strides[t]) & fold_masks[t]);
            }
            acc += x as u128;
        });
        acc
    }

    /// Overwrite `masks` with the dense row mask of `lo <= value <= hi`:
    /// bit `r % 64` of `masks[r / 64]` is set iff row `r` matches. Bits at
    /// or beyond `len()` are cleared. Degenerate ranges short-circuit
    /// without reading the packed words.
    ///
    /// # Panics
    /// If `masks` is shorter than [`mask_words`]`(self.len())`.
    pub fn fill_range_mask(&self, lo: u64, hi: u64, masks: &mut [u64]) {
        self.fill_range_mask_at(lo, hi, 0, self.len(), masks)
    }

    /// [`Self::fill_range_mask`] restricted to logical rows `start..end`:
    /// bit `(r - start) % 64` of `masks[(r - start) / 64]` is set iff row
    /// `r` matches. The mask is *morsel-local* — bit 0 is row `start` — so
    /// disjoint morsels fill disjoint buffers in parallel. `start` must be
    /// a multiple of 64 so mask words stay aligned with 64-row packed
    /// blocks (the seam-free invariant the fused AND pass relies on).
    ///
    /// # Panics
    /// If `start` is not 64-aligned, the range is out of bounds, or
    /// `masks` is shorter than [`mask_words`]`(end - start)`.
    pub fn fill_range_mask_at(
        &self,
        lo: u64,
        hi: u64,
        start: usize,
        end: usize,
        masks: &mut [u64],
    ) {
        assert!(start.is_multiple_of(64), "morsel start must be 64-aligned");
        assert!(
            start <= end && end <= self.len(),
            "mask range out of bounds"
        );
        let n = mask_words(end - start);
        assert!(
            masks.len() >= n,
            "mask buffer too short: {} < {n}",
            masks.len()
        );
        if self.bits() > WIDE_BITS {
            fill_range_mask_w::<u128>(self, lo, hi, start, end, masks)
        } else {
            fill_range_mask_w::<u64>(self, lo, hi, start, end, masks)
        }
    }

    /// AND the dense row mask of `lo <= value <= hi` into `masks` — the
    /// fused-conjunction pass. A 64-row block whose accumulated mask word
    /// is already zero is skipped without reading its packed words (64 rows
    /// are exactly `bits()` words, word-aligned for every width).
    ///
    /// # Panics
    /// If `masks` is shorter than [`mask_words`]`(self.len())`.
    pub fn and_range_mask(&self, lo: u64, hi: u64, masks: &mut [u64]) {
        self.and_range_mask_at(lo, hi, 0, self.len(), masks)
    }

    /// [`Self::and_range_mask`] restricted to logical rows `start..end`,
    /// with the same morsel-local addressing as
    /// [`Self::fill_range_mask_at`] (bit 0 of `masks[0]` is row `start`).
    /// Zero mask words still skip their 64-row block without touching its
    /// packed words.
    ///
    /// # Panics
    /// If `start` is not 64-aligned, the range is out of bounds, or
    /// `masks` is shorter than [`mask_words`]`(end - start)`.
    pub fn and_range_mask_at(&self, lo: u64, hi: u64, start: usize, end: usize, masks: &mut [u64]) {
        assert!(start.is_multiple_of(64), "morsel start must be 64-aligned");
        assert!(
            start <= end && end <= self.len(),
            "mask range out of bounds"
        );
        let n = mask_words(end - start);
        assert!(
            masks.len() >= n,
            "mask buffer too short: {} < {n}",
            masks.len()
        );
        if self.bits() > WIDE_BITS {
            and_range_mask_w::<u128>(self, lo, hi, start, end, masks)
        } else {
            and_range_mask_w::<u64>(self, lo, hi, start, end, masks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bits: u8, n: usize) -> (BitPackedVec, Vec<u64>) {
        let mask = max_value_for_bits(bits);
        let data: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
            .collect();
        (BitPackedVec::from_slice(bits, &data), data)
    }

    /// The classic haszero trick is inexact (a zero lane can fake a match
    /// in the lane above); the masked-add formula must not be.
    #[test]
    fn eq_lanes_has_no_false_positive_above_a_matching_lane() {
        // Window 0x0100 with 8-bit lanes: lane 0 is 0x00, lane 1 is 0x01.
        let l = Lanes::<u64>::new(8);
        let lm = l.eq_lanes(0x0100, l.broadcast(0));
        assert_eq!(lm & (1 << 7), 1 << 7, "lane 0 really is zero");
        assert_eq!(lm & (1 << 15), 0, "lane 1 (0x01) must not match 0");
    }

    #[test]
    fn ge_lanes_is_exact_for_8_bit_lanes() {
        let l = Lanes::<u64>::new(8);
        for (x, y) in [
            (0u64, 0u64),
            (1, 2),
            (2, 1),
            (255, 255),
            (128, 127),
            (127, 128),
        ] {
            let got = l.ge_lanes(l.broadcast(x), l.broadcast(y));
            let want = if x >= y { l.high } else { 0 };
            assert_eq!(got, want, "x={x} y={y}");
        }
    }

    #[test]
    fn u128_lanes_match_u64_lanes_semantics() {
        // 24-bit codes: 2 lanes in a u64 window, 5 in a u128 window; both
        // must produce the same per-lane verdicts.
        let l64 = Lanes::<u64>::new(24);
        let l128 = Lanes::<u128>::new(24);
        assert_eq!(l64.m, 2);
        assert_eq!(l128.m, 5);
        for (x, y) in [
            (0u64, 1u64),
            (1, 0),
            (77, 77),
            (0xFF_FFFF, 0),
            (0, 0xFF_FFFF),
        ] {
            let w64 = l64.ge_lanes(l64.broadcast(x), l64.broadcast(y));
            let w128 = l128.ge_lanes(l128.broadcast(x), l128.broadcast(y));
            assert_eq!(w64 != 0, w128 != 0, "x={x} y={y}");
        }
    }

    #[test]
    fn swar_matches_scalar_for_every_width() {
        for bits in 1..=64u8 {
            let (v, data) = sample(bits, 517); // non-multiple of 64: partial tail
            let code = data[13];
            let mask = max_value_for_bits(bits);
            let (lo, hi) = (code / 2, code / 2 + mask / 3 + 1);
            let hi = hi.min(mask);

            let want_eq: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, x)| **x == code)
                .map(|(i, _)| i)
                .collect();
            let mut got = Vec::new();
            v.swar_select_eq_into(code, 0, v.len(), 0, &mut got);
            assert_eq!(got, want_eq, "eq width {bits}");
            assert_eq!(
                v.swar_count_eq(code, 0, v.len()),
                want_eq.len(),
                "count width {bits}"
            );

            let want_rng: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, x)| **x >= lo && **x <= hi)
                .map(|(i, _)| i)
                .collect();
            if lo < hi {
                let mut got = Vec::new();
                v.swar_select_in_range_into(lo, hi, 0, v.len(), 0, &mut got);
                assert_eq!(got, want_rng, "range width {bits}");
                assert_eq!(
                    v.swar_count_in_range(lo, hi, 0, v.len()),
                    want_rng.len(),
                    "range count width {bits}"
                );
            }

            assert_eq!(
                v.swar_sum(),
                data.iter().map(|x| *x as u128).sum::<u128>(),
                "sum width {bits}"
            );
        }
    }

    #[test]
    fn swar_sum_all_max_values_every_width() {
        // Worst case for the fold's overflow argument: every lane at 2^b-1.
        for bits in 1..=64u8 {
            let mask = max_value_for_bits(bits);
            let data = vec![mask; 131];
            let v = BitPackedVec::from_slice(bits, &data);
            assert_eq!(v.swar_sum(), 131 * mask as u128, "width {bits}");
        }
    }

    #[test]
    fn fill_and_rows_from_mask_round_trip() {
        for bits in [1u8, 4, 12, 24, 33, 64] {
            let (v, data) = sample(bits, 300);
            let mask = max_value_for_bits(bits);
            let (lo, hi) = (mask / 4, mask / 2);
            let mut masks = vec![0u64; mask_words(v.len())];
            v.fill_range_mask(lo, hi, &mut masks);
            let mut rows = Vec::new();
            rows_from_mask(&masks, v.len(), 10, &mut rows);
            let want: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, x)| **x >= lo && **x <= hi)
                .map(|(i, _)| 10 + i)
                .collect();
            assert_eq!(rows, want, "width {bits}");
            assert_eq!(mask_count(&masks), want.len(), "width {bits}");
        }
    }

    #[test]
    fn and_range_mask_fuses_two_predicates() {
        let (v1, d1) = sample(12, 777);
        let (v2, d2) = sample(7, 777);
        let mut masks = vec![0u64; mask_words(777)];
        v1.fill_range_mask(100, 3000, &mut masks);
        v2.and_range_mask(20, 90, &mut masks);
        let mut rows = Vec::new();
        rows_from_mask(&masks, 777, 0, &mut rows);
        let want: Vec<usize> = (0..777)
            .filter(|&i| (100..=3000).contains(&d1[i]) && (20..=90).contains(&d2[i]))
            .collect();
        assert_eq!(rows, want);
    }

    #[test]
    fn degenerate_ranges_short_circuit() {
        let (v, _) = sample(6, 200);
        let mut masks = vec![u64::MAX; mask_words(200)];
        // Inverted: everything cleared.
        v.fill_range_mask(9, 3, &mut masks);
        assert!(masks.iter().all(|&w| w == 0));
        // Out of width: cleared on AND too.
        masks.fill(u64::MAX);
        v.and_range_mask(64, 100, &mut masks);
        assert!(masks.iter().all(|&w| w == 0));
        // Full domain: fill sets exactly the first `len` bits...
        v.fill_range_mask(0, u64::MAX, &mut masks);
        assert_eq!(mask_count(&masks), 200);
        // ...and AND leaves the accumulated mask untouched.
        let before = masks.clone();
        v.and_range_mask(0, 63, &mut masks);
        assert_eq!(masks, before);
    }

    #[test]
    fn and_skips_zero_blocks() {
        // Functional check that zero words stay zero (the skip is a pure
        // optimization, invisible except in speed).
        let (v, d) = sample(4, 256);
        let mut masks = vec![0u64, u64::MAX, 0, u64::MAX];
        v.and_range_mask(3, 12, &mut masks);
        assert_eq!(masks[0], 0);
        assert_eq!(masks[2], 0);
        let mut rows = Vec::new();
        rows_from_mask(&masks, 256, 0, &mut rows);
        let want: Vec<usize> = (0..256)
            .filter(|&i| (64..128).contains(&i) || i >= 192)
            .filter(|&i| (3..=12).contains(&d[i]))
            .collect();
        assert_eq!(rows, want);
    }
}

//! Word-aligned mutable regions for the parallel Step 2 (Section 6.2.2).
//!
//! The parallel merge assigns each thread `N'_M / N_T` tuples; each thread
//! writes the bit-packed codes of its tuple range. Two threads must never
//! touch the same `u64` word, so ranges are cut at indices that are multiples
//! of 64: the bit offset `i * bits` of such an index is a multiple of 64 for
//! every width, hence every region begins exactly at a word boundary and the
//! underlying buffer can be handed out as disjoint `&mut [u64]` slices.

use crate::vec::{set_in_words, BitPackedVec};
use crate::width::max_value_for_bits;

/// A disjoint writable window of a [`BitPackedVec`], covering logical indices
/// `[start_index, start_index + len)`. Produced by [`BitPackedVec::split_mut`].
pub struct BitRegion<'a> {
    words: &'a mut [u64],
    bits: u8,
    start_index: usize,
    len: usize,
}

impl BitRegion<'_> {
    /// Global index of the first value in this region.
    #[inline]
    pub fn start_index(&self) -> usize {
        self.start_index
    }

    /// Number of values in this region.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the region contains no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at *local* index `i` (i.e. global `start_index + i`).
    ///
    /// # Panics
    /// If `i >= len()` or `value` does not fit the width.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(
            i < self.len,
            "local index {i} out of region bounds (len {})",
            self.len
        );
        let mask = max_value_for_bits(self.bits);
        assert!(
            value <= mask,
            "value {value} does not fit in {} bits",
            self.bits
        );
        set_in_words(self.words, self.bits, i, value);
    }

    /// Fill the whole region front to back with `next(global_index)`, using
    /// an incremental cursor (one shift-add per element, OR-only stores).
    /// This is the parallel Step 2 write path.
    ///
    /// Requires the region's words to be zero (as produced by
    /// [`BitPackedVec::zeroed`](crate::BitPackedVec::zeroed)): values are
    /// OR-ed in without clearing.
    ///
    /// # Panics
    /// If any produced value does not fit the width (debug builds check
    /// every value; release builds mask).
    pub fn fill_sequential(&mut self, mut next: impl FnMut(usize) -> u64) {
        let bits = self.bits as usize;
        let mask = max_value_for_bits(self.bits);
        let mut word = 0usize;
        let mut shift = 0usize;
        for i in 0..self.len {
            let v = next(self.start_index + i);
            debug_assert!(v <= mask, "value {v} does not fit in {bits} bits");
            let v = v & mask;
            self.words[word] |= v << shift;
            if shift + bits > 64 {
                self.words[word + 1] |= v >> (64 - shift);
            }
            shift += bits;
            if shift >= 64 {
                shift -= 64;
                word += 1;
            }
        }
    }
}

/// Split plan over a [`BitPackedVec`]; see [`BitPackedVec::split_mut`].
pub struct RegionSplit<'a> {
    regions: Vec<BitRegion<'a>>,
}

impl<'a> RegionSplit<'a> {
    /// The disjoint regions, in index order.
    pub fn into_regions(self) -> Vec<BitRegion<'a>> {
        self.regions
    }
}

impl BitPackedVec {
    /// Split the vector into `pieces` disjoint mutable regions of (nearly)
    /// equal size whose boundaries are multiples of 64 values, so each region
    /// starts on a `u64` word boundary and the regions can be written from
    /// different threads without synchronization.
    ///
    /// The final region absorbs the remainder. Fewer than `pieces` regions are
    /// returned when the vector is too short to give every piece a non-empty
    /// 64-aligned range.
    ///
    /// # Panics
    /// If `pieces == 0`.
    pub fn split_mut(&mut self, pieces: usize) -> RegionSplit<'_> {
        assert!(pieces > 0, "cannot split into zero pieces");
        let len = self.len();
        let bits = self.bits();

        // Chunk size: multiple of 64 values, at least 64, covering len/pieces.
        let raw = len.div_ceil(pieces).max(1);
        let chunk = raw.div_ceil(64) * 64;

        let mut regions = Vec::with_capacity(pieces);
        let mut start = 0usize;
        let mut words = self.words_mut().as_mut_slice();
        let mut words_consumed = 0usize;
        while start < len {
            let end = (start + chunk).min(len);
            let n = end - start;
            // First bit of this region is start*bits, a multiple of 64.
            let first_word = (start * bits as usize) / 64;
            let last_word = ((end * bits as usize).div_ceil(64)).max(first_word);
            debug_assert_eq!((start * bits as usize) % 64, 0);
            let take = last_word - words_consumed;
            let (mine, rest) = words.split_at_mut(take.min(words.len()));
            words = rest;
            words_consumed += mine.len();
            regions.push(BitRegion {
                words: mine,
                bits,
                start_index: start,
                len: n,
            });
            start = end;
        }
        RegionSplit { regions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_parallel_style(len: usize, bits: u8, pieces: usize) -> BitPackedVec {
        let mask = max_value_for_bits(bits);
        let mut v = BitPackedVec::zeroed(bits, len);
        let regions = v.split_mut(pieces).into_regions();
        // Simulate what threads do: each fills its own region.
        std::thread::scope(|s| {
            for mut r in regions {
                s.spawn(move || {
                    for i in 0..r.len() {
                        let global = r.start_index() + i;
                        r.set(i, (global as u64).wrapping_mul(0x9E37_79B9) & mask);
                    }
                });
            }
        });
        v
    }

    #[test]
    fn regions_cover_exactly_once() {
        for &(len, pieces) in &[
            (0usize, 4usize),
            (1, 4),
            (63, 4),
            (64, 4),
            (65, 4),
            (1000, 7),
            (4096, 16),
            (100, 1),
        ] {
            let mut v = BitPackedVec::zeroed(5, len);
            let regions = v.split_mut(pieces).into_regions();
            let mut covered = 0usize;
            for r in &regions {
                assert_eq!(r.start_index(), covered, "regions must be contiguous");
                assert_eq!(r.start_index() % 64, 0, "region start must be 64-aligned");
                covered += r.len();
            }
            assert_eq!(covered, len, "regions must cover the vector (len={len})");
        }
    }

    #[test]
    fn threaded_fill_matches_serial_for_many_widths() {
        for &bits in &[1u8, 3, 7, 8, 13, 17, 31, 32, 33, 48, 63, 64] {
            let len = 1543;
            let mask = max_value_for_bits(bits);
            let par = fill_parallel_style(len, bits, 6);
            let mut ser = BitPackedVec::zeroed(bits, len);
            for i in 0..len {
                ser.set(i, (i as u64).wrapping_mul(0x9E37_79B9) & mask);
            }
            assert_eq!(par.to_vec(), ser.to_vec(), "width {bits}");
        }
    }

    #[test]
    fn single_piece_is_whole_vector() {
        let mut v = BitPackedVec::zeroed(9, 500);
        let regions = v.split_mut(1).into_regions();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].len(), 500);
        assert_eq!(regions[0].start_index(), 0);
    }

    #[test]
    fn more_pieces_than_chunks_collapses() {
        let mut v = BitPackedVec::zeroed(4, 100);
        // chunk = ceil(ceil(100/64)/64)*64 => 64; two regions: 64 + 36.
        let regions = v.split_mut(64).into_regions();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].len(), 64);
        assert_eq!(regions[1].len(), 36);
    }

    #[test]
    fn empty_vector_yields_no_regions() {
        let mut v = BitPackedVec::zeroed(4, 0);
        assert!(v.split_mut(8).into_regions().is_empty());
    }

    #[test]
    #[should_panic(expected = "zero pieces")]
    fn zero_pieces_panics() {
        let mut v = BitPackedVec::zeroed(4, 10);
        let _ = v.split_mut(0);
    }

    #[test]
    fn fill_sequential_matches_set_for_many_widths() {
        for &bits in &[1u8, 3, 7, 13, 21, 31, 33, 48, 63, 64] {
            let len = 1111;
            let mask = max_value_for_bits(bits);
            let gen = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;

            let mut a = BitPackedVec::zeroed(bits, len);
            for mut r in a.split_mut(5).into_regions() {
                r.fill_sequential(gen);
            }
            let mut b = BitPackedVec::zeroed(bits, len);
            for i in 0..len {
                b.set(i, gen(i));
            }
            assert_eq!(a.to_vec(), b.to_vec(), "width {bits}");
        }
    }

    #[test]
    fn fill_sequential_threaded() {
        let len = 100_000;
        let bits = 17u8;
        let mask = max_value_for_bits(bits);
        let mut v = BitPackedVec::zeroed(bits, len);
        std::thread::scope(|s| {
            for mut r in v.split_mut(8).into_regions() {
                s.spawn(move || r.fill_sequential(|i| (i as u64 * 7) & mask));
            }
        });
        for i in (0..len).step_by(997) {
            assert_eq!(v.get(i), (i as u64 * 7) & mask);
        }
    }

    #[test]
    fn region_set_rejects_out_of_bounds() {
        let mut v = BitPackedVec::zeroed(4, 128);
        let mut regions = v.split_mut(2).into_regions();
        let r = &mut regions[0];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.set(64, 1);
        }));
        assert!(result.is_err());
    }
}

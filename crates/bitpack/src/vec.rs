//! The dense fixed-width bit-packed vector.

use crate::width::max_value_for_bits;

/// A vector of unsigned integers, each stored with a fixed number of bits
/// (1..=64), packed back-to-back into `u64` words.
///
/// Value `i` occupies bits `[i*bits, (i+1)*bits)` of the word buffer,
/// little-endian within each word: bit `b` of the logical stream is bit
/// `b % 64` of word `b / 64`. A value may straddle two words.
///
/// This is the physical layout of both the main partition's code column and
/// the auxiliary translation tables when they are stored compressed
/// (Equations 9/10 charge `E'_C / 8` bytes per auxiliary entry).
#[derive(Clone, PartialEq, Eq)]
pub struct BitPackedVec {
    words: Vec<u64>,
    len: usize,
    bits: u8,
}

impl std::fmt::Debug for BitPackedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitPackedVec")
            .field("len", &self.len)
            .field("bits", &self.bits)
            .finish()
    }
}

#[inline]
fn words_for(len: usize, bits: u8) -> usize {
    let total_bits = len * bits as usize;
    total_bits.div_ceil(64)
}

impl BitPackedVec {
    /// An empty vector storing `bits`-wide values.
    ///
    /// # Panics
    /// If `bits` is not in `1..=64`.
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "bits must be in 1..=64, got {bits}"
        );
        Self {
            words: Vec::new(),
            len: 0,
            bits,
        }
    }

    /// An empty vector with room for `capacity` values before reallocating.
    pub fn with_capacity(bits: u8, capacity: usize) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "bits must be in 1..=64, got {bits}"
        );
        Self {
            words: Vec::with_capacity(words_for(capacity, bits)),
            len: 0,
            bits,
        }
    }

    /// A vector of `len` zero values. Used as the pre-sized output buffer of
    /// the parallel Step 2 (each thread fills its own region).
    pub fn zeroed(bits: u8, len: usize) -> Self {
        Self::zeroed_in(bits, len, Vec::new())
    }

    /// As [`Self::zeroed`], but reusing `buf` as the word storage: the buffer
    /// is cleared and zero-resized, so when its capacity already covers
    /// `len` values no heap allocation happens. This is the buffer-reuse
    /// hook the merge pipeline's scratch arena builds on (pair it with
    /// [`Self::into_words`] to recycle a retired vector's storage).
    pub fn zeroed_in(bits: u8, len: usize, mut buf: Vec<u64>) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "bits must be in 1..=64, got {bits}"
        );
        buf.clear();
        buf.resize(words_for(len, bits), 0);
        Self {
            words: buf,
            len,
            bits,
        }
    }

    /// Consume the vector, returning its word buffer for reuse (see
    /// [`Self::zeroed_in`]).
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Reassemble a vector from a persisted word buffer (the checkpoint
    /// deserialization path). `words` must hold at least
    /// `ceil(len * bits / 64)` words; extra words are dropped.
    ///
    /// # Panics
    /// If `bits` is not in `1..=64` or `words` is too short for `len`.
    pub fn from_words(bits: u8, len: usize, mut words: Vec<u64>) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "bits must be in 1..=64, got {bits}"
        );
        let needed = words_for(len, bits);
        assert!(
            words.len() >= needed,
            "word buffer too short: {} < {needed}",
            words.len()
        );
        words.truncate(needed);
        Self { words, len, bits }
    }

    /// Build from a slice of already-valid codes.
    ///
    /// # Panics
    /// If any value does not fit in `bits` bits.
    pub fn from_slice(bits: u8, values: &[u64]) -> Self {
        let mut v = Self::with_capacity(bits, values.len());
        for &x in values {
            v.push(x);
        }
        v
    }

    /// Number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed per-value width in bits (the paper's `E_C`).
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Heap bytes used by the packed representation. This is the quantity the
    /// memory-traffic model charges for streaming the partition (Eq. 13/14).
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Read the value at index `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let bits = self.bits as usize;
        let bit = i * bits;
        let word = bit / 64;
        let shift = bit % 64;
        let mask = max_value_for_bits(self.bits);
        let lo = self.words[word] >> shift;
        if shift + bits <= 64 {
            lo & mask
        } else {
            let hi = self.words[word + 1] << (64 - shift);
            (lo | hi) & mask
        }
    }

    /// Overwrite the value at index `i`.
    ///
    /// # Panics
    /// If `i >= len()` or `value` does not fit in `bits()` bits.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let mask = max_value_for_bits(self.bits);
        assert!(
            value <= mask,
            "value {value} does not fit in {} bits",
            self.bits
        );
        set_in_words(&mut self.words, self.bits, i, value);
    }

    /// Append a value.
    ///
    /// # Panics
    /// If `value` does not fit in `bits()` bits.
    #[inline]
    pub fn push(&mut self, value: u64) {
        let mask = max_value_for_bits(self.bits);
        assert!(
            value <= mask,
            "value {value} does not fit in {} bits",
            self.bits
        );
        let i = self.len;
        self.len += 1;
        let needed = words_for(self.len, self.bits);
        if self.words.len() < needed {
            self.words.resize(needed, 0);
        }
        set_in_words(&mut self.words, self.bits, i, value);
    }

    /// Iterate over all stored values in index order.
    pub fn iter(&self) -> BitPackedIter<'_> {
        BitPackedIter { vec: self, next: 0 }
    }

    /// Decode values `range` into `out` (one `u64` per value).
    ///
    /// # Panics
    /// If the range is out of bounds or `out` is shorter than the range.
    pub fn unpack_into(&self, start: usize, out: &mut [u64]) {
        assert!(start + out.len() <= self.len, "unpack range out of bounds");
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.get(start + k);
        }
    }

    /// Decode the whole vector into a fresh `Vec<u64>`.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Raw word buffer (read-only). Exposed for zero-copy consumers (e.g.
    /// benchmark checksums over the packed representation).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    pub(crate) fn words_mut(&mut self) -> &mut Vec<u64> {
        &mut self.words
    }
}

/// Write `value` (already validated to fit) at logical index `i`.
#[inline]
pub(crate) fn set_in_words(words: &mut [u64], bits: u8, i: usize, value: u64) {
    let bits = bits as usize;
    let bit = i * bits;
    let word = bit / 64;
    let shift = bit % 64;
    let mask = max_value_for_bits(bits as u8);
    words[word] &= !(mask << shift);
    words[word] |= value << shift;
    if shift + bits > 64 {
        let spill = 64 - shift;
        words[word + 1] &= !(mask >> spill);
        words[word + 1] |= value >> spill;
    }
}

/// Iterator over a [`BitPackedVec`].
pub struct BitPackedIter<'a> {
    vec: &'a BitPackedVec,
    next: usize,
}

impl Iterator for BitPackedIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.next >= self.vec.len {
            None
        } else {
            let v = self.vec.get(self.next);
            self.next += 1;
            Some(v)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BitPackedIter<'_> {}

impl<'a> IntoIterator for &'a BitPackedVec {
    type Item = u64;
    type IntoIter = BitPackedIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::iter::FromIterator<u64> for BitPackedVec {
    /// Collect into a vector sized to the maximum element
    /// (`bits = bits_for(max + 1)`). Requires buffering; prefer
    /// [`BitPackedVec::from_slice`] when the width is known.
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let vals: Vec<u64> = iter.into_iter().collect();
        let max = vals.iter().copied().max().unwrap_or(0);
        let bits = crate::width::bits_for((max as usize).saturating_add(1)).max(1);
        Self::from_slice(bits, &vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let v = BitPackedVec::new(7);
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert_eq!(v.bits(), 7);
        assert_eq!(v.packed_bytes(), 0);
        assert_eq!(v.to_vec(), Vec::<u64>::new());
    }

    #[test]
    fn push_get_roundtrip_small_width() {
        let mut v = BitPackedVec::new(3);
        let data = [0u64, 7, 3, 5, 1, 2, 6, 4, 0, 7, 7, 7];
        for &x in &data {
            v.push(x);
        }
        assert_eq!(v.len(), data.len());
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(v.get(i), x, "index {i}");
        }
    }

    #[test]
    fn straddles_word_boundary() {
        // 33-bit values: every second value straddles a word boundary.
        let mut v = BitPackedVec::new(33);
        let data: Vec<u64> = (0..100).map(|i| (1u64 << 32) + i * 12345).collect();
        for &x in &data {
            v.push(x);
        }
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(v.get(i), x, "index {i}");
        }
    }

    #[test]
    fn full_width_64() {
        let mut v = BitPackedVec::new(64);
        let data = [u64::MAX, 0, 1, u64::MAX - 1, 0xdead_beef_cafe_f00d];
        for &x in &data {
            v.push(x);
        }
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(v.get(i), x);
        }
        assert_eq!(v.packed_bytes(), data.len() * 8);
    }

    #[test]
    fn one_bit_width() {
        let mut v = BitPackedVec::new(1);
        let data: Vec<u64> = (0..200).map(|i| (i % 3 == 0) as u64).collect();
        for &x in &data {
            v.push(x);
        }
        assert_eq!(v.to_vec(), data);
        // 200 bits -> 4 words -> 32 bytes.
        assert_eq!(v.packed_bytes(), 32);
    }

    #[test]
    fn set_overwrites_without_touching_neighbors() {
        let mut v = BitPackedVec::from_slice(5, &[1, 2, 3, 4, 5, 6, 7, 8]);
        v.set(3, 31);
        assert_eq!(v.to_vec(), vec![1, 2, 3, 31, 5, 6, 7, 8]);
        v.set(0, 0);
        v.set(7, 30);
        assert_eq!(v.to_vec(), vec![0, 2, 3, 31, 5, 6, 7, 30]);
    }

    #[test]
    fn set_straddling_overwrite() {
        // width 61: heavy straddling; overwrite the middle value repeatedly.
        let mut v = BitPackedVec::from_slice(61, &[7; 9]);
        for i in 0..9 {
            v.set(i, i as u64 + (1u64 << 60));
        }
        for i in 0..9 {
            assert_eq!(v.get(i), i as u64 + (1u64 << 60));
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_too_wide_panics() {
        let mut v = BitPackedVec::new(4);
        v.push(16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v = BitPackedVec::from_slice(4, &[1, 2, 3]);
        v.get(3);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=64")]
    fn zero_bits_rejected() {
        BitPackedVec::new(0);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=64")]
    fn sixty_five_bits_rejected() {
        BitPackedVec::new(65);
    }

    #[test]
    fn zeroed_is_all_zero() {
        let v = BitPackedVec::zeroed(13, 1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|x| x == 0));
    }

    #[test]
    fn from_words_round_trips() {
        let data: Vec<u64> = (0..130).map(|i| i % 31).collect();
        let v = BitPackedVec::from_slice(5, &data);
        let back = BitPackedVec::from_words(v.bits(), v.len(), v.words().to_vec());
        assert_eq!(back, v);
        assert_eq!(back.to_vec(), data);
    }

    #[test]
    #[should_panic(expected = "word buffer too short")]
    fn from_words_rejects_short_buffer() {
        BitPackedVec::from_words(64, 3, vec![0, 0]);
    }

    #[test]
    fn from_iter_picks_width() {
        let v: BitPackedVec = [0u64, 5, 9].into_iter().collect();
        // max 9 -> cardinality 10 -> 4 bits
        assert_eq!(v.bits(), 4);
        assert_eq!(v.to_vec(), vec![0, 5, 9]);
    }

    #[test]
    fn iterator_matches_get_for_every_width() {
        for bits in 1..=64u8 {
            let mask = max_value_for_bits(bits);
            let data: Vec<u64> = (0..130u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & mask)
                .collect();
            let v = BitPackedVec::from_slice(bits, &data);
            let decoded: Vec<u64> = v.iter().collect();
            assert_eq!(decoded, data, "width {bits}");
            assert_eq!(v.iter().len(), data.len());
        }
    }

    #[test]
    fn unpack_into_subrange() {
        let data: Vec<u64> = (0..64).collect();
        let v = BitPackedVec::from_slice(7, &data);
        let mut out = [0u64; 10];
        v.unpack_into(20, &mut out);
        assert_eq!(out.to_vec(), (20u64..30).collect::<Vec<_>>());
    }

    #[test]
    fn packed_bytes_matches_equation_13() {
        // Eq. 13: E_C * N / 8 bytes to stream the partition (rounded up to words).
        let v = BitPackedVec::zeroed(10, 1_000);
        // 10_000 bits -> 157 words (ceil(10000/64) = 157) -> 1256 bytes.
        assert_eq!(v.packed_bytes(), 157 * 8);
    }
}

//! Scan kernels over the packed representation.
//!
//! Section 3: "most queries can be executed with a binary search (random
//! access) in the dictionary while scanning the column (sequential access)
//! for the encoded value only". The public kernels implement that
//! sequential access word-parallel: degenerate ranges are resolved here at
//! the word level (no cursor is ever built for an inverted, out-of-width,
//! or full-domain range), and everything else runs on the SWAR
//! broadcast-compare-and-mask loops in [`crate::swar`].
//!
//! The scalar [`SeqCursor`] path — one shift-add per element, the word
//! index and shift carried across iterations — remains as the merge
//! pipeline's sequential decoder and as the reference oracle the SWAR
//! kernels are equivalence-tested against (`*_scalar` variants).

use crate::vec::BitPackedVec;
use crate::width::max_value_for_bits;

/// Incremental cursor decoding values front to back — the sequential read
/// path of merge Step 2 and of the scan kernels. One shift-add per element;
/// no per-index multiply/divide.
pub struct SeqCursor<'a> {
    words: &'a [u64],
    bits: usize,
    mask: u64,
    word: usize,
    shift: usize,
    remaining: usize,
}

impl<'a> SeqCursor<'a> {
    #[inline]
    fn new(v: &'a BitPackedVec) -> Self {
        Self::new_at(v, 0)
    }

    /// Cursor positioned at logical index `start`.
    #[inline]
    pub(crate) fn new_at(v: &'a BitPackedVec, start: usize) -> Self {
        assert!(start <= v.len(), "cursor start out of bounds");
        let bit = start * v.bits() as usize;
        Self {
            words: v.words(),
            bits: v.bits() as usize,
            mask: max_value_for_bits(v.bits()),
            word: bit / 64,
            shift: bit % 64,
            remaining: v.len() - start,
        }
    }

    /// Decode the next value.
    ///
    /// # Panics
    /// If the cursor is exhausted.
    #[inline]
    pub fn next_value(&mut self) -> u64 {
        assert!(self.remaining > 0, "cursor exhausted");
        self.remaining -= 1;
        let lo = self.words[self.word] >> self.shift;
        let v = if self.shift + self.bits <= 64 {
            lo & self.mask
        } else {
            (lo | (self.words[self.word + 1] << (64 - self.shift))) & self.mask
        };
        self.shift += self.bits;
        if self.shift >= 64 {
            self.shift -= 64;
            self.word += 1;
        }
        v
    }

    /// Values left to decode.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl BitPackedVec {
    /// A sequential cursor starting at logical index `start` (e.g. a
    /// thread's tuple-range start in the parallel Step 2).
    pub fn cursor_at(&self, start: usize) -> SeqCursor<'_> {
        SeqCursor::new_at(self, start)
    }
}

// Keep the private alias used by the kernels below.
use SeqCursor as Cursor;

impl BitPackedVec {
    /// Visit every value in index order with an incremental cursor —
    /// noticeably faster than repeated [`BitPackedVec::get`] because the bit
    /// position is carried, not recomputed.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(usize, u64)) {
        if self.is_empty() {
            return;
        }
        let mut cur = Cursor::new(self);
        for i in 0..self.len() {
            f(i, cur.next_value());
        }
    }

    /// Value-id equality kernel: append `base + i` to `out` for every index
    /// `i` whose packed value equals `code`. The `base` offset lets a query
    /// engine compose per-partition scans into one global selection vector
    /// without a re-map pass; appending (rather than returning a fresh
    /// vector) lets disjoint partitions share the allocation.
    ///
    /// Runs word-parallel: a whole window of codes is compared at once by
    /// the SWAR kernels (the `swar` module).
    pub fn select_eq_into(&self, code: u64, base: usize, out: &mut Vec<usize>) {
        self.select_eq_into_at(code, 0, self.len(), base, out)
    }

    /// [`Self::select_eq_into`] restricted to logical indices
    /// `start..end` — the per-morsel equality kernel. Emitted row ids are
    /// still global (`base + i` for the global index `i`), so per-morsel
    /// outputs concatenated in morsel order are byte-identical to one
    /// full-column scan.
    ///
    /// # Panics
    /// If `start > end` or `end > len()`.
    pub fn select_eq_into_at(
        &self,
        code: u64,
        start: usize,
        end: usize,
        base: usize,
        out: &mut Vec<usize>,
    ) {
        assert!(
            start <= end && end <= self.len(),
            "scan range out of bounds"
        );
        if code > max_value_for_bits(self.bits()) || start == end {
            return;
        }
        self.swar_select_eq_into(code, start, end, base, out);
    }

    /// Scalar reference for [`Self::select_eq_into`] (the cursor loop the
    /// SWAR kernel is equivalence-tested against).
    pub fn select_eq_scalar_into(&self, code: u64, base: usize, out: &mut Vec<usize>) {
        if code > max_value_for_bits(self.bits()) {
            return;
        }
        self.for_each(|i, v| {
            if v == code {
                out.push(base + i);
            }
        });
    }

    /// Value-id range kernel: append `base + i` to `out` for every index `i`
    /// whose packed value lies in `[lo, hi]` — the compressed-scan primitive
    /// behind predicate pushdown (codes are order-preserving, so a value
    /// range is a code range; no value is ever materialized).
    ///
    /// Degenerate ranges short-circuit at the word level: an inverted or
    /// out-of-width range returns without touching the packed words, and a
    /// range covering the full code domain emits every row without a single
    /// compare. Everything else runs on the SWAR range kernel.
    pub fn select_in_range_into(&self, lo: u64, hi: u64, base: usize, out: &mut Vec<usize>) {
        self.select_in_range_into_at(lo, hi, 0, self.len(), base, out)
    }

    /// [`Self::select_in_range_into`] restricted to logical indices
    /// `start..end` — the per-morsel range kernel. Row ids stay global, and
    /// degenerate ranges short-circuit at the word level exactly as in the
    /// full-column form (a full-domain range emits `base+start..base+end`
    /// without a compare).
    ///
    /// # Panics
    /// If `start > end` or `end > len()`.
    pub fn select_in_range_into_at(
        &self,
        lo: u64,
        hi: u64,
        start: usize,
        end: usize,
        base: usize,
        out: &mut Vec<usize>,
    ) {
        assert!(
            start <= end && end <= self.len(),
            "scan range out of bounds"
        );
        let max = max_value_for_bits(self.bits());
        if lo > hi || lo > max || start == end {
            return;
        }
        let hi = hi.min(max);
        if lo == 0 && hi == max {
            out.extend(base + start..base + end);
            return;
        }
        if lo == hi {
            return self.swar_select_eq_into(lo, start, end, base, out);
        }
        self.swar_select_in_range_into(lo, hi, start, end, base, out);
    }

    /// Scalar reference for [`Self::select_in_range_into`].
    pub fn select_in_range_scalar_into(&self, lo: u64, hi: u64, base: usize, out: &mut Vec<usize>) {
        if lo > hi {
            return;
        }
        if lo == hi {
            return self.select_eq_scalar_into(lo, base, out);
        }
        self.for_each(|i, v| {
            if v >= lo && v <= hi {
                out.push(base + i);
            }
        });
    }

    /// Indices whose value equals `code` (the equality-scan kernel).
    pub fn positions_eq(&self, code: u64) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_eq_into(code, 0, &mut out);
        out
    }

    /// Indices whose value lies in `[lo, hi]` (the range-scan kernel; valid
    /// because dictionary codes are order-preserving).
    pub fn positions_in_range(&self, lo: u64, hi: u64) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_in_range_into(lo, hi, 0, &mut out);
        out
    }

    /// Number of values equal to `code` (SWAR popcount over per-window
    /// match masks — no row id is ever materialized).
    pub fn count_eq(&self, code: u64) -> usize {
        self.count_eq_at(code, 0, self.len())
    }

    /// [`Self::count_eq`] restricted to logical indices `start..end`.
    ///
    /// # Panics
    /// If `start > end` or `end > len()`.
    pub fn count_eq_at(&self, code: u64, start: usize, end: usize) -> usize {
        assert!(
            start <= end && end <= self.len(),
            "scan range out of bounds"
        );
        if code > max_value_for_bits(self.bits()) || start == end {
            return 0;
        }
        self.swar_count_eq(code, start, end)
    }

    /// Scalar reference for [`Self::count_eq`].
    pub fn count_eq_scalar(&self, code: u64) -> usize {
        let mut n = 0usize;
        self.for_each(|_, v| n += (v == code) as usize);
        n
    }

    /// Number of values in `[lo, hi]` — the popcount kernel behind
    /// `count()` queries that need no row ids. Degenerate ranges
    /// short-circuit at the word level; a full-domain range is just
    /// [`Self::len`].
    pub fn count_in_range(&self, lo: u64, hi: u64) -> usize {
        self.count_in_range_at(lo, hi, 0, self.len())
    }

    /// [`Self::count_in_range`] restricted to logical indices `start..end`
    /// — the per-morsel count kernel. Per-morsel counts summed in any
    /// order equal the full-column count.
    ///
    /// # Panics
    /// If `start > end` or `end > len()`.
    pub fn count_in_range_at(&self, lo: u64, hi: u64, start: usize, end: usize) -> usize {
        assert!(
            start <= end && end <= self.len(),
            "scan range out of bounds"
        );
        let max = max_value_for_bits(self.bits());
        if lo > hi || lo > max || start == end {
            return 0;
        }
        let hi = hi.min(max);
        if lo == 0 && hi == max {
            return end - start;
        }
        if lo == hi {
            return self.swar_count_eq(lo, start, end);
        }
        self.swar_count_in_range(lo, hi, start, end)
    }

    /// Scalar reference for [`Self::count_in_range`].
    pub fn count_in_range_scalar(&self, lo: u64, hi: u64) -> usize {
        let mut n = 0usize;
        self.for_each(|_, v| n += (v >= lo && v <= hi) as usize);
        n
    }

    /// Sum of all stored values (used for aggregate pushdown over codes).
    /// Folds each 64-bit window's lanes pairwise instead of accumulating
    /// per element.
    pub fn sum(&self) -> u128 {
        self.swar_sum()
    }

    /// [`Self::sum`] restricted to logical indices `start..end` — the
    /// per-morsel aggregate kernel. Per-morsel sums are associative, so any
    /// combine order reproduces the full-column sum.
    ///
    /// # Panics
    /// If `start > end` or `end > len()`.
    pub fn sum_range(&self, start: usize, end: usize) -> u128 {
        assert!(
            start <= end && end <= self.len(),
            "scan range out of bounds"
        );
        self.swar_sum_range(start, end)
    }

    /// Scalar reference for [`Self::sum`].
    pub fn sum_scalar(&self) -> u128 {
        let mut acc: u128 = 0;
        self.for_each(|_, v| acc += v as u128);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bits: u8, n: usize) -> (BitPackedVec, Vec<u64>) {
        let mask = max_value_for_bits(bits);
        let data: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
            .collect();
        (BitPackedVec::from_slice(bits, &data), data)
    }

    #[test]
    fn for_each_matches_get_for_every_width() {
        for bits in 1..=64u8 {
            let (v, data) = sample(bits, 333);
            let mut seen = Vec::with_capacity(data.len());
            v.for_each(|i, x| {
                assert_eq!(x, v.get(i), "width {bits}, index {i}");
                seen.push(x);
            });
            assert_eq!(seen, data, "width {bits}");
        }
    }

    #[test]
    fn positions_eq_matches_filter() {
        let (v, data) = sample(5, 1000);
        for code in [0u64, 7, 31] {
            let want: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, x)| **x == code)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(v.positions_eq(code), want, "code {code}");
        }
    }

    #[test]
    fn positions_eq_out_of_width_code_is_empty() {
        let (v, _) = sample(4, 100);
        assert!(v.positions_eq(16).is_empty());
        assert!(v.positions_eq(u64::MAX).is_empty());
    }

    #[test]
    fn positions_in_range_matches_filter() {
        let (v, data) = sample(7, 1000);
        for (lo, hi) in [(0u64, 127u64), (10, 20), (64, 64), (100, 10)] {
            let want: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, x)| **x >= lo && **x <= hi)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(v.positions_in_range(lo, hi), want, "range {lo}..={hi}");
        }
    }

    #[test]
    fn count_and_sum_agree_with_decode() {
        let (v, data) = sample(9, 2048);
        assert_eq!(v.sum(), data.iter().map(|x| *x as u128).sum::<u128>());
        let c = data[17];
        assert_eq!(v.count_eq(c), data.iter().filter(|x| **x == c).count());
    }

    #[test]
    fn select_into_offsets_and_appends() {
        let (v, data) = sample(6, 500);
        let code = data[3];
        let mut out = vec![7usize];
        v.select_eq_into(code, 1_000, &mut out);
        let want: Vec<usize> = std::iter::once(7)
            .chain(
                data.iter()
                    .enumerate()
                    .filter(|(_, x)| **x == code)
                    .map(|(i, _)| 1_000 + i),
            )
            .collect();
        assert_eq!(out, want, "appends with base offset, keeps prior content");

        let mut ranged = Vec::new();
        v.select_in_range_into(10, 40, 64, &mut ranged);
        let want: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, x)| **x >= 10 && **x <= 40)
            .map(|(i, _)| 64 + i)
            .collect();
        assert_eq!(ranged, want);

        // Degenerate ranges: inverted is empty, collapsed equals eq.
        let mut none = Vec::new();
        v.select_in_range_into(40, 10, 0, &mut none);
        assert!(none.is_empty());
        let mut collapsed = Vec::new();
        v.select_in_range_into(code, code, 0, &mut collapsed);
        assert_eq!(collapsed, v.positions_eq(code));
    }

    #[test]
    fn degenerate_ranges_word_level() {
        let (v, data) = sample(4, 333);
        // Out-of-width range: nothing, without scanning.
        let mut out = Vec::new();
        v.select_in_range_into(16, 99, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(v.count_in_range(16, 99), 0);
        // Full-domain range: every row, without comparing.
        let mut all = Vec::new();
        v.select_in_range_into(0, u64::MAX, 5, &mut all);
        assert_eq!(all, (5..5 + data.len()).collect::<Vec<_>>());
        assert_eq!(v.count_in_range(0, u64::MAX), data.len());
        // hi clamps to the width: [10, huge] == [10, 15].
        let mut clamped = Vec::new();
        v.select_in_range_into(10, u64::MAX, 0, &mut clamped);
        assert_eq!(clamped, v.positions_in_range(10, 15));
    }

    #[test]
    fn swar_kernels_agree_with_scalar_reference() {
        for bits in [1u8, 3, 12, 24, 33, 63, 64] {
            let (v, data) = sample(bits, 700);
            let code = data[42];
            let mask = max_value_for_bits(bits);
            let (lo, hi) = (mask / 5, mask / 2 + 1);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            v.select_eq_into(code, 3, &mut a);
            v.select_eq_scalar_into(code, 3, &mut b);
            assert_eq!(a, b, "eq width {bits}");
            let (mut a, mut b) = (Vec::new(), Vec::new());
            v.select_in_range_into(lo, hi, 0, &mut a);
            v.select_in_range_scalar_into(lo, hi, 0, &mut b);
            assert_eq!(a, b, "range width {bits}");
            assert_eq!(
                v.count_eq(code),
                v.count_eq_scalar(code),
                "count width {bits}"
            );
            assert_eq!(
                v.count_in_range(lo, hi),
                v.count_in_range_scalar(lo, hi),
                "count range width {bits}"
            );
            assert_eq!(v.sum(), v.sum_scalar(), "sum width {bits}");
        }
    }

    #[test]
    fn count_in_range_matches_positions() {
        let (v, _) = sample(9, 1234);
        for (lo, hi) in [(0u64, 511u64), (100, 300), (7, 7), (300, 100)] {
            assert_eq!(
                v.count_in_range(lo, hi),
                v.positions_in_range(lo, hi).len(),
                "range {lo}..={hi}"
            );
        }
    }

    #[test]
    fn range_restricted_kernels_match_full_scan_slices() {
        // Per-morsel kernels over 64-aligned seams must reproduce exactly
        // the slice of the full-column scan falling in each subrange —
        // concatenation in morsel order is then byte-identical to serial.
        for bits in [1u8, 3, 8, 12, 24, 33, 64] {
            let (v, data) = sample(bits, 517);
            let mask = max_value_for_bits(bits);
            let (lo, hi) = (mask / 5, mask / 2 + 1);
            let code = data[42];
            let cuts = [0usize, 64, 192, 512, 517];
            let mut cat_rng = Vec::new();
            let mut cat_eq = Vec::new();
            let mut count = 0usize;
            let mut total: u128 = 0;
            for w in cuts.windows(2) {
                let (s, e) = (w[0], w[1]);
                v.select_in_range_into_at(lo, hi, s, e, 7, &mut cat_rng);
                v.select_eq_into_at(code, s, e, 7, &mut cat_eq);
                count += v.count_in_range_at(lo, hi, s, e);
                total += v.sum_range(s, e);
            }
            let mut full_rng = Vec::new();
            let mut full_eq = Vec::new();
            v.select_in_range_into(lo, hi, 7, &mut full_rng);
            v.select_eq_into(code, 7, &mut full_eq);
            assert_eq!(cat_rng, full_rng, "range width {bits}");
            assert_eq!(cat_eq, full_eq, "eq width {bits}");
            assert_eq!(count, v.count_in_range(lo, hi), "count width {bits}");
            assert_eq!(total, v.sum(), "sum width {bits}");
            // Degenerates inside a subrange: full domain emits the range,
            // inverted emits nothing.
            let mut all = Vec::new();
            v.select_in_range_into_at(0, u64::MAX, 64, 192, 0, &mut all);
            assert_eq!(all, (64..192).collect::<Vec<_>>(), "width {bits}");
            assert_eq!(v.count_in_range_at(5, 1, 64, 192), 0);
        }
    }

    #[test]
    fn morsel_local_masks_match_full_mask_slices() {
        use crate::swar::{mask_words, rows_from_mask};
        for bits in [1u8, 4, 12, 24, 33, 64] {
            let (v1, d1) = sample(bits, 391);
            let (v2, d2) = sample(7, 391);
            let full = {
                let mut m = vec![0u64; mask_words(v1.len())];
                v1.fill_range_mask(
                    max_value_for_bits(bits) / 4,
                    max_value_for_bits(bits) / 2,
                    &mut m,
                );
                v2.and_range_mask(20, 90, &mut m);
                m
            };
            let mut rows = Vec::new();
            for (s, e) in [(0usize, 128usize), (128, 384), (384, 391)] {
                let mut m = vec![0u64; mask_words(e - s)];
                v1.fill_range_mask_at(
                    max_value_for_bits(bits) / 4,
                    max_value_for_bits(bits) / 2,
                    s,
                    e,
                    &mut m,
                );
                v2.and_range_mask_at(20, 90, s, e, &mut m);
                // 64-aligned start: local words are exact slices of the
                // full mask.
                for (j, &w) in m.iter().enumerate() {
                    assert_eq!(w, full[s / 64 + j], "width {bits} seam {s}");
                }
                rows_from_mask(&m, e - s, s, &mut rows);
            }
            let want: Vec<usize> = (0..391)
                .filter(|&i| {
                    let lo = max_value_for_bits(bits) / 4;
                    let hi = max_value_for_bits(bits) / 2;
                    (lo..=hi).contains(&d1[i]) && (20..=90).contains(&d2[i])
                })
                .collect();
            assert_eq!(rows, want, "width {bits}");
        }
    }

    #[test]
    fn empty_vector_kernels() {
        let v = BitPackedVec::new(8);
        assert!(v.positions_eq(0).is_empty());
        assert!(v.positions_in_range(0, 255).is_empty());
        assert_eq!(v.count_eq(0), 0);
        assert_eq!(v.sum(), 0);
        let mut called = false;
        v.for_each(|_, _| called = true);
        assert!(!called);
    }
}

//! Sequential scan kernels over the packed representation.
//!
//! Section 3: "most queries can be executed with a binary search (random
//! access) in the dictionary while scanning the column (sequential access)
//! for the encoded value only". These kernels implement that sequential
//! access without materializing values: an incremental bit cursor advances
//! one addition per element (no per-index multiply/divide), the word index
//! and shift carried across iterations — the scalar analogue of the
//! SIMD-Scan the paper cites \[27\].

use crate::vec::BitPackedVec;
use crate::width::max_value_for_bits;

/// Incremental cursor decoding values front to back — the sequential read
/// path of merge Step 2 and of the scan kernels. One shift-add per element;
/// no per-index multiply/divide.
pub struct SeqCursor<'a> {
    words: &'a [u64],
    bits: usize,
    mask: u64,
    word: usize,
    shift: usize,
    remaining: usize,
}

impl<'a> SeqCursor<'a> {
    #[inline]
    fn new(v: &'a BitPackedVec) -> Self {
        Self::new_at(v, 0)
    }

    /// Cursor positioned at logical index `start`.
    #[inline]
    pub(crate) fn new_at(v: &'a BitPackedVec, start: usize) -> Self {
        assert!(start <= v.len(), "cursor start out of bounds");
        let bit = start * v.bits() as usize;
        Self {
            words: v.words(),
            bits: v.bits() as usize,
            mask: max_value_for_bits(v.bits()),
            word: bit / 64,
            shift: bit % 64,
            remaining: v.len() - start,
        }
    }

    /// Decode the next value.
    ///
    /// # Panics
    /// If the cursor is exhausted.
    #[inline]
    pub fn next_value(&mut self) -> u64 {
        assert!(self.remaining > 0, "cursor exhausted");
        self.remaining -= 1;
        let lo = self.words[self.word] >> self.shift;
        let v = if self.shift + self.bits <= 64 {
            lo & self.mask
        } else {
            (lo | (self.words[self.word + 1] << (64 - self.shift))) & self.mask
        };
        self.shift += self.bits;
        if self.shift >= 64 {
            self.shift -= 64;
            self.word += 1;
        }
        v
    }

    /// Values left to decode.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl BitPackedVec {
    /// A sequential cursor starting at logical index `start` (e.g. a
    /// thread's tuple-range start in the parallel Step 2).
    pub fn cursor_at(&self, start: usize) -> SeqCursor<'_> {
        SeqCursor::new_at(self, start)
    }
}

// Keep the private alias used by the kernels below.
use SeqCursor as Cursor;

impl BitPackedVec {
    /// Visit every value in index order with an incremental cursor —
    /// noticeably faster than repeated [`BitPackedVec::get`] because the bit
    /// position is carried, not recomputed.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(usize, u64)) {
        if self.is_empty() {
            return;
        }
        let mut cur = Cursor::new(self);
        for i in 0..self.len() {
            f(i, cur.next_value());
        }
    }

    /// Value-id equality kernel: append `base + i` to `out` for every index
    /// `i` whose packed value equals `code`. The `base` offset lets a query
    /// engine compose per-partition scans into one global selection vector
    /// without a re-map pass; appending (rather than returning a fresh
    /// vector) lets disjoint partitions share the allocation.
    pub fn select_eq_into(&self, code: u64, base: usize, out: &mut Vec<usize>) {
        if code > max_value_for_bits(self.bits()) {
            return;
        }
        self.for_each(|i, v| {
            if v == code {
                out.push(base + i);
            }
        });
    }

    /// Value-id range kernel: append `base + i` to `out` for every index `i`
    /// whose packed value lies in `[lo, hi]` — the compressed-scan primitive
    /// behind predicate pushdown (codes are order-preserving, so a value
    /// range is a code range; no value is ever materialized).
    pub fn select_in_range_into(&self, lo: u64, hi: u64, base: usize, out: &mut Vec<usize>) {
        if lo > hi {
            return;
        }
        if lo == hi {
            return self.select_eq_into(lo, base, out);
        }
        self.for_each(|i, v| {
            if v >= lo && v <= hi {
                out.push(base + i);
            }
        });
    }

    /// Indices whose value equals `code` (the equality-scan kernel).
    pub fn positions_eq(&self, code: u64) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_eq_into(code, 0, &mut out);
        out
    }

    /// Indices whose value lies in `[lo, hi]` (the range-scan kernel; valid
    /// because dictionary codes are order-preserving).
    pub fn positions_in_range(&self, lo: u64, hi: u64) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_in_range_into(lo, hi, 0, &mut out);
        out
    }

    /// Number of values equal to `code`.
    pub fn count_eq(&self, code: u64) -> usize {
        let mut n = 0usize;
        self.for_each(|_, v| n += (v == code) as usize);
        n
    }

    /// Sum of all stored values (used for aggregate pushdown over codes).
    pub fn sum(&self) -> u128 {
        let mut acc: u128 = 0;
        self.for_each(|_, v| acc += v as u128);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bits: u8, n: usize) -> (BitPackedVec, Vec<u64>) {
        let mask = max_value_for_bits(bits);
        let data: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
            .collect();
        (BitPackedVec::from_slice(bits, &data), data)
    }

    #[test]
    fn for_each_matches_get_for_every_width() {
        for bits in 1..=64u8 {
            let (v, data) = sample(bits, 333);
            let mut seen = Vec::with_capacity(data.len());
            v.for_each(|i, x| {
                assert_eq!(x, v.get(i), "width {bits}, index {i}");
                seen.push(x);
            });
            assert_eq!(seen, data, "width {bits}");
        }
    }

    #[test]
    fn positions_eq_matches_filter() {
        let (v, data) = sample(5, 1000);
        for code in [0u64, 7, 31] {
            let want: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, x)| **x == code)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(v.positions_eq(code), want, "code {code}");
        }
    }

    #[test]
    fn positions_eq_out_of_width_code_is_empty() {
        let (v, _) = sample(4, 100);
        assert!(v.positions_eq(16).is_empty());
        assert!(v.positions_eq(u64::MAX).is_empty());
    }

    #[test]
    fn positions_in_range_matches_filter() {
        let (v, data) = sample(7, 1000);
        for (lo, hi) in [(0u64, 127u64), (10, 20), (64, 64), (100, 10)] {
            let want: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, x)| **x >= lo && **x <= hi)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(v.positions_in_range(lo, hi), want, "range {lo}..={hi}");
        }
    }

    #[test]
    fn count_and_sum_agree_with_decode() {
        let (v, data) = sample(9, 2048);
        assert_eq!(v.sum(), data.iter().map(|x| *x as u128).sum::<u128>());
        let c = data[17];
        assert_eq!(v.count_eq(c), data.iter().filter(|x| **x == c).count());
    }

    #[test]
    fn select_into_offsets_and_appends() {
        let (v, data) = sample(6, 500);
        let code = data[3];
        let mut out = vec![7usize];
        v.select_eq_into(code, 1_000, &mut out);
        let want: Vec<usize> = std::iter::once(7)
            .chain(
                data.iter()
                    .enumerate()
                    .filter(|(_, x)| **x == code)
                    .map(|(i, _)| 1_000 + i),
            )
            .collect();
        assert_eq!(out, want, "appends with base offset, keeps prior content");

        let mut ranged = Vec::new();
        v.select_in_range_into(10, 40, 64, &mut ranged);
        let want: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, x)| **x >= 10 && **x <= 40)
            .map(|(i, _)| 64 + i)
            .collect();
        assert_eq!(ranged, want);

        // Degenerate ranges: inverted is empty, collapsed equals eq.
        let mut none = Vec::new();
        v.select_in_range_into(40, 10, 0, &mut none);
        assert!(none.is_empty());
        let mut collapsed = Vec::new();
        v.select_in_range_into(code, code, 0, &mut collapsed);
        assert_eq!(collapsed, v.positions_eq(code));
    }

    #[test]
    fn empty_vector_kernels() {
        let v = BitPackedVec::new(8);
        assert!(v.positions_eq(0).is_empty());
        assert!(v.positions_in_range(0, 255).is_empty());
        assert_eq!(v.count_eq(0), 0);
        assert_eq!(v.sum(), 0);
        let mut called = false;
        v.for_each(|_, _| called = true);
        assert!(!called);
    }
}

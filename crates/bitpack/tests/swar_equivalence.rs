//! Kernel-equivalence suite: for every width 1..=64 and arbitrary
//! data/ranges, the SWAR kernels must match the scalar `SeqCursor`
//! reference exactly — positions, counts, and sums — including codes that
//! straddle a word boundary and the final partial window.
//!
//! Two layers:
//!
//! * `proptest!` cases draw a width, data, and predicate bounds together,
//!   so the word-boundary phases exercised follow the width distribution.
//! * An exhaustive deterministic sweep runs *every* width (the proptest
//!   sampler is not guaranteed to visit all 64) against data shaped to hit
//!   the straddle cases: lengths chosen off multiples of `floor(64/bits)`
//!   so the last window is partial.

use hyrise_bitpack::{mask_count, mask_words, max_value_for_bits, rows_from_mask, BitPackedVec};
use proptest::prelude::*;

fn width_data_and_bounds() -> impl Strategy<Value = (u8, Vec<u64>, u64, u64)> {
    (1u8..=64).prop_flat_map(|bits| {
        let mask = max_value_for_bits(bits);
        (
            Just(bits),
            prop::collection::vec(0..=mask, 0..400),
            0..=mask,
            0..=mask,
        )
    })
}

proptest! {
    #[test]
    fn select_kernels_match_scalar((bits, values, a, b) in width_data_and_bounds()) {
        let v = BitPackedVec::from_slice(bits, &values);
        let (lo, hi) = (a.min(b), a.max(b));

        let (mut swar, mut scalar) = (Vec::new(), Vec::new());
        v.select_in_range_into(lo, hi, 7, &mut swar);
        v.select_in_range_scalar_into(lo, hi, 7, &mut scalar);
        prop_assert_eq!(&swar, &scalar);

        // The inverted range matches nothing on both paths.
        let (mut swar, mut scalar) = (Vec::new(), Vec::new());
        v.select_in_range_into(hi.wrapping_add(1).max(1), 0, 0, &mut swar);
        v.select_in_range_scalar_into(hi.wrapping_add(1).max(1), 0, 0, &mut scalar);
        prop_assert_eq!(&swar, &scalar);

        let code = values.first().copied().unwrap_or(0);
        let (mut swar, mut scalar) = (Vec::new(), Vec::new());
        v.select_eq_into(code, 0, &mut swar);
        v.select_eq_scalar_into(code, 0, &mut scalar);
        prop_assert_eq!(&swar, &scalar);
    }

    #[test]
    fn count_and_sum_match_scalar((bits, values, a, b) in width_data_and_bounds()) {
        let v = BitPackedVec::from_slice(bits, &values);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert_eq!(v.count_in_range(lo, hi), v.count_in_range_scalar(lo, hi));
        let code = values.last().copied().unwrap_or(0);
        prop_assert_eq!(v.count_eq(code), v.count_eq_scalar(code));
        prop_assert_eq!(v.sum(), v.sum_scalar());
    }

    #[test]
    fn masks_match_select((bits, values, a, b) in width_data_and_bounds()) {
        let v = BitPackedVec::from_slice(bits, &values);
        let (lo, hi) = (a.min(b), a.max(b));
        let mut masks = vec![0u64; mask_words(v.len())];
        v.fill_range_mask(lo, hi, &mut masks);
        let mut from_mask = Vec::new();
        rows_from_mask(&masks, v.len(), 0, &mut from_mask);
        let mut direct = Vec::new();
        v.select_in_range_scalar_into(lo, hi, 0, &mut direct);
        prop_assert_eq!(&from_mask, &direct);
        prop_assert_eq!(mask_count(&masks), direct.len());

        // AND-ing the same predicate into its own fill is idempotent.
        let before = masks.clone();
        v.and_range_mask(lo, hi, &mut masks);
        prop_assert_eq!(masks, before);
    }

    #[test]
    fn and_mask_is_intersection(
        (bits, values, a, b) in width_data_and_bounds(),
        c in 0u64..,
        d in 0u64..,
    ) {
        let v = BitPackedVec::from_slice(bits, &values);
        let mask = max_value_for_bits(bits);
        let (lo1, hi1) = (a.min(b), a.max(b));
        let (lo2, hi2) = ((c & mask).min(d & mask), (c & mask).max(d & mask));
        let mut masks = vec![0u64; mask_words(v.len())];
        v.fill_range_mask(lo1, hi1, &mut masks);
        v.and_range_mask(lo2, hi2, &mut masks);
        let mut rows = Vec::new();
        rows_from_mask(&masks, v.len(), 0, &mut rows);
        let want: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, x)| **x >= lo1 && **x <= hi1 && **x >= lo2 && **x <= hi2)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(rows, want);
    }
}

/// Deterministic pseudo-random data, reproducible across runs.
fn sample(bits: u8, n: usize, seed: u64) -> (BitPackedVec, Vec<u64>) {
    let mask = max_value_for_bits(bits);
    let data: Vec<u64> = (0..n as u64)
        .map(|i| (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
        .collect();
    (BitPackedVec::from_slice(bits, &data), data)
}

#[test]
fn every_width_exhaustive_sweep() {
    for bits in 1..=64u8 {
        let m = 64 / bits as usize;
        // Lengths that leave a partial final window (and one empty vector).
        for n in [0usize, 1, m, m + 1, 5 * m + m.saturating_sub(1).max(1), 257] {
            let (v, data) = sample(bits, n, bits as u64);
            let mask = max_value_for_bits(bits);
            let code = data.get(n / 2).copied().unwrap_or(0);
            let bounds = [
                (0u64, mask),
                (mask / 3, 2 * (mask / 3).max(1)),
                (code, code),
                (mask, mask),
                (1, 0), // inverted
            ];
            for (lo, hi) in bounds {
                let (mut swar, mut scalar) = (Vec::new(), Vec::new());
                v.select_in_range_into(lo, hi, 0, &mut swar);
                v.select_in_range_scalar_into(lo, hi, 0, &mut scalar);
                assert_eq!(swar, scalar, "width {bits}, n {n}, range {lo}..={hi}");
                assert_eq!(
                    v.count_in_range(lo, hi),
                    v.count_in_range_scalar(lo, hi),
                    "width {bits}, n {n}, range {lo}..={hi}"
                );
            }
            let (mut swar, mut scalar) = (Vec::new(), Vec::new());
            v.select_eq_into(code, 11, &mut swar);
            v.select_eq_scalar_into(code, 11, &mut scalar);
            assert_eq!(swar, scalar, "width {bits}, n {n}, eq {code}");
            assert_eq!(
                v.count_eq(code),
                v.count_eq_scalar(code),
                "width {bits}, n {n}"
            );
            assert_eq!(v.sum(), v.sum_scalar(), "width {bits}, n {n}");
        }
    }
}

#[test]
fn every_width_all_extremes() {
    // All-zero and all-max data stress the eq/ge boundary lanes and the
    // sum fold's worst-case magnitudes at every width.
    for bits in 1..=64u8 {
        let mask = max_value_for_bits(bits);
        for fill in [0u64, mask] {
            let data = vec![fill; 193];
            let v = BitPackedVec::from_slice(bits, &data);
            assert_eq!(v.count_eq(fill), 193, "width {bits}, fill {fill}");
            let other = (fill ^ 1) & mask;
            assert_eq!(
                v.count_eq(other),
                v.count_eq_scalar(other),
                "width {bits}, fill {fill}, other {other}"
            );
            assert_eq!(v.sum(), 193 * fill as u128, "width {bits}, fill {fill}");
            let mut rows = Vec::new();
            v.select_in_range_into(fill, fill, 0, &mut rows);
            assert_eq!(rows.len(), 193, "width {bits}, fill {fill}");
        }
    }
}

//! Property-based tests: a `BitPackedVec` must behave exactly like a plain
//! `Vec<u64>` restricted to the chosen bit width, for every width and every
//! access pattern, including the word-aligned parallel region writer.

use hyrise_bitpack::{bits_for, max_value_for_bits, BitPackedVec};
use proptest::prelude::*;

fn width_and_values() -> impl Strategy<Value = (u8, Vec<u64>)> {
    (1u8..=64).prop_flat_map(|bits| {
        let mask = max_value_for_bits(bits);
        (Just(bits), prop::collection::vec(0..=mask, 0..300))
    })
}

proptest! {
    #[test]
    fn roundtrip_matches_model((bits, values) in width_and_values()) {
        let v = BitPackedVec::from_slice(bits, &values);
        prop_assert_eq!(v.len(), values.len());
        prop_assert_eq!(v.to_vec(), values.clone());
        for (i, &x) in values.iter().enumerate() {
            prop_assert_eq!(v.get(i), x);
        }
    }

    #[test]
    fn set_matches_model(
        (bits, mut values) in width_and_values(),
        updates in prop::collection::vec((0usize..300, 0u64..), 0..50)
    ) {
        prop_assume!(!values.is_empty());
        let mut v = BitPackedVec::from_slice(bits, &values);
        let mask = max_value_for_bits(bits);
        for (pos, val) in updates {
            let i = pos % values.len();
            let x = val & mask;
            values[i] = x;
            v.set(i, x);
        }
        prop_assert_eq!(v.to_vec(), values);
    }

    #[test]
    fn region_split_covers_and_writes_disjointly(
        (bits, values) in width_and_values(),
        pieces in 1usize..10
    ) {
        let mut v = BitPackedVec::zeroed(bits, values.len());
        let regions = v.split_mut(pieces).into_regions();
        let mut covered = 0;
        for mut r in regions {
            prop_assert_eq!(r.start_index(), covered);
            prop_assert_eq!(r.start_index() % 64, 0);
            for i in 0..r.len() {
                r.set(i, values[r.start_index() + i]);
            }
            covered += r.len();
        }
        prop_assert_eq!(covered, values.len());
        prop_assert_eq!(v.to_vec(), values);
    }

    #[test]
    fn bits_for_always_sufficient(card in 1usize..1_000_000) {
        let bits = bits_for(card);
        prop_assert!((card - 1) as u64 <= max_value_for_bits(bits));
    }

    #[test]
    fn packed_size_is_minimal(bits in 1u8..=64, n in 0usize..500) {
        let v = BitPackedVec::zeroed(bits, n);
        let expected_words = (n * bits as usize).div_ceil(64);
        prop_assert_eq!(v.packed_bytes(), expected_words * 8);
    }
}

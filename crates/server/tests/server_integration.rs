//! End-to-end acceptance: a live server, a durable table, and a swarm of
//! wire clients inserting and querying concurrently while the merge
//! scheduler runs underneath — checked against an in-memory oracle
//! rebuilt from the swarm's own report. Then the write-burst half: a
//! write-heavy swarm against a tight backlog limit observably trips the
//! throttle valve, and the merge scheduler catches the backlog back up.

use hyrise_query::Query;
use hyrise_server::admission::AdmissionConfig;
use hyrise_server::catalog::CatalogConfig;
use hyrise_server::protocol::TableSpec;
use hyrise_server::server::{start, ServerConfig};
use hyrise_server::swarm::drive_swarm;
use hyrise_server::Client;
use hyrise_workload::{QueryMix, SwarmWorkload};
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hyrise-server-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn swarm_against_durable_table_matches_oracle_while_merging() {
    let dir = scratch_dir("oracle");
    let mut srv = start(
        "127.0.0.1:0",
        ServerConfig {
            // Every swarm client owns a connection for its whole run, so
            // the pool must out-size the swarm.
            workers: 8,
            catalog: CatalogConfig {
                data_dir: Some(dir.clone()),
                ..CatalogConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = srv.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    c.create_table(&TableSpec::durable("ledger", 3, 2, false))
        .unwrap();

    let workload = SwarmWorkload::oltp(4)
        .with_volumes(2_000, 300)
        .with_insert_batch(4);
    let report = drive_swarm(&addr, "ledger", &workload).unwrap();
    // Delete ops with nothing yet owned are skipped, so ops is bounded by,
    // but not necessarily equal to, the nominal volume.
    assert!(report.ops > 0 && report.ops <= workload.total_ops() as u64);
    assert!(report.lookups + report.range_reads > 0, "mix ran reads");
    assert!(report.rows_inserted > 0, "mix ran writes");

    // The scheduler merged underneath the swarm (delta_fraction 0.02 over
    // 2k+ rows trips many times during the run).
    let entry = srv.catalog().get("ledger").unwrap();
    assert!(
        entry.scheduler().stats().merges > 0,
        "merges must have run during the swarm"
    );

    // Oracle: preload keys plus the report's inserted keys, minus its
    // deleted keys. Every key is unique (preload 0..N, clients tag-disjoint),
    // so set arithmetic is exact.
    let mut expected: HashSet<u64> = (0..workload.initial_rows).collect();
    for k in &report.inserted_keys {
        assert!(expected.insert(*k), "key {k} inserted twice");
    }
    for k in &report.deleted_keys {
        assert!(expected.remove(k), "deleted key {k} never inserted");
    }

    // Row-count level: the server's valid-row accounting matches.
    let stats = c.table_stats("ledger").unwrap();
    assert_eq!(stats.valid_rows, expected.len() as u64);
    assert_eq!(
        stats.rows,
        workload.initial_rows + report.rows_inserted,
        "physical rows = preload + inserts (deletes only invalidate)"
    );

    // Key level: point lookups agree with the oracle for present, deleted,
    // and never-inserted keys.
    let count_of = |c: &mut Client, key: u64| {
        c.query("ledger", &Query::scan(0).eq(key).count())
            .unwrap()
            .count()
            .unwrap()
    };
    let deleted: Vec<u64> = report.deleted_keys.iter().copied().take(40).collect();
    for k in &deleted {
        assert_eq!(count_of(&mut c, *k), 0, "deleted key {k} visible");
    }
    for k in report
        .inserted_keys
        .iter()
        .filter(|k| expected.contains(k))
        .take(40)
    {
        assert_eq!(count_of(&mut c, *k), 1, "live key {k} missing");
    }
    assert_eq!(
        count_of(&mut c, workload.initial_rows + 1),
        0,
        "phantom key"
    );

    // Aggregate level: preload keys are never deleted (clients only delete
    // rows they inserted), so the sum over the preload key range is exact.
    let n = workload.initial_rows;
    let out = c
        .query("ledger", &Query::scan(0).between(0, n - 1).sum(0))
        .unwrap();
    assert_eq!(out.sum(), Some((n as u128) * (n as u128 - 1) / 2));

    // Full-table count through the scan path agrees with the stats path.
    let out = c.query("ledger", &Query::scan(0).count()).unwrap();
    assert_eq!(out.count(), Some(expected.len() as u64));

    // Durability is real: the table's WAL lives under data_dir/<name>.
    assert!(dir.join("ledger").is_dir());
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn write_burst_swarm_trips_the_throttle_and_merge_catches_up() {
    let mut srv = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 8,
            admission: AdmissionConfig {
                // Tight backlog against batch-heavy writers.
                write_backlog_limit: 2_500,
                write_release_fraction: 0.5,
                throttle_retry_after: Duration::from_millis(2),
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = srv.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    c.create_table(&TableSpec::volatile("burst", 2, 2)).unwrap();

    // Hold merges off so the burst deterministically outruns the drain —
    // the Equation 1 race with the merge side pinned at zero. The preload
    // (500 rows) stays under the limit, so only the swarm's writers trip
    // the valve.
    let entry = srv.catalog().get("burst").unwrap();
    entry.scheduler().pause();

    let workload = SwarmWorkload::oltp(4)
        .with_mix(QueryMix::tpcc()) // 46% writes: the paper's burst case
        .with_volumes(500, 200)
        .with_insert_batch(32);
    let report = drive_swarm(&addr, "burst", &workload).unwrap();

    // The gate observably throttled writers, both in the swarm's own
    // accounting and in the server's counters.
    assert!(report.throttled > 0, "burst never throttled: {report:?}");
    let gate_stats = srv.gate().stats();
    assert!(gate_stats.throttled_writes > 0, "{gate_stats:?}");
    // Reads were never punished for the write burst.
    assert_eq!(gate_stats.shed_reads, 0, "{gate_stats:?}");
    // Backlog really did exceed the limit at some point.
    assert!(
        entry.table().delta_len() > 2_500,
        "delta backlog should be past the limit while paused"
    );

    // Merge catches back up: resume the scheduler and the backlog drains
    // below the release line within the time bound.
    entry.scheduler().resume();
    let deadline = Instant::now() + Duration::from_secs(30);
    while entry.table().delta_len() >= 1_250 {
        assert!(Instant::now() < deadline, "merge never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(entry.scheduler().stats().merges > 0);

    // With the valve open again a writer is admitted straight away.
    c.insert("burst", &[vec![9_999, 1], vec![9_998, 2]])
        .unwrap();

    // The swarm's report still reconciles: dropped writes (retries
    // exhausted during the paused phase) are excluded from its counts, so
    // accounting stays exact.
    let stats = c.table_stats("burst").unwrap();
    assert_eq!(
        stats.rows,
        workload.initial_rows + report.rows_inserted + 2,
        "rows = preload + admitted swarm inserts + the final probe"
    );
    assert_eq!(
        stats.valid_rows,
        workload.initial_rows + report.rows_inserted + 2 - report.deletes,
    );
    srv.shutdown();
}

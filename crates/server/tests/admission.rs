//! Admission-control integration: the gate's behavior observed over the
//! wire against a live server and real tables.
//!
//! The decision boundaries are unit-tested in `admission.rs`; these tests
//! exercise the full loop — memory pressure built by real inserts, relief
//! delivered by the real merge scheduler — and the two guarantees the
//! module doc promises: a synthetic pressure spike sheds reads then
//! recovers once merges drain the delta, and no request ever hangs
//! (every call below runs under an explicit deadline).

use hyrise_query::Query;
use hyrise_server::admission::AdmissionConfig;
use hyrise_server::protocol::{Admission, TableSpec};
use hyrise_server::server::{start, ServerConfig};
use hyrise_server::{Client, ClientError};
use std::time::{Duration, Instant};

/// Rows whose column-0 values repeat heavily: the uncompressed delta is
/// ~8 bytes/row, the merged (bit-packed, 4-value dictionary) main a tiny
/// fraction of that — which is exactly the memory cliff the read gate
/// keys on.
fn compressible_rows(start: u64, n: u64) -> Vec<Vec<u64>> {
    (start..start + n).map(|k| vec![k % 4]).collect()
}

fn insert_all(client: &mut Client, table: &str, rows: &[Vec<u64>]) {
    for chunk in rows.chunks(1_000) {
        loop {
            match client.insert(table, chunk) {
                Ok(_) => break,
                Err(ClientError::Throttled { retry_after }) => {
                    std::thread::sleep(retry_after.min(Duration::from_millis(50)))
                }
                Err(e) => panic!("insert failed: {e}"),
            }
        }
    }
}

#[test]
fn memory_spike_sheds_reads_then_merge_recovers() {
    let mut srv = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            admission: AdmissionConfig {
                memory_queue_limit: 48 * 1024,
                memory_shed_limit: 96 * 1024,
                queue_timeout: Duration::from_millis(150),
                queue_poll: Duration::from_millis(2),
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = srv.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    c.create_table(&TableSpec::volatile("hot", 1, 1)).unwrap();

    // Build the spike with the merge scheduler held off: 40k uncompressed
    // delta rows (~320 KiB) against a 96 KiB shed line.
    let entry = srv.catalog().get("hot").unwrap();
    entry.scheduler().pause();
    insert_all(&mut c, "hot", &compressible_rows(0, 40_000));
    assert!(
        entry.table().memory_report().total() > 96 * 1024,
        "spike must clear the shed limit, got {}",
        entry.table().memory_report().total()
    );

    // Reads are shed — with a typed error, within the queue-timeout bound.
    for _ in 0..5 {
        let t = Instant::now();
        match c.query("hot", &Query::scan(0).eq(0).count()) {
            Err(ClientError::Shed) => {}
            other => panic!("expected a shed, got {other:?}"),
        }
        assert_eq!(c.last_admission(), Admission::Shed);
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "shed within the timeout bound, took {:?}",
            t.elapsed()
        );
    }
    let stats = c.server_stats().unwrap();
    assert!(stats.shed_reads >= 5, "sheds visible in stats: {stats:?}");

    // Relief: the real scheduler merges the delta away; memory collapses
    // under the queue limit and reads are admitted again.
    entry.scheduler().resume();
    let deadline = Instant::now() + Duration::from_secs(30);
    while entry.table().delta_len() > 0 || entry.table().memory_report().total() > 48 * 1024 {
        assert!(Instant::now() < deadline, "merge never drained the spike");
        std::thread::sleep(Duration::from_millis(5));
    }
    let out = c.query("hot", &Query::scan(0).eq(0).count()).unwrap();
    assert_eq!(out.count(), Some(10_000), "data intact through the merge");
    assert_eq!(c.last_admission(), Admission::Admit);
    srv.shutdown();
}

#[test]
fn queued_read_waits_out_the_spike_and_admits() {
    let mut srv = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            admission: AdmissionConfig {
                memory_queue_limit: 24 * 1024,
                memory_shed_limit: 256 * 1024,
                queue_timeout: Duration::from_secs(10),
                queue_poll: Duration::from_millis(2),
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = srv.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    c.create_table(&TableSpec::volatile("warm", 1, 1)).unwrap();

    // Land memory in the queue band (above 24 KiB, far below 256 KiB).
    let entry = srv.catalog().get("warm").unwrap();
    entry.scheduler().pause();
    insert_all(&mut c, "warm", &compressible_rows(0, 8_000));
    let mem = entry.table().memory_report().total();
    assert!(
        mem > 24 * 1024 && mem <= 256 * 1024,
        "memory must land in the queue band, got {mem}"
    );

    // A reader arrives during the spike and parks in the queue…
    let reader = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&addr).unwrap();
            let out = c.query("warm", &Query::scan(0).eq(1).count()).unwrap();
            (out.count(), c.last_admission())
        }
    });
    let queued_at = Instant::now() + Duration::from_secs(5);
    while srv.gate().stats().reads_queued_now == 0 {
        assert!(Instant::now() < queued_at, "reader never queued");
        std::thread::sleep(Duration::from_millis(1));
    }

    // …until the merge retires the delta and the gate lets it through.
    entry.scheduler().resume();
    let (count, admission) = reader.join().unwrap();
    assert_eq!(count, Some(2_000));
    assert!(
        matches!(admission, Admission::Queued { .. }),
        "read should report its queue wait, got {admission:?}"
    );
    assert_eq!(srv.gate().stats().queued_reads, 1);
    assert_eq!(srv.gate().stats().reads_queued_now, 0, "slot released");
    srv.shutdown();
}

#[test]
fn write_burst_throttles_then_valve_releases_after_drain() {
    let mut srv = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            admission: AdmissionConfig {
                write_backlog_limit: 5_000,
                write_release_fraction: 0.5,
                throttle_retry_after: Duration::from_millis(5),
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(srv.addr().to_string()).unwrap();
    c.create_table(&TableSpec::volatile("burst", 1, 1)).unwrap();
    let entry = srv.catalog().get("burst").unwrap();

    // Burst with merges held off: the backlog blows past the limit while
    // the insert rate outruns a zero merge rate — Equation 1's losing
    // side, so the valve must close.
    entry.scheduler().pause();
    let mut throttled = None;
    let mut k = 0u64;
    for _ in 0..60 {
        match c.insert("burst", &compressible_rows(k, 1_000)) {
            Ok(_) => k += 1_000,
            Err(ClientError::Throttled { retry_after }) => {
                throttled = Some(retry_after);
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        // Give the rate window room to see a nonzero insert rate.
        std::thread::sleep(Duration::from_millis(3));
    }
    let retry_after = throttled.expect("burst never throttled");
    assert!(retry_after > Duration::ZERO, "server suggests a back-off");
    assert!(
        matches!(c.last_admission(), Admission::Throttled { .. }),
        "throttle rides the admission header"
    );
    let stats = c.server_stats().unwrap();
    assert!(
        stats.throttled_writes >= 1,
        "valve visible in stats: {stats:?}"
    );

    // Recovery: merges drain the backlog below the release fraction and
    // the valve reopens — a patient writer gets through.
    entry.scheduler().resume();
    let deadline = Instant::now() + Duration::from_secs(30);
    let admitted = loop {
        assert!(Instant::now() < deadline, "valve never released");
        match c.insert("burst", &compressible_rows(k, 10)) {
            Ok(_) => break true,
            Err(ClientError::Throttled { retry_after }) => {
                std::thread::sleep(retry_after.min(Duration::from_millis(50)));
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    assert!(admitted);
    // The merge scheduler did the catching up, observably.
    assert!(entry.scheduler().stats().merges >= 1);
    assert!(entry.table().delta_len() < 5_000, "backlog drained");
    srv.shutdown();
}

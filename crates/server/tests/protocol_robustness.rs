//! Protocol robustness: a worker must survive anything a client can put
//! on the wire.
//!
//! Three hostile inputs — garbage payloads, oversized length headers, and
//! torn frames — each answered (where answerable) with a typed
//! [`ErrorCode::Protocol`] and never by killing the worker: the same
//! connection (garbage) or a fresh connection (oversized/torn, which
//! poison the stream) keeps being served. Plus property tests
//! round-tripping arbitrary query plans and result sets through the
//! serializers.

use hyrise_query::{Action, CompiledPredicate, Query};
use hyrise_server::protocol::{
    read_frame, write_frame, Admission, Body, ErrorCode, FrameEvent, Request, Response, TableSpec,
    WireError, WireOutput, WireRowId,
};
use hyrise_server::server::{start, ServerConfig};
use hyrise_server::Client;
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;

fn call_raw(stream: &mut TcpStream, payload: &[u8]) -> Response {
    write_frame(stream, payload).unwrap();
    match read_frame(stream, &|| false).unwrap() {
        FrameEvent::Frame(p) => Response::decode(&p).unwrap(),
        other => panic!("expected a response frame, got {other:?}"),
    }
}

#[test]
fn garbage_frames_get_typed_errors_and_the_connection_survives() {
    let mut srv = start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(srv.addr()).unwrap();

    // Unknown opcode.
    let resp = call_raw(&mut stream, &[0xEE, 1, 2, 3]);
    assert!(
        matches!(resp.result, Err(ref e) if e.code == ErrorCode::Protocol),
        "{resp:?}"
    );

    // Truncated create-table.
    let resp = call_raw(&mut stream, &[2, 10, 0]);
    assert!(matches!(resp.result, Err(ref e) if e.code == ErrorCode::Protocol));

    // Trailing garbage after a valid ping.
    let mut payload = Request::Ping.encode();
    payload.extend_from_slice(b"junk");
    let resp = call_raw(&mut stream, &payload);
    assert!(matches!(resp.result, Err(ref e) if e.code == ErrorCode::Protocol));

    // Empty payload.
    let resp = call_raw(&mut stream, &[]);
    assert!(matches!(resp.result, Err(ref e) if e.code == ErrorCode::Protocol));

    // The same connection still serves valid requests.
    let resp = call_raw(&mut stream, &Request::Ping.encode());
    assert_eq!(resp.result, Ok(Body::Pong));
    srv.shutdown();
}

#[test]
fn oversized_frame_is_answered_then_dropped_worker_survives() {
    let mut srv = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1, // one worker: if it died, nothing would answer again
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut stream = TcpStream::connect(srv.addr()).unwrap();
    // Announce 4 GiB; send nothing else.
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    match read_frame(&mut stream, &|| false).unwrap() {
        FrameEvent::Frame(p) => {
            let resp = Response::decode(&p).unwrap();
            assert!(matches!(resp.result, Err(ref e) if e.code == ErrorCode::Protocol));
        }
        other => panic!("expected an error response before the drop, got {other:?}"),
    }
    // The server dropped this connection (unresumable stream)…
    match read_frame(&mut stream, &|| false) {
        Ok(FrameEvent::Closed) | Err(_) => {}
        other => panic!("expected the connection to close, got {other:?}"),
    }
    // …but the lone worker lives to serve a fresh one.
    let mut c = Client::connect(srv.addr()).unwrap();
    c.ping().unwrap();
    srv.shutdown();
}

#[test]
fn torn_frame_client_death_does_not_kill_the_worker() {
    let mut srv = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    {
        let mut stream = TcpStream::connect(srv.addr()).unwrap();
        // Header promising 100 bytes, then 3 bytes, then death.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
        stream.flush().unwrap();
    } // dropped: RST/FIN mid-frame
    let mut c = Client::connect(srv.addr()).unwrap();
    c.ping().unwrap();
    srv.shutdown();
}

#[test]
fn requests_against_real_tables_stay_typed_under_hostile_plans() {
    let mut srv = start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(srv.addr()).unwrap();
    c.create_table(&TableSpec::volatile("t", 2, 2)).unwrap();
    c.insert("t", &[vec![1, 2]]).unwrap();

    // A plan probing a column the table doesn't have: typed Config error,
    // not a worker panic.
    let hostile = Query::from_parts(
        vec![CompiledPredicate {
            col: 999,
            lo: 0u64,
            hi: 1,
        }],
        Action::Rows,
        1,
    );
    match c.query("t", &hostile) {
        Err(hyrise_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::Config)
        }
        other => panic!("expected a typed Config error, got {other:?}"),
    }
    // Aggregate over a bad column too.
    let hostile = Query::from_parts(vec![], Action::Sum(7), 1);
    assert!(matches!(
        c.query("t", &hostile),
        Err(hyrise_server::ClientError::Server {
            code: ErrorCode::Config,
            ..
        })
    ));
    // The connection still works.
    assert_eq!(
        c.query("t", &Query::scan(0).count()).unwrap().count(),
        Some(1)
    );
    srv.shutdown();
}

/// Build an arbitrary-but-valid plan from flat fuzz inputs.
fn plan_from(
    preds: &[(u32, u64, u64)],
    action_sel: u8,
    action_cols: &[u32],
    threads: u16,
) -> Query<u64> {
    let preds: Vec<CompiledPredicate<u64>> = preds
        .iter()
        .map(|(c, lo, hi)| CompiledPredicate {
            col: *c as usize,
            lo: *lo,
            hi: *hi,
        })
        .collect();
    let action = match action_sel % 5 {
        0 => Action::Rows,
        1 => Action::Project(action_cols.iter().map(|c| *c as usize).collect()),
        2 => Action::Count,
        3 => Action::Sum(action_cols.first().copied().unwrap_or(0) as usize),
        _ => Action::MinMax(action_cols.first().copied().unwrap_or(0) as usize),
    };
    Query::from_parts(preds, action, threads as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_plans_roundtrip(
        preds in prop::collection::vec((0u32..1000, 0u64.., 0u64..), 0..8),
        action_sel in 0u8..5,
        action_cols in prop::collection::vec(0u32..1000, 0..6),
        threads in 1u16..64,
        table in prop::collection::vec(97u8..123, 1..16),
    ) {
        let plan = plan_from(&preds, action_sel, &action_cols, threads);
        let req = Request::Query {
            table: String::from_utf8(table).unwrap(),
            plan: plan.clone(),
        };
        let decoded = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn arbitrary_result_sets_roundtrip(
        ids in prop::collection::vec((0u32..64, 0u64..), 0..64),
        rows in prop::collection::vec(prop::collection::vec(0u64.., 0..6), 0..32),
        count in 0u64..,
        sum_hi in 0u64..,
        sum_lo in 0u64..,
        mm in (0u64.., 0u64..),
        which in 0u8..6,
        waited in 0u32..10_000,
    ) {
        let output = match which % 6 {
            0 => WireOutput::Rows(
                ids.iter().map(|(s, r)| WireRowId { shard: *s, row: *r }).collect(),
            ),
            1 => WireOutput::Projected(rows.clone()),
            2 => WireOutput::Count(count),
            3 => WireOutput::Sum(((sum_hi as u128) << 64) | sum_lo as u128),
            4 => WireOutput::MinMax(None),
            _ => WireOutput::MinMax(Some((mm.0.min(mm.1), mm.0.max(mm.1)))),
        };
        let resp = Response {
            admission: match which % 3 {
                0 => Admission::Admit,
                1 => Admission::Queued { waited_ms: waited },
                _ => Admission::Throttled { retry_after_ms: waited },
            },
            result: Ok(Body::Output(output)),
        };
        let decoded = Response::decode(&resp.encode()).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn arbitrary_error_responses_roundtrip(
        code in 1u8..12,
        msg in prop::collection::vec(32u8..127, 0..80),
    ) {
        let resp = Response {
            admission: Admission::Shed,
            result: Err(WireError::new(
                match code {
                    1 => ErrorCode::Protocol, 2 => ErrorCode::NoSuchTable,
                    3 => ErrorCode::TableExists, 4 => ErrorCode::Io,
                    5 => ErrorCode::Corrupt, 6 => ErrorCode::Recovery,
                    7 => ErrorCode::Cancelled, 8 => ErrorCode::Config,
                    9 => ErrorCode::Shed, 10 => ErrorCode::Throttled,
                    _ => ErrorCode::Internal,
                },
                String::from_utf8(msg).unwrap(),
            )),
        };
        let decoded = Response::decode(&resp.encode()).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn random_bytes_never_panic_the_decoders(
        payload in prop::collection::vec(0u8.., 0..256),
    ) {
        // Outcome (Ok or Err) is irrelevant; not panicking is the property.
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }
}

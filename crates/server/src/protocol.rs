//! The wire protocol: length-prefixed binary frames carrying the query
//! builder surface and batched mutations.
//!
//! The container this system builds in is offline, so the protocol is
//! deliberately dependency-free: a frame is `[len: u32 LE][payload]`, and
//! every payload is hand-encoded with little-endian fixed-width integers
//! (the same convention [`hyrise_storage::Value::write_bytes`] uses for
//! WAL records). Frames are capped at [`MAX_FRAME`]; a peer announcing a
//! larger payload is rejected *before* any allocation, so a garbage
//! length header cannot make a worker allocate gigabytes.
//!
//! Three properties the robustness tests pin down:
//!
//! * **Torn frames are detected, not hung on**: a connection that dies
//!   mid-frame surfaces [`FrameError::Torn`], never a partial decode.
//! * **Garbage decodes are typed errors**: [`Request::decode`] returns a
//!   human-readable `Err(String)` that the server maps to
//!   [`ErrorCode::Protocol`] — the worker answers and keeps serving.
//! * **Round-trips are exact**: `decode(encode(x)) == x` for requests and
//!   responses, property-tested over arbitrary plans and result sets.

use hyrise_core::ShardRowId;
use hyrise_query::{Action, CompiledPredicate, Query};
use std::io::{Read, Write};
use std::time::Duration;

/// Hard cap on a frame payload (16 MiB). A length header above this is a
/// protocol violation, answered and then the connection is dropped (the
/// stream cannot be re-synchronized past an unread oversized payload).
pub const MAX_FRAME: usize = 16 << 20;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Outcome of one [`read_frame`] poll.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The read timed out with no bytes consumed — the connection is idle
    /// (workers use this to poll their stop flag between requests).
    Idle,
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The length header announced more than [`MAX_FRAME`] bytes.
    Oversized(u32),
    /// The connection died (or the reader gave up) mid-frame: bytes were
    /// consumed but the frame never completed.
    Torn,
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Torn => write!(f, "connection closed mid-frame"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one `[len][payload]` frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Fill `buf` completely, tolerating read timeouts.
///
/// `started` says whether earlier bytes of the current frame were already
/// consumed: before the first byte, a timeout is a benign [`Idle`] poll
/// and a clean close is [`Closed`]; after it, a close is a torn frame and
/// a timeout keeps waiting unless `give_up()` (the worker's stop flag)
/// says to abandon the connection.
///
/// [`Idle`]: FrameEvent::Idle
/// [`Closed`]: FrameEvent::Closed
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    mut started: bool,
    give_up: &dyn Fn() -> bool,
) -> Result<Option<FrameEvent>, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return if started {
                    Err(FrameError::Torn)
                } else {
                    Ok(Some(FrameEvent::Closed))
                }
            }
            Ok(n) => {
                got += n;
                started = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !started {
                    return Ok(Some(FrameEvent::Idle));
                }
                if give_up() {
                    return Err(FrameError::Torn);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(None)
}

/// Read one frame. `give_up` is polled on mid-frame timeouts (a server
/// worker passes its stop flag; a blocking client passes `&|| false`).
pub fn read_frame(r: &mut impl Read, give_up: &dyn Fn() -> bool) -> Result<FrameEvent, FrameError> {
    let mut hdr = [0u8; 4];
    if let Some(ev) = read_full(r, &mut hdr, false, give_up)? {
        return Ok(ev);
    }
    let len = u32::from_le_bytes(hdr);
    if len as usize > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    if read_full(r, &mut payload, true, give_up)?.is_some() {
        unreachable!("started=true never yields Idle/Closed");
    }
    Ok(FrameEvent::Frame(payload))
}

// ---------------------------------------------------------------------------
// Encode / decode primitives
// ---------------------------------------------------------------------------

/// Decode failures are plain strings; the server maps them to
/// [`ErrorCode::Protocol`].
pub type DecodeResult<T> = Result<T, String>;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> DecodeResult<String> {
        let n = self.u16()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| "string is not valid UTF-8".to_string())
    }

    fn finish(&self) -> DecodeResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after a complete message",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Shared model types
// ---------------------------------------------------------------------------

/// A [`ShardRowId`] on the wire: `u32` shard + `u64` local row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireRowId {
    /// Shard index.
    pub shard: u32,
    /// Row index within the shard (insert-order position).
    pub row: u64,
}

impl From<ShardRowId> for WireRowId {
    fn from(id: ShardRowId) -> Self {
        Self {
            shard: id.shard as u32,
            row: id.row as u64,
        }
    }
}

impl From<WireRowId> for ShardRowId {
    fn from(id: WireRowId) -> Self {
        Self {
            shard: id.shard as usize,
            row: id.row as usize,
        }
    }
}

/// What a `CreateTable` request asks the catalog for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSpec {
    /// Catalog name (also the on-disk directory name for durable tables,
    /// so it is restricted to `[A-Za-z0-9_-]`, at most 64 bytes).
    pub name: String,
    /// Number of `u64` columns.
    pub columns: u32,
    /// Hash-partition shard count.
    pub shards: u32,
    /// `true`: back the delta with a per-shard WAL under the server's data
    /// directory (the PR-7 [`hyrise_core::Durability::Wal`] path).
    pub durable: bool,
    /// For durable tables, fsync each record before publishing the rows.
    pub fsync: bool,
}

impl TableSpec {
    /// A volatile (in-memory) table.
    pub fn volatile(name: &str, columns: u32, shards: u32) -> Self {
        Self {
            name: name.to_string(),
            columns,
            shards,
            durable: false,
            fsync: false,
        }
    }

    /// A WAL-backed table (buffered durability; pass `fsync` for the
    /// power-loss-proof mode).
    pub fn durable(name: &str, columns: u32, shards: u32, fsync: bool) -> Self {
        Self {
            name: name.to_string(),
            columns,
            shards,
            durable: true,
            fsync,
        }
    }
}

/// The admission decision the gate stamped on a response, exported so
/// clients can observe shedding/queueing/throttling directly rather than
/// inferring it from latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted immediately.
    Admit,
    /// Admitted after waiting in the read queue for about this long.
    Queued {
        /// Time spent queued, in milliseconds (saturating).
        waited_ms: u32,
    },
    /// Rejected: memory pressure (reads) — retry later.
    Shed,
    /// Rejected: sustained insert rate outran the merge rate (writes).
    Throttled {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u32,
    },
}

impl Admission {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Admission::Admit => {
                out.push(0);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
            Admission::Queued { waited_ms } => {
                out.push(1);
                out.extend_from_slice(&waited_ms.to_le_bytes());
            }
            Admission::Shed => {
                out.push(2);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
            Admission::Throttled { retry_after_ms } => {
                out.push(3);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
        }
    }

    fn decode(c: &mut Cursor<'_>) -> DecodeResult<Self> {
        let tag = c.u8()?;
        let arg = c.u32()?;
        match tag {
            0 => Ok(Admission::Admit),
            1 => Ok(Admission::Queued { waited_ms: arg }),
            2 => Ok(Admission::Shed),
            3 => Ok(Admission::Throttled {
                retry_after_ms: arg,
            }),
            t => Err(format!("unknown admission tag {t}")),
        }
    }

    /// The suggested back-off, if the decision carries one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            Admission::Throttled { retry_after_ms } => {
                Some(Duration::from_millis(*retry_after_ms as u64))
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client request. Every variant encodes to `[opcode u8][body]`.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Create a table in the catalog.
    CreateTable(TableSpec),
    /// Remove a table from the catalog and stop its merge scheduler
    /// (durable files stay on disk).
    DropTable {
        /// Table to drop.
        name: String,
    },
    /// List catalog table names (sorted).
    ListTables,
    /// Batched row insert (the write path the admission gate throttles).
    Insert {
        /// Target table.
        table: String,
        /// Rows, each `columns` wide.
        rows: Vec<Vec<u64>>,
    },
    /// Batched row invalidation.
    Delete {
        /// Target table.
        table: String,
        /// Row ids previously returned by an insert.
        ids: Vec<WireRowId>,
    },
    /// Run a serialized query plan (the read path the gate sheds/queues).
    Query {
        /// Target table.
        table: String,
        /// The plan, rebuilt server-side with [`Query::from_parts`].
        plan: Query<u64>,
    },
    /// Per-table counters (rows, delta backlog, merges).
    TableStats {
        /// Target table.
        table: String,
    },
    /// Server-wide admission counters.
    ServerStats,
}

const OP_PING: u8 = 1;
const OP_CREATE: u8 = 2;
const OP_DROP: u8 = 3;
const OP_LIST: u8 = 4;
const OP_INSERT: u8 = 5;
const OP_DELETE: u8 = 6;
const OP_QUERY: u8 = 7;
const OP_TABLE_STATS: u8 = 8;
const OP_SERVER_STATS: u8 = 9;

fn encode_plan(out: &mut Vec<u8>, plan: &Query<u64>) {
    let preds = plan.predicates();
    debug_assert!(preds.len() <= u16::MAX as usize);
    out.extend_from_slice(&(preds.len() as u16).to_le_bytes());
    for p in preds {
        out.extend_from_slice(&(p.col as u32).to_le_bytes());
        out.extend_from_slice(&p.lo.to_le_bytes());
        out.extend_from_slice(&p.hi.to_le_bytes());
    }
    match plan.action() {
        Action::Rows => out.push(0),
        Action::Project(cols) => {
            out.push(1);
            out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
            for c in cols {
                out.extend_from_slice(&(*c as u32).to_le_bytes());
            }
        }
        Action::Count => out.push(2),
        Action::Sum(col) => {
            out.push(3);
            out.extend_from_slice(&(*col as u32).to_le_bytes());
        }
        Action::MinMax(col) => {
            out.push(4);
            out.extend_from_slice(&(*col as u32).to_le_bytes());
        }
    }
    out.extend_from_slice(&(plan.threads() as u16).to_le_bytes());
}

fn decode_plan(c: &mut Cursor<'_>) -> DecodeResult<Query<u64>> {
    let n = c.u16()? as usize;
    let mut preds = Vec::with_capacity(n);
    for _ in 0..n {
        let col = c.u32()? as usize;
        let lo = c.u64()?;
        let hi = c.u64()?;
        preds.push(CompiledPredicate { col, lo, hi });
    }
    let action = match c.u8()? {
        0 => Action::Rows,
        1 => {
            let k = c.u16()? as usize;
            let mut cols = Vec::with_capacity(k);
            for _ in 0..k {
                cols.push(c.u32()? as usize);
            }
            Action::Project(cols)
        }
        2 => Action::Count,
        3 => Action::Sum(c.u32()? as usize),
        4 => Action::MinMax(c.u32()? as usize),
        t => return Err(format!("unknown plan action tag {t}")),
    };
    let threads = c.u16()? as usize;
    Ok(Query::from_parts(preds, action, threads))
}

impl Request {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(OP_PING),
            Request::CreateTable(spec) => {
                out.push(OP_CREATE);
                put_str(&mut out, &spec.name);
                out.extend_from_slice(&spec.columns.to_le_bytes());
                out.extend_from_slice(&spec.shards.to_le_bytes());
                out.push(u8::from(spec.durable));
                out.push(u8::from(spec.fsync));
            }
            Request::DropTable { name } => {
                out.push(OP_DROP);
                put_str(&mut out, name);
            }
            Request::ListTables => out.push(OP_LIST),
            Request::Insert { table, rows } => {
                out.push(OP_INSERT);
                put_str(&mut out, table);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
                    for v in row {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Request::Delete { table, ids } => {
                out.push(OP_DELETE);
                put_str(&mut out, table);
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for id in ids {
                    out.extend_from_slice(&id.shard.to_le_bytes());
                    out.extend_from_slice(&id.row.to_le_bytes());
                }
            }
            Request::Query { table, plan } => {
                out.push(OP_QUERY);
                put_str(&mut out, table);
                encode_plan(&mut out, plan);
            }
            Request::TableStats { table } => {
                out.push(OP_TABLE_STATS);
                put_str(&mut out, table);
            }
            Request::ServerStats => out.push(OP_SERVER_STATS),
        }
        out
    }

    /// Parse a frame payload. Any malformed input — unknown opcode,
    /// truncation, trailing garbage, bad UTF-8 — is an `Err`, never a
    /// panic: this is the boundary where untrusted bytes enter.
    pub fn decode(payload: &[u8]) -> DecodeResult<Self> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            OP_PING => Request::Ping,
            OP_CREATE => {
                let name = c.string()?;
                let columns = c.u32()?;
                let shards = c.u32()?;
                let durable = c.u8()? != 0;
                let fsync = c.u8()? != 0;
                Request::CreateTable(TableSpec {
                    name,
                    columns,
                    shards,
                    durable,
                    fsync,
                })
            }
            OP_DROP => Request::DropTable { name: c.string()? },
            OP_LIST => Request::ListTables,
            OP_INSERT => {
                let table = c.string()?;
                let n = c.u32()? as usize;
                // Cheap sanity bound before reserving: every row costs at
                // least its 2-byte length header.
                if n > payload.len() {
                    return Err(format!("insert claims {n} rows in a smaller payload"));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let w = c.u16()? as usize;
                    let mut row = Vec::with_capacity(w);
                    for _ in 0..w {
                        row.push(c.u64()?);
                    }
                    rows.push(row);
                }
                Request::Insert { table, rows }
            }
            OP_DELETE => {
                let table = c.string()?;
                let n = c.u32()? as usize;
                if n > payload.len() {
                    return Err(format!("delete claims {n} ids in a smaller payload"));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    let shard = c.u32()?;
                    let row = c.u64()?;
                    ids.push(WireRowId { shard, row });
                }
                Request::Delete { table, ids }
            }
            OP_QUERY => {
                let table = c.string()?;
                let plan = decode_plan(&mut c)?;
                Request::Query { table, plan }
            }
            OP_TABLE_STATS => Request::TableStats { table: c.string()? },
            OP_SERVER_STATS => Request::ServerStats,
            op => return Err(format!("unknown opcode {op}")),
        };
        c.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Typed failure codes, mirroring the engine's
/// [`hyrise_core::Error`] variants plus the server-level conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed request (bad frame contents).
    Protocol = 1,
    /// The named table is not in the catalog.
    NoSuchTable = 2,
    /// `CreateTable` for a name already in the catalog.
    TableExists = 3,
    /// [`hyrise_core::Error::Io`].
    Io = 4,
    /// [`hyrise_core::Error::Corrupt`].
    Corrupt = 5,
    /// [`hyrise_core::Error::Recovery`].
    Recovery = 6,
    /// [`hyrise_core::Error::Cancelled`].
    Cancelled = 7,
    /// [`hyrise_core::Error::Config`] (also bad specs / out-of-range
    /// columns in a plan).
    Config = 8,
    /// Read rejected by the admission gate under memory pressure.
    Shed = 9,
    /// Write rejected by the admission gate (insert rate > merge rate).
    Throttled = 10,
    /// Anything else (future engine error variants).
    Internal = 11,
}

impl ErrorCode {
    fn from_u8(v: u8) -> DecodeResult<Self> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::NoSuchTable,
            3 => ErrorCode::TableExists,
            4 => ErrorCode::Io,
            5 => ErrorCode::Corrupt,
            6 => ErrorCode::Recovery,
            7 => ErrorCode::Cancelled,
            8 => ErrorCode::Config,
            9 => ErrorCode::Shed,
            10 => ErrorCode::Throttled,
            11 => ErrorCode::Internal,
            v => return Err(format!("unknown error code {v}")),
        })
    }
}

/// A typed server-side failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail (the engine error's `Display` output).
    pub message: String,
}

impl WireError {
    /// Build from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// Map an engine error onto the wire. `#[non_exhaustive]` on
    /// [`hyrise_core::Error`] means unknown future variants degrade to
    /// [`ErrorCode::Internal`] instead of breaking the protocol.
    pub fn from_engine(e: &hyrise_core::Error) -> Self {
        use hyrise_core::Error;
        let code = match e {
            Error::Io { .. } => ErrorCode::Io,
            Error::Corrupt { .. } => ErrorCode::Corrupt,
            Error::Recovery { .. } => ErrorCode::Recovery,
            Error::Cancelled => ErrorCode::Cancelled,
            Error::Config { .. } => ErrorCode::Config,
            _ => ErrorCode::Internal,
        };
        Self::new(code, e.to_string())
    }
}

/// Per-table counters in a `TableStats` response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStatsBody {
    /// Number of columns.
    pub columns: u64,
    /// Physical rows (including superseded versions).
    pub rows: u64,
    /// Rows currently visible.
    pub valid_rows: u64,
    /// Delta backlog in tuples (rows × columns across unmerged deltas is
    /// tracked engine-side; this is rows).
    pub delta_rows: u64,
    /// Completed merges across shards.
    pub merges: u64,
    /// Tuples moved by those merges.
    pub tuples_merged: u64,
    /// Current memory footprint in bytes.
    pub memory_bytes: u64,
}

/// Server-wide admission counters in a `ServerStats` response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsBody {
    /// Reads admitted immediately.
    pub admitted_reads: u64,
    /// Reads admitted after queueing.
    pub queued_reads: u64,
    /// Reads rejected under memory pressure.
    pub shed_reads: u64,
    /// Writes admitted.
    pub admitted_writes: u64,
    /// Writes rejected by the throttle.
    pub throttled_writes: u64,
    /// Engine-level reads currently in flight (the governor's counter).
    pub reads_in_flight: u64,
    /// Tables currently in the catalog.
    pub open_tables: u64,
}

/// A query result on the wire, mirroring [`hyrise_query::Output`] for
/// `u64` tables over [`WireRowId`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOutput {
    /// Matching row ids.
    Rows(Vec<WireRowId>),
    /// Materialized projections.
    Projected(Vec<Vec<u64>>),
    /// Matching-row count.
    Count(u64),
    /// Column sum (128-bit: a u64 column can overflow 64 bits).
    Sum(u128),
    /// Column min/max, `None` when nothing matched.
    MinMax(Option<(u64, u64)>),
}

impl WireOutput {
    /// Convert an executor output for transport.
    pub fn from_output(out: hyrise_query::Output<u64, ShardRowId>) -> Self {
        use hyrise_query::Output;
        match out {
            Output::Rows(ids) => WireOutput::Rows(ids.into_iter().map(Into::into).collect()),
            Output::Projected(rows) => WireOutput::Projected(rows),
            Output::Count(n) => WireOutput::Count(n as u64),
            Output::Sum(s) => WireOutput::Sum(s),
            Output::MinMax(mm) => WireOutput::MinMax(mm),
        }
    }

    /// The count, if this is a count result.
    pub fn count(&self) -> Option<u64> {
        match self {
            WireOutput::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The sum, if this is a sum result.
    pub fn sum(&self) -> Option<u128> {
        match self {
            WireOutput::Sum(s) => Some(*s),
            _ => None,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireOutput::Rows(ids) => {
                out.push(0);
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for id in ids {
                    out.extend_from_slice(&id.shard.to_le_bytes());
                    out.extend_from_slice(&id.row.to_le_bytes());
                }
            }
            WireOutput::Projected(rows) => {
                out.push(1);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
                    for v in row {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            WireOutput::Count(n) => {
                out.push(2);
                out.extend_from_slice(&n.to_le_bytes());
            }
            WireOutput::Sum(s) => {
                out.push(3);
                out.extend_from_slice(&s.to_le_bytes());
            }
            WireOutput::MinMax(None) => out.push(4),
            WireOutput::MinMax(Some((lo, hi))) => {
                out.push(5);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
    }

    fn decode(c: &mut Cursor<'_>) -> DecodeResult<Self> {
        Ok(match c.u8()? {
            0 => {
                let n = c.u32()? as usize;
                let mut ids = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    ids.push(WireRowId {
                        shard: c.u32()?,
                        row: c.u64()?,
                    });
                }
                WireOutput::Rows(ids)
            }
            1 => {
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let w = c.u16()? as usize;
                    let mut row = Vec::with_capacity(w);
                    for _ in 0..w {
                        row.push(c.u64()?);
                    }
                    rows.push(row);
                }
                WireOutput::Projected(rows)
            }
            2 => WireOutput::Count(c.u64()?),
            3 => WireOutput::Sum(u128::from_le_bytes(c.take(16)?.try_into().unwrap())),
            4 => WireOutput::MinMax(None),
            5 => {
                let lo = c.u64()?;
                let hi = c.u64()?;
                WireOutput::MinMax(Some((lo, hi)))
            }
            t => return Err(format!("unknown output tag {t}")),
        })
    }
}

/// A successful response body.
#[derive(Clone, Debug, PartialEq)]
pub enum Body {
    /// `Ping` reply.
    Pong,
    /// Acknowledgement with no payload (create/drop/delete).
    Unit,
    /// `ListTables` reply.
    Tables(Vec<String>),
    /// `Insert` reply: the assigned row ids, in input order.
    RowIds(Vec<WireRowId>),
    /// `Query` reply.
    Output(WireOutput),
    /// `TableStats` reply.
    TableStats(TableStatsBody),
    /// `ServerStats` reply.
    ServerStats(ServerStatsBody),
}

/// One server response: the admission header plus a typed result.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// What the admission gate decided for this request.
    pub admission: Admission,
    /// The outcome.
    pub result: Result<Body, WireError>,
}

impl Response {
    /// An admitted success.
    pub fn ok(body: Body) -> Self {
        Self {
            admission: Admission::Admit,
            result: Ok(body),
        }
    }

    /// An admitted failure.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            admission: Admission::Admit,
            result: Err(WireError::new(code, message)),
        }
    }

    /// Serialize to a frame payload:
    /// `[admission u8][arg u32][status u8][body | message]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.admission.encode(&mut out);
        match &self.result {
            Ok(body) => {
                out.push(0);
                match body {
                    Body::Pong => out.push(0),
                    Body::Unit => out.push(1),
                    Body::Tables(names) => {
                        out.push(2);
                        out.extend_from_slice(&(names.len() as u32).to_le_bytes());
                        for n in names {
                            put_str(&mut out, n);
                        }
                    }
                    Body::RowIds(ids) => {
                        out.push(3);
                        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                        for id in ids {
                            out.extend_from_slice(&id.shard.to_le_bytes());
                            out.extend_from_slice(&id.row.to_le_bytes());
                        }
                    }
                    Body::Output(o) => {
                        out.push(4);
                        o.encode(&mut out);
                    }
                    Body::TableStats(s) => {
                        out.push(5);
                        for v in [
                            s.columns,
                            s.rows,
                            s.valid_rows,
                            s.delta_rows,
                            s.merges,
                            s.tuples_merged,
                            s.memory_bytes,
                        ] {
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                    Body::ServerStats(s) => {
                        out.push(6);
                        for v in [
                            s.admitted_reads,
                            s.queued_reads,
                            s.shed_reads,
                            s.admitted_writes,
                            s.throttled_writes,
                            s.reads_in_flight,
                            s.open_tables,
                        ] {
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
            }
            Err(we) => {
                out.push(we.code as u8);
                put_str(&mut out, &we.message);
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(payload: &[u8]) -> DecodeResult<Self> {
        let mut c = Cursor::new(payload);
        let admission = Admission::decode(&mut c)?;
        let status = c.u8()?;
        let result = if status == 0 {
            Ok(match c.u8()? {
                0 => Body::Pong,
                1 => Body::Unit,
                2 => {
                    let n = c.u32()? as usize;
                    let mut names = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        names.push(c.string()?);
                    }
                    Body::Tables(names)
                }
                3 => {
                    let n = c.u32()? as usize;
                    let mut ids = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        ids.push(WireRowId {
                            shard: c.u32()?,
                            row: c.u64()?,
                        });
                    }
                    Body::RowIds(ids)
                }
                4 => Body::Output(WireOutput::decode(&mut c)?),
                5 => Body::TableStats(TableStatsBody {
                    columns: c.u64()?,
                    rows: c.u64()?,
                    valid_rows: c.u64()?,
                    delta_rows: c.u64()?,
                    merges: c.u64()?,
                    tuples_merged: c.u64()?,
                    memory_bytes: c.u64()?,
                }),
                6 => Body::ServerStats(ServerStatsBody {
                    admitted_reads: c.u64()?,
                    queued_reads: c.u64()?,
                    shed_reads: c.u64()?,
                    admitted_writes: c.u64()?,
                    throttled_writes: c.u64()?,
                    reads_in_flight: c.u64()?,
                    open_tables: c.u64()?,
                }),
                t => return Err(format!("unknown body tag {t}")),
            })
        } else {
            Err(WireError {
                code: ErrorCode::from_u8(status)?,
                message: c.string()?,
            })
        };
        c.finish()?;
        Ok(Response { admission, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrise_query::Query;

    #[test]
    fn request_roundtrips() {
        let reqs = vec![
            Request::Ping,
            Request::CreateTable(TableSpec::durable("orders", 4, 3, true)),
            Request::DropTable {
                name: "orders".into(),
            },
            Request::ListTables,
            Request::Insert {
                table: "t".into(),
                rows: vec![vec![1, 2, 3], vec![4, 5, 6]],
            },
            Request::Delete {
                table: "t".into(),
                ids: vec![WireRowId { shard: 1, row: 99 }],
            },
            Request::Query {
                table: "t".into(),
                plan: Query::from_parts(
                    Query::scan(0)
                        .between(5u64, 10)
                        .and(2)
                        .eq(7)
                        .sum(1)
                        .with_threads(4)
                        .predicates()
                        .to_vec(),
                    hyrise_query::Action::Sum(1),
                    4,
                ),
            },
            Request::TableStats { table: "t".into() },
            Request::ServerStats,
        ];
        for r in reqs {
            let enc = r.encode();
            assert_eq!(Request::decode(&enc).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn response_roundtrips() {
        let resps = vec![
            Response::ok(Body::Pong),
            Response {
                admission: Admission::Queued { waited_ms: 12 },
                result: Ok(Body::Output(WireOutput::MinMax(Some((3, 9))))),
            },
            Response {
                admission: Admission::Throttled { retry_after_ms: 50 },
                result: Err(WireError::new(ErrorCode::Throttled, "backlog")),
            },
            Response {
                admission: Admission::Shed,
                result: Err(WireError::new(ErrorCode::Shed, "memory pressure")),
            },
            Response::ok(Body::Output(WireOutput::Sum(u128::MAX / 3))),
            Response::ok(Body::Tables(vec!["a".into(), "b".into()])),
            Response::ok(Body::ServerStats(ServerStatsBody {
                admitted_reads: 1,
                queued_reads: 2,
                shed_reads: 3,
                admitted_writes: 4,
                throttled_writes: 5,
                reads_in_flight: 6,
                open_tables: 7,
            })),
        ];
        for r in resps {
            let enc = r.encode();
            assert_eq!(Response::decode(&enc).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn garbage_and_truncation_are_typed_errors() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(
            Request::decode(&[OP_CREATE, 5, 0]).is_err(),
            "truncated string"
        );
        let mut ok = Request::Ping.encode();
        ok.push(0);
        assert!(Request::decode(&ok).is_err(), "trailing byte");
        assert!(
            Response::decode(&[9, 0, 0, 0, 0, 0]).is_err(),
            "bad admission tag"
        );
    }

    #[test]
    fn oversized_header_is_rejected_without_allocating() {
        let mut buf: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        match read_frame(&mut buf, &|| false) {
            Err(FrameError::Oversized(n)) => assert_eq!(n, u32::MAX),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_detected() {
        // Header promises 100 bytes; stream ends after 3.
        let mut data = 100u32.to_le_bytes().to_vec();
        data.extend_from_slice(&[1, 2, 3]);
        let mut buf: &[u8] = &data;
        match read_frame(&mut buf, &|| false) {
            Err(FrameError::Torn) => {}
            other => panic!("expected Torn, got {other:?}"),
        }
    }

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r: &[u8] = &wire;
        match read_frame(&mut r, &|| false).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, b"hello"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r, &|| false).unwrap() {
            FrameEvent::Frame(p) => assert!(p.is_empty()),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r, &|| false).unwrap() {
            FrameEvent::Closed => {}
            other => panic!("{other:?}"),
        }
    }
}

//! The client library: one persistent connection, typed errors, and the
//! admission header surfaced after every call.
//!
//! A [`Client`] owns one [`TcpStream`] and reuses it for every request
//! (the server's workers serve a connection's requests back-to-back, so
//! connection-reuse is the fast path). Failures are typed: transport
//! problems are [`ClientError::Io`], malformed responses are
//! [`ClientError::Protocol`], engine failures arrive as
//! [`ClientError::Server`] carrying the [`ErrorCode`] mapped from the
//! engine's [`hyrise_core::Error`] enum, and the two admission rejections
//! get their own variants ([`ClientError::Throttled`] with the server's
//! suggested back-off, [`ClientError::Shed`]) because callers handle them
//! differently from real errors: they retry.

use crate::protocol::{
    read_frame, write_frame, Admission, Body, ErrorCode, FrameError, FrameEvent, Request, Response,
    ServerStatsBody, TableSpec, TableStatsBody, WireOutput, WireRowId,
};
use hyrise_query::Query;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, send, receive, torn frame).
    Io(std::io::Error),
    /// The peer sent bytes this client could not decode.
    Protocol(String),
    /// The server answered with a typed failure.
    Server {
        /// Category (mirrors the engine's error enum plus server codes).
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The write was rejected by the admission valve; back off and retry.
    Throttled {
        /// Server-suggested back-off.
        retry_after: Duration,
    },
    /// The read was shed under memory pressure; retry later.
    Shed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Throttled { retry_after } => {
                write!(f, "write throttled; retry after {retry_after:?}")
            }
            ClientError::Shed => write!(f, "read shed under memory pressure"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            FrameError::Torn => ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            )),
            FrameError::Oversized(n) => {
                ClientError::Protocol(format!("peer announced an oversized frame ({n} bytes)"))
            }
        }
    }
}

/// Shorthand result type.
pub type ClientResult<T> = Result<T, ClientError>;

/// A connection-reusing client for one server.
pub struct Client {
    stream: TcpStream,
    last_admission: Admission,
}

impl Client {
    /// Connect.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            last_admission: Admission::Admit,
        })
    }

    /// The admission decision stamped on the most recent response
    /// (including rejected ones) — how callers observe queueing without
    /// measuring latency.
    pub fn last_admission(&self) -> Admission {
        self.last_admission
    }

    fn call(&mut self, req: &Request) -> ClientResult<Body> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = match read_frame(&mut self.stream, &|| false)? {
            FrameEvent::Frame(p) => p,
            FrameEvent::Closed | FrameEvent::Idle => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before answering",
                )))
            }
        };
        let resp = Response::decode(&payload).map_err(ClientError::Protocol)?;
        self.last_admission = resp.admission;
        match resp.result {
            Ok(body) => Ok(body),
            Err(we) => Err(match we.code {
                ErrorCode::Shed => ClientError::Shed,
                ErrorCode::Throttled => ClientError::Throttled {
                    retry_after: resp
                        .admission
                        .retry_after()
                        .unwrap_or(Duration::from_millis(25)),
                },
                code => ClientError::Server {
                    code,
                    message: we.message,
                },
            }),
        }
    }

    fn expect_unit(&mut self, req: &Request) -> ClientResult<()> {
        match self.call(req)? {
            Body::Unit => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected unit acknowledgement, got {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Body::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Create a table.
    pub fn create_table(&mut self, spec: &TableSpec) -> ClientResult<()> {
        self.expect_unit(&Request::CreateTable(spec.clone()))
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> ClientResult<()> {
        self.expect_unit(&Request::DropTable {
            name: name.to_string(),
        })
    }

    /// List table names.
    pub fn list_tables(&mut self) -> ClientResult<Vec<String>> {
        match self.call(&Request::ListTables)? {
            Body::Tables(names) => Ok(names),
            other => Err(ClientError::Protocol(format!(
                "expected table list, got {other:?}"
            ))),
        }
    }

    /// Batched insert; returns the assigned row ids in input order.
    pub fn insert(&mut self, table: &str, rows: &[Vec<u64>]) -> ClientResult<Vec<WireRowId>> {
        match self.call(&Request::Insert {
            table: table.to_string(),
            rows: rows.to_vec(),
        })? {
            Body::RowIds(ids) => Ok(ids),
            other => Err(ClientError::Protocol(format!(
                "expected row ids, got {other:?}"
            ))),
        }
    }

    /// Batched delete of previously returned row ids.
    pub fn delete(&mut self, table: &str, ids: &[WireRowId]) -> ClientResult<()> {
        self.expect_unit(&Request::Delete {
            table: table.to_string(),
            ids: ids.to_vec(),
        })
    }

    /// Run a query plan.
    pub fn query(&mut self, table: &str, plan: &Query<u64>) -> ClientResult<WireOutput> {
        match self.call(&Request::Query {
            table: table.to_string(),
            plan: plan.clone(),
        })? {
            Body::Output(o) => Ok(o),
            other => Err(ClientError::Protocol(format!(
                "expected query output, got {other:?}"
            ))),
        }
    }

    /// Per-table counters.
    pub fn table_stats(&mut self, table: &str) -> ClientResult<TableStatsBody> {
        match self.call(&Request::TableStats {
            table: table.to_string(),
        })? {
            Body::TableStats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected table stats, got {other:?}"
            ))),
        }
    }

    /// Server-wide admission counters.
    pub fn server_stats(&mut self) -> ClientResult<ServerStatsBody> {
        match self.call(&Request::ServerStats)? {
            Body::ServerStats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected server stats, got {other:?}"
            ))),
        }
    }
}

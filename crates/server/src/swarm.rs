//! The client-swarm driver: N client threads replaying the Section 2 mix
//! against a live server over the wire.
//!
//! This is the in-process `drive_sharded` loop turned inside out: instead
//! of workers calling the table directly, every worker is a [`Client`] on
//! its own connection, and everything — routing, merging, admission — is
//! the server's job. Admission rejections are part of the workload, not
//! errors: a throttled writer backs off for the server-suggested interval
//! and retries (counted in [`SwarmReport::throttled`] /
//! [`SwarmReport::retries`]), a shed reader just moves on (counted in
//! [`SwarmReport::shed`]).
//!
//! Determinism and oracle support: each client's operation stream and
//! value seeds derive from [`SwarmWorkload::client_seed`], every inserted
//! row's key (column 0) is unique across preload and clients, and the
//! report carries the exact key sets inserted and deleted — enough for a
//! test to rebuild the expected table contents and check the server
//! against an in-memory oracle.

use crate::client::{Client, ClientError, ClientResult};
use crate::protocol::WireRowId;
use hyrise_query::Query;
use hyrise_workload::{Operation, SwarmWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Build the row a key seed expands to (`cols` wide; column 0 *is* the
/// key, the rest derive from it).
pub fn swarm_row(key: u64, cols: usize) -> Vec<u64> {
    (0..cols as u64)
        .map(|c| {
            if c == 0 {
                key
            } else {
                key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(c as u32)
            }
        })
        .collect()
}

/// Upper bound on per-op throttle retries before the op is dropped (the
/// drop is counted, never silent).
const MAX_RETRIES: usize = 8;

/// What one swarm run did.
#[derive(Clone, Debug, Default)]
pub struct SwarmReport {
    /// Operations completed (including retried ones, once).
    pub ops: u64,
    /// Point lookups executed.
    pub lookups: u64,
    /// Range reads (scans + range selects) executed.
    pub range_reads: u64,
    /// Insert batches executed.
    pub inserts: u64,
    /// Rows inserted across those batches.
    pub rows_inserted: u64,
    /// Delete calls executed.
    pub deletes: u64,
    /// Throttle rejections observed (each is also either retried or
    /// dropped).
    pub throttled: u64,
    /// Shed rejections observed.
    pub shed: u64,
    /// Successful retries after a throttle.
    pub retries: u64,
    /// Ops dropped after `MAX_RETRIES` consecutive throttles.
    pub dropped: u64,
    /// Wall time of the swarm phase (excludes preload).
    pub elapsed: Duration,
    /// Keys (column-0 values) inserted by the swarm, all clients.
    pub inserted_keys: Vec<u64>,
    /// Keys deleted by the swarm (always keys the same client inserted).
    pub deleted_keys: Vec<u64>,
}

impl SwarmReport {
    fn absorb(&mut self, other: SwarmReport) {
        self.ops += other.ops;
        self.lookups += other.lookups;
        self.range_reads += other.range_reads;
        self.inserts += other.inserts;
        self.rows_inserted += other.rows_inserted;
        self.deletes += other.deletes;
        self.throttled += other.throttled;
        self.shed += other.shed;
        self.retries += other.retries;
        self.dropped += other.dropped;
        self.inserted_keys.extend(other.inserted_keys);
        self.deleted_keys.extend(other.deleted_keys);
    }
}

/// Preload `initial_rows` rows (keys `0..initial_rows`) through the wire,
/// riding out throttles. Returns the number of rows loaded.
pub fn preload(addr: &str, table: &str, workload: &SwarmWorkload) -> ClientResult<u64> {
    let mut client = Client::connect(addr)?;
    let cols = columns_of(&mut client, table)?;
    let mut loaded = 0u64;
    let batch = 512;
    while loaded < workload.initial_rows {
        let n = batch.min(workload.initial_rows - loaded);
        let rows: Vec<Vec<u64>> = (loaded..loaded + n).map(|k| swarm_row(k, cols)).collect();
        match client.insert(table, &rows) {
            Ok(_) => loaded += n,
            Err(ClientError::Throttled { retry_after }) => {
                std::thread::sleep(retry_after.min(Duration::from_millis(100)));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(loaded)
}

/// Discover a table's width over the wire.
fn columns_of(client: &mut Client, table: &str) -> ClientResult<usize> {
    Ok(client.table_stats(table)?.columns as usize)
}

/// One client's loop. Key tagging: client `i`'s inserted keys are
/// `(i+1) << 40 | counter`, disjoint from the preload keys `0..initial`.
fn run_client(
    addr: &str,
    table: &str,
    workload: &SwarmWorkload,
    client_idx: usize,
    cols: usize,
) -> ClientResult<SwarmReport> {
    let mut client = Client::connect(addr)?;
    let mut rng = StdRng::seed_from_u64(workload.client_seed(client_idx));
    let mut stream = workload.stream(client_idx);
    let mut report = SwarmReport::default();
    // Ids this client inserted and may later delete: (id, key).
    let mut owned: Vec<(WireRowId, u64)> = Vec::new();
    let mut next_local: u64 = 0;
    let tag = (client_idx as u64 + 1) << 40;

    for _ in 0..workload.ops_per_client {
        let op = stream.next_op(&mut rng);
        match op {
            Operation::Lookup { row } => {
                if run_read(&mut report, || {
                    client.query(table, &Query::scan(0).eq(row).count())
                })?
                .is_some()
                {
                    report.lookups += 1;
                }
            }
            Operation::Scan { start, len } => {
                if run_read(&mut report, || {
                    client.query(
                        table,
                        &Query::scan(0)
                            .between(start, start.saturating_add(len))
                            .count(),
                    )
                })?
                .is_some()
                {
                    report.range_reads += 1;
                }
            }
            Operation::RangeSelect { lo, hi } => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                if run_read(&mut report, || {
                    client.query(table, &Query::scan(0).between(lo, hi).count())
                })?
                .is_some()
                {
                    report.range_reads += 1;
                }
            }
            Operation::Insert { .. } | Operation::Update { .. } => {
                // An update is modeled as insert-new-version (+ delete of
                // one owned row below) — the engine's insert-only
                // discipline, driven over the wire.
                let keys: Vec<u64> = (0..workload.insert_batch as u64)
                    .map(|b| tag | (next_local + b))
                    .collect();
                let rows: Vec<Vec<u64>> = keys.iter().map(|k| swarm_row(*k, cols)).collect();
                if let Some(ids) = run_write(&mut report, || client.insert(table, &rows))? {
                    next_local += workload.insert_batch as u64;
                    report.inserts += 1;
                    report.rows_inserted += ids.len() as u64;
                    report.inserted_keys.extend_from_slice(&keys);
                    owned.extend(ids.into_iter().zip(keys));
                    if matches!(op, Operation::Update { .. }) {
                        if let Some((id, key)) = owned.first().copied() {
                            if run_write(&mut report, || client.delete(table, &[id]))?.is_some() {
                                owned.remove(0);
                                report.deletes += 1;
                                report.deleted_keys.push(key);
                            }
                        }
                    }
                }
            }
            Operation::Delete { .. } => {
                let Some((id, key)) = owned.pop() else {
                    continue;
                };
                match run_write(&mut report, || client.delete(table, &[id]))? {
                    Some(()) => {
                        report.deletes += 1;
                        report.deleted_keys.push(key);
                    }
                    None => {
                        // Dropped after retries: the row stays visible.
                        owned.push((id, key));
                    }
                }
            }
        }
        report.ops += 1;
    }
    Ok(report)
}

/// Run a read. `Ok(None)` means the read was shed (recorded and skipped —
/// the server told us to come back later, and the swarm has later ops);
/// real failures propagate.
fn run_read<T>(
    report: &mut SwarmReport,
    mut f: impl FnMut() -> ClientResult<T>,
) -> ClientResult<Option<T>> {
    match f() {
        Ok(v) => Ok(Some(v)),
        Err(ClientError::Shed) => {
            report.shed += 1;
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// Run a write, backing off and retrying on throttles up to
/// [`MAX_RETRIES`] times. `Ok(None)` means the op was dropped after
/// exhausting its retries; real failures propagate.
fn run_write<T>(
    report: &mut SwarmReport,
    mut f: impl FnMut() -> ClientResult<T>,
) -> ClientResult<Option<T>> {
    for attempt in 0..=MAX_RETRIES {
        match f() {
            Ok(v) => {
                if attempt > 0 {
                    report.retries += 1;
                }
                return Ok(Some(v));
            }
            Err(ClientError::Throttled { retry_after }) => {
                report.throttled += 1;
                std::thread::sleep(retry_after.min(Duration::from_millis(100)));
            }
            Err(e) => return Err(e),
        }
    }
    report.dropped += 1;
    Ok(None)
}

/// Drive the full swarm: preload the table, then run
/// [`SwarmWorkload::clients`] concurrent client threads to completion and
/// merge their reports. The table must already exist (create it via a
/// [`Client`] or the catalog first).
pub fn drive_swarm(addr: &str, table: &str, workload: &SwarmWorkload) -> ClientResult<SwarmReport> {
    preload(addr, table, workload)?;
    let mut probe = Client::connect(addr)?;
    let cols = columns_of(&mut probe, table)?;
    drop(probe);

    let start = Instant::now();
    let reports: Vec<ClientResult<SwarmReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workload.clients)
            .map(|i| scope.spawn(move || run_client(addr, table, workload, i, cols)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = SwarmReport::default();
    for r in reports {
        merged.absorb(r?);
    }
    merged.elapsed = start.elapsed();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swarm_rows_are_keyed_on_column_zero() {
        let r = swarm_row(42, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], 42);
        assert_ne!(r[1], r[2], "derived columns differ");
        assert_eq!(swarm_row(42, 4), r, "deterministic");
    }
}

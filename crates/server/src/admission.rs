//! Governor-driven admission control: the server-side half of the PR-5
//! feedback loop.
//!
//! The [`hyrise_core::governor::ResourceGovernor`] adapts *merge* grants
//! to load; this module closes the loop from the other side by adapting
//! *load* to what the engine can absorb. Two independent valves:
//!
//! * **Reads** are gated on memory *and* on the worker pool's backlog:
//!   below a soft memory limit with a shallow pool queue they pass; while
//!   memory sits between the soft and hard limit **or** the pool's
//!   queued-but-unclaimed task count exceeds [`AdmissionConfig::pool_queue_limit`]
//!   (every worker busy and morsels piling up — adding queries would only
//!   deepen the backlog) they wait in a bounded queue; above the hard
//!   memory limit or after a bounded wait they are *shed* with a typed
//!   rejection. Both pressures are usually transient — a merge in flight
//!   holds both copies of a column, a queued morsel drains in
//!   microseconds. No read ever blocks unboundedly: the queue has a
//!   capacity and every queued read a deadline.
//! * **Writes** are gated on the race the paper's Equation 1 describes:
//!   the sustainable update rate is bounded by how fast merges drain the
//!   delta. The gate samples the insert rate and the merge drain rate
//!   over a sliding window; when the delta backlog exceeds a limit *and*
//!   inserts are outrunning merges, writers get a 429-style
//!   [`WriteAdmission::Throttle`] with a suggested back-off, until the
//!   backlog drains below a release fraction (hysteresis, so the valve
//!   does not flap at the boundary).
//!
//! Decisions are pure functions ([`decide_read`] / [`decide_write`]) over
//! sampled signals, so the boundary conditions are unit-testable without
//! a server, a table, or a clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Tuning knobs for an [`AdmissionGate`].
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Reads pass immediately while the sampled table memory is at or
    /// below this (bytes).
    pub memory_queue_limit: usize,
    /// Reads are shed outright while memory exceeds this (bytes); between
    /// the two limits they queue.
    pub memory_shed_limit: usize,
    /// Max reads waiting in the queue at once; arrivals beyond it shed.
    pub queue_capacity: usize,
    /// Max time a read waits before it sheds (the no-request-ever-hangs
    /// bound).
    pub queue_timeout: Duration,
    /// Reads queue while the shared worker pool reports more
    /// queued-but-unclaimed tasks than this — the workers are saturated
    /// and admitting more morsel-parallel queries would only deepen the
    /// backlog. The pool drains fast, so this queues rather than sheds.
    pub pool_queue_limit: usize,
    /// Re-sample interval while queued.
    pub queue_poll: Duration,
    /// Writes throttle once the delta backlog (unmerged rows) exceeds
    /// this while the insert rate also exceeds the merge drain rate.
    pub write_backlog_limit: usize,
    /// Hysteresis: a throttling table readmits writes only once its
    /// backlog falls below `write_backlog_limit * write_release_fraction`.
    pub write_release_fraction: f64,
    /// Back-off suggested to throttled writers.
    pub throttle_retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            memory_queue_limit: 1 << 30, // 1 GiB
            memory_shed_limit: 3 << 29,  // 1.5 GiB
            queue_capacity: 64,
            queue_timeout: Duration::from_millis(500),
            queue_poll: Duration::from_millis(2),
            // Same shape as the governor's deep-queue threshold: a few
            // unclaimed tasks per hardware thread is normal fan-out churn,
            // beyond that the pool is saturated.
            pool_queue_limit: 4 * std::thread::available_parallelism().map_or(1, |n| n.get()),
            write_backlog_limit: 1 << 20, // 1M unmerged rows
            write_release_fraction: 0.5,
            throttle_retry_after: Duration::from_millis(25),
        }
    }
}

/// What [`decide_read`] says about one read arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadDecision {
    /// Run it now.
    Admit,
    /// Wait and re-sample (memory is elevated but below the shed line).
    Queue,
    /// Reject it (memory above the shed line, or the queue is full).
    Shed,
}

/// Pure read-admission decision over sampled signals.
///
/// `pool_queue_depth` is the worker pool's queued-but-unclaimed task
/// count; past [`AdmissionConfig::pool_queue_limit`] it queues the read
/// (never sheds on its own — the pool drains fast, memory does not).
/// `queued_others` is the number of *other* reads currently waiting (a
/// queued read excludes itself, so arrivals can fill the queue without
/// evicting the reads already in it).
pub fn decide_read(
    cfg: &AdmissionConfig,
    memory_bytes: usize,
    pool_queue_depth: usize,
    queued_others: usize,
) -> ReadDecision {
    if memory_bytes > cfg.memory_shed_limit {
        ReadDecision::Shed
    } else if memory_bytes <= cfg.memory_queue_limit && pool_queue_depth <= cfg.pool_queue_limit {
        ReadDecision::Admit
    } else if queued_others >= cfg.queue_capacity {
        ReadDecision::Shed
    } else {
        ReadDecision::Queue
    }
}

/// What [`decide_write`] says about one write arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteDecision {
    /// Run it now.
    Admit,
    /// Reject with a back-off: the delta is backed up and inserts are
    /// outrunning the merge drain.
    Throttle,
}

/// Pure write-admission decision over sampled signals.
///
/// `throttling` is the table's current valve state; the release threshold
/// sits below the engage threshold (`write_release_fraction`) so the
/// decision has hysteresis instead of flapping once the backlog oscillates
/// around the limit. While engaged, the valve stays closed until the
/// backlog drains regardless of the instantaneous rates (a merge round can
/// briefly out-pace a paused writer without meaning the crisis is over).
pub fn decide_write(
    cfg: &AdmissionConfig,
    backlog_rows: usize,
    insert_rate: f64,
    merge_rate: f64,
    throttling: bool,
) -> WriteDecision {
    if throttling {
        let release = cfg.write_backlog_limit as f64 * cfg.write_release_fraction;
        if (backlog_rows as f64) < release {
            WriteDecision::Admit
        } else {
            WriteDecision::Throttle
        }
    } else if backlog_rows > cfg.write_backlog_limit && insert_rate > merge_rate {
        WriteDecision::Throttle
    } else {
        WriteDecision::Admit
    }
}

/// Per-table sliding window the write valve samples its rates from, plus
/// the valve's hysteresis state. The server keeps one per catalog entry.
#[derive(Debug)]
pub struct RateWindow {
    at: Instant,
    inserted: u64,
    merged: u64,
    insert_rate: f64,
    merge_rate: f64,
    throttling: bool,
}

/// Minimum window width before rates are recomputed; below it the cached
/// rates are reused (sub-millisecond windows would just measure noise).
const MIN_WINDOW: Duration = Duration::from_millis(20);

impl RateWindow {
    /// A fresh window with zero rates.
    pub fn new() -> Self {
        Self {
            at: Instant::now(),
            inserted: 0,
            merged: 0,
            insert_rate: 0.0,
            merge_rate: 0.0,
            throttling: false,
        }
    }

    /// Feed the cumulative counters (rows ever inserted, rows ever moved
    /// by merges) and get back the windowed `(insert_rate, merge_rate)`
    /// in rows/second. This is Equation 1's accounting: the sustainable
    /// update rate over an interval is the updates divided by the wall
    /// time *including* the merge work the updates caused —
    /// [`hyrise_core::update_rate`] over the sampling window.
    pub fn observe(&mut self, inserted: u64, merged: u64) -> (f64, f64) {
        let elapsed = self.at.elapsed();
        if elapsed >= MIN_WINDOW {
            let secs = elapsed.as_secs_f64();
            let d_ins = inserted.saturating_sub(self.inserted);
            let d_mrg = merged.saturating_sub(self.merged);
            self.insert_rate = hyrise_core::update_rate(d_ins as usize, elapsed, Duration::ZERO);
            self.merge_rate = d_mrg as f64 / secs;
            self.at = Instant::now();
            self.inserted = inserted;
            self.merged = merged;
        }
        (self.insert_rate, self.merge_rate)
    }

    /// Current valve state.
    pub fn throttling(&self) -> bool {
        self.throttling
    }
}

impl Default for RateWindow {
    fn default() -> Self {
        Self::new()
    }
}

/// How one read fared at the gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadAdmission {
    /// Admitted; `waited` is zero unless the read queued, `queued` says
    /// whether it did.
    Admit {
        /// Time spent waiting in the queue.
        waited: Duration,
        /// Whether the read passed through the queue at all.
        queued: bool,
    },
    /// Rejected after at most `queue_timeout`.
    Shed,
}

/// How one write fared at the gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteAdmission {
    /// Admitted.
    Admit,
    /// Rejected; the client should back off for `retry_after`.
    Throttle {
        /// Suggested back-off.
        retry_after: Duration,
    },
}

/// The server's admission valve: pure decisions plus the counters that
/// make its behavior observable over the wire (`ServerStats`).
#[derive(Debug)]
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    queued_now: AtomicU64,
    admitted_reads: AtomicU64,
    queued_reads: AtomicU64,
    shed_reads: AtomicU64,
    admitted_writes: AtomicU64,
    throttled_writes: AtomicU64,
}

/// Snapshot of an [`AdmissionGate`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Reads admitted without queueing.
    pub admitted_reads: u64,
    /// Reads admitted after a queue wait.
    pub queued_reads: u64,
    /// Reads rejected.
    pub shed_reads: u64,
    /// Writes admitted.
    pub admitted_writes: u64,
    /// Writes rejected by the throttle valve.
    pub throttled_writes: u64,
    /// Reads waiting in the queue right now.
    pub reads_queued_now: u64,
}

impl AdmissionGate {
    /// Build a gate with the given knobs.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            queued_now: AtomicU64::new(0),
            admitted_reads: AtomicU64::new(0),
            queued_reads: AtomicU64::new(0),
            shed_reads: AtomicU64::new(0),
            admitted_writes: AtomicU64::new(0),
            throttled_writes: AtomicU64::new(0),
        }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Gate one read. `memory` and `pool_depth` are re-sampled on every
    /// poll so a pressure spike that resolves (a merge commits and retires
    /// its spare copy; the pool drains its morsel backlog) lets queued
    /// reads through. Returns within `queue_timeout` + one poll, worst
    /// case — the no-hang guarantee the integration tests assert.
    pub fn admit_read(
        &self,
        mut memory: impl FnMut() -> usize,
        mut pool_depth: impl FnMut() -> usize,
    ) -> ReadAdmission {
        let start = Instant::now();
        let mut queued = false;
        loop {
            let others = (self.queued_now.load(Ordering::Relaxed) as usize)
                .saturating_sub(usize::from(queued));
            match decide_read(&self.cfg, memory(), pool_depth(), others) {
                ReadDecision::Admit => {
                    if queued {
                        self.queued_now.fetch_sub(1, Ordering::Relaxed);
                        self.queued_reads.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.admitted_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    return ReadAdmission::Admit {
                        waited: start.elapsed(),
                        queued,
                    };
                }
                ReadDecision::Shed => {
                    if queued {
                        self.queued_now.fetch_sub(1, Ordering::Relaxed);
                    }
                    self.shed_reads.fetch_add(1, Ordering::Relaxed);
                    return ReadAdmission::Shed;
                }
                ReadDecision::Queue => {
                    if !queued {
                        queued = true;
                        self.queued_now.fetch_add(1, Ordering::Relaxed);
                    }
                    if start.elapsed() >= self.cfg.queue_timeout {
                        self.queued_now.fetch_sub(1, Ordering::Relaxed);
                        self.shed_reads.fetch_add(1, Ordering::Relaxed);
                        return ReadAdmission::Shed;
                    }
                    std::thread::sleep(self.cfg.queue_poll);
                }
            }
        }
    }

    /// Gate one write against a table's rate window and current backlog.
    /// `inserted`/`merged` are the table's cumulative counters.
    pub fn admit_write(
        &self,
        window: &mut RateWindow,
        backlog_rows: usize,
        inserted: u64,
        merged: u64,
    ) -> WriteAdmission {
        let (insert_rate, merge_rate) = window.observe(inserted, merged);
        match decide_write(
            &self.cfg,
            backlog_rows,
            insert_rate,
            merge_rate,
            window.throttling,
        ) {
            WriteDecision::Admit => {
                window.throttling = false;
                self.admitted_writes.fetch_add(1, Ordering::Relaxed);
                WriteAdmission::Admit
            }
            WriteDecision::Throttle => {
                window.throttling = true;
                self.throttled_writes.fetch_add(1, Ordering::Relaxed);
                WriteAdmission::Throttle {
                    retry_after: self.cfg.throttle_retry_after,
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted_reads: self.admitted_reads.load(Ordering::Relaxed),
            queued_reads: self.queued_reads.load(Ordering::Relaxed),
            shed_reads: self.shed_reads.load(Ordering::Relaxed),
            admitted_writes: self.admitted_writes.load(Ordering::Relaxed),
            throttled_writes: self.throttled_writes.load(Ordering::Relaxed),
            reads_queued_now: self.queued_now.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            memory_queue_limit: 1_000,
            memory_shed_limit: 2_000,
            queue_capacity: 4,
            queue_timeout: Duration::from_millis(30),
            queue_poll: Duration::from_millis(1),
            pool_queue_limit: 8,
            write_backlog_limit: 100,
            write_release_fraction: 0.5,
            throttle_retry_after: Duration::from_millis(10),
        }
    }

    #[test]
    fn read_decision_boundaries() {
        let c = cfg();
        // At the queue limit: still admitted (inclusive).
        assert_eq!(decide_read(&c, 1_000, 0, 0), ReadDecision::Admit);
        assert_eq!(decide_read(&c, 1_001, 0, 0), ReadDecision::Queue);
        // At the shed limit: still queued (inclusive); one past sheds.
        assert_eq!(decide_read(&c, 2_000, 0, 0), ReadDecision::Queue);
        assert_eq!(decide_read(&c, 2_001, 0, 0), ReadDecision::Shed);
        // Queue full: arrivals shed even in the queue band.
        assert_eq!(decide_read(&c, 1_500, 0, 3), ReadDecision::Queue);
        assert_eq!(decide_read(&c, 1_500, 0, 4), ReadDecision::Shed);
        // Low memory admits regardless of queue depth.
        assert_eq!(decide_read(&c, 999, 0, 4), ReadDecision::Admit);
    }

    #[test]
    fn deep_pool_queue_gates_reads() {
        let c = cfg();
        // At the pool limit (inclusive): still admitted.
        assert_eq!(decide_read(&c, 0, 8, 0), ReadDecision::Admit);
        // Past it: queue even with memory at zero — the workers are
        // saturated, not out of memory, so the read waits for the drain.
        assert_eq!(decide_read(&c, 0, 9, 0), ReadDecision::Queue);
        // A deep pool queue never sheds on its own...
        assert_eq!(decide_read(&c, 0, 10_000, 0), ReadDecision::Queue);
        // ...until the wait queue itself is full.
        assert_eq!(decide_read(&c, 0, 10_000, 4), ReadDecision::Shed);
        // Hard memory pressure sheds regardless of the pool.
        assert_eq!(decide_read(&c, 2_001, 0, 0), ReadDecision::Shed);
    }

    #[test]
    fn queued_read_admits_when_the_pool_drains() {
        let g = AdmissionGate::new(cfg());
        let polls = std::cell::Cell::new(0u32);
        let adm = g.admit_read(
            || 0,
            || {
                polls.set(polls.get() + 1);
                // Two polls of a saturated pool, then the backlog drains.
                if polls.get() <= 2 {
                    50
                } else {
                    0
                }
            },
        );
        match adm {
            ReadAdmission::Admit { queued, .. } => assert!(queued, "waited out the backlog"),
            other => panic!("{other:?}"),
        }
        assert_eq!(g.stats().queued_reads, 1);
    }

    #[test]
    fn write_decision_boundaries_and_hysteresis() {
        let c = cfg();
        // Backlog at the limit (inclusive): admitted.
        assert_eq!(
            decide_write(&c, 100, 10.0, 1.0, false),
            WriteDecision::Admit
        );
        // Over the limit but merges keeping up: admitted.
        assert_eq!(
            decide_write(&c, 101, 10.0, 10.0, false),
            WriteDecision::Admit
        );
        // Over the limit and inserts outrunning merges: throttled.
        assert_eq!(
            decide_write(&c, 101, 10.0, 9.9, false),
            WriteDecision::Throttle
        );
        // Hysteresis: once throttling, stays closed until below release
        // (50), even if rates momentarily invert.
        assert_eq!(
            decide_write(&c, 60, 0.0, 99.0, true),
            WriteDecision::Throttle
        );
        assert_eq!(
            decide_write(&c, 50, 0.0, 99.0, true),
            WriteDecision::Throttle
        );
        assert_eq!(decide_write(&c, 49, 99.0, 0.0, true), WriteDecision::Admit);
    }

    #[test]
    fn gate_admits_and_counts() {
        let g = AdmissionGate::new(cfg());
        match g.admit_read(|| 0, || 0) {
            ReadAdmission::Admit { queued, .. } => assert!(!queued),
            other => panic!("{other:?}"),
        }
        assert_eq!(g.stats().admitted_reads, 1);
        assert_eq!(g.stats().shed_reads, 0);
    }

    #[test]
    fn gate_sheds_above_hard_limit_immediately() {
        let g = AdmissionGate::new(cfg());
        let t = Instant::now();
        assert_eq!(g.admit_read(|| 5_000, || 0), ReadAdmission::Shed);
        assert!(t.elapsed() < Duration::from_millis(20), "no queue wait");
        assert_eq!(g.stats().shed_reads, 1);
    }

    #[test]
    fn queued_read_sheds_at_the_timeout_never_hangs() {
        let g = AdmissionGate::new(cfg());
        let t = Instant::now();
        // Memory pinned in the queue band: the read waits, then sheds.
        assert_eq!(g.admit_read(|| 1_500, || 0), ReadAdmission::Shed);
        let waited = t.elapsed();
        assert!(waited >= Duration::from_millis(30), "honored the queue");
        assert!(waited < Duration::from_secs(2), "bounded by the timeout");
        assert_eq!(g.stats().reads_queued_now, 0, "queue slot released");
    }

    #[test]
    fn queued_read_admits_when_pressure_resolves() {
        let g = AdmissionGate::new(cfg());
        let calls = std::cell::Cell::new(0u32);
        let adm = g.admit_read(
            || {
                calls.set(calls.get() + 1);
                // Two polls of pressure, then the merge "commits".
                if calls.get() <= 2 {
                    1_500
                } else {
                    100
                }
            },
            || 0,
        );
        match adm {
            ReadAdmission::Admit { queued, .. } => assert!(queued, "went through the queue"),
            other => panic!("{other:?}"),
        }
        assert_eq!(g.stats().queued_reads, 1);
        assert_eq!(
            g.stats().admitted_reads,
            0,
            "queued admits count separately"
        );
    }

    #[test]
    fn write_valve_engages_and_releases_through_the_gate() {
        let g = AdmissionGate::new(cfg());
        let mut w = RateWindow::new();
        // Warm the window so rates exist, then wait out MIN_WINDOW.
        w.observe(0, 0);
        std::thread::sleep(Duration::from_millis(25));
        // 1000 rows inserted, none merged: insert rate wins, backlog 200.
        let adm = g.admit_write(&mut w, 200, 1_000, 0);
        assert!(matches!(adm, WriteAdmission::Throttle { .. }));
        assert!(w.throttling());
        // Backlog drains below release: valve opens.
        let adm = g.admit_write(&mut w, 40, 1_000, 960);
        assert_eq!(adm, WriteAdmission::Admit);
        assert!(!w.throttling());
        let s = g.stats();
        assert_eq!(s.throttled_writes, 1);
        assert_eq!(s.admitted_writes, 1);
    }
}

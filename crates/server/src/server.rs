//! The TCP server: a listener, a sized worker pool, and the request
//! dispatcher that routes every wire call through the admission gate and
//! the catalog.
//!
//! The build container is offline, so there is no async runtime: the
//! server is `std::net` all the way down. One accept thread hands
//! connections to `workers` pool threads over a channel; each worker owns
//! one connection at a time and serves its requests back-to-back
//! (connection-reuse is the client's cheap path — one TCP handshake per
//! swarm client, not per request). Worker reads run under a short socket
//! timeout so every worker notices the stop flag within one idle-poll
//! interval, making shutdown graceful: stop flag, a self-connect to
//! unblock `accept`, join everything, stop every table's scheduler.
//!
//! Engine integration is deliberately thin: query execution calls the
//! executors' internal [`hyrise_core::begin_read`] counters (so served
//! reads feed the same [`hyrise_core::LoadView`] pressure signals the
//! merge schedulers poll), and inserts land in the same per-shard delta
//! counters the governor's write-rate classifier samples. The admission
//! gate is therefore reading the *same* signals the governor acts on —
//! one feedback loop, observed from both ends.

use crate::admission::{AdmissionGate, ReadAdmission, WriteAdmission};
use crate::catalog::{Catalog, CatalogError, TableEntry};
use crate::protocol::{
    read_frame, write_frame, Admission, Body, ErrorCode, FrameError, FrameEvent, Request, Response,
    ServerStatsBody, TableStatsBody, WireError, WireOutput,
};
use hyrise_query::{Action, Query};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Socket read timeout — the worker's stop-flag poll interval.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker pool size = max concurrently served connections (excess
    /// accepted connections wait in the hand-off queue).
    pub workers: usize,
    /// Admission valve knobs.
    pub admission: crate::admission::AdmissionConfig,
    /// Catalog knobs (data dir, per-table scheduler profile).
    pub catalog: crate::catalog::CatalogConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            admission: crate::admission::AdmissionConfig::default(),
            catalog: crate::catalog::CatalogConfig::default(),
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    catalog: Arc<Catalog>,
    gate: Arc<AdmissionGate>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The table catalog (in-process callers may inspect or seed it).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The admission gate (tests read its counters directly).
    pub fn gate(&self) -> &Arc<AdmissionGate> {
        &self.gate
    }

    /// Graceful shutdown: stop accepting, drain workers, stop every
    /// table's merge scheduler. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.catalog.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving.
pub fn start(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let catalog = Arc::new(Catalog::new(config.catalog.clone()));
    let gate = Arc::new(AdmissionGate::new(config.admission.clone()));

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let stop = Arc::clone(&stop);
            let catalog = Arc::clone(&catalog);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || loop {
                // Holding the receiver lock only for the recv keeps the
                // pool work-stealing: any idle worker takes the next
                // connection.
                let conn = {
                    let guard = rx.lock().unwrap();
                    guard.recv_timeout(IDLE_POLL)
                };
                match conn {
                    Ok(stream) => serve_connection(stream, &catalog, &gate, &stop),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            })
        })
        .collect();

    let accept = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(s) = stream {
                    // A send only fails after shutdown dropped the pool.
                    if tx.send(s).is_err() {
                        break;
                    }
                }
            }
        })
    };

    Ok(ServerHandle {
        addr: local,
        stop,
        accept: Some(accept),
        workers,
        catalog,
        gate,
    })
}

/// Serve one connection until it closes, errors, or the server stops.
/// Malformed payloads are answered with [`ErrorCode::Protocol`] and the
/// connection continues; only transport-level failures (torn or oversized
/// frames) end it — and even then the *worker* survives to take the next
/// connection.
fn serve_connection(
    mut stream: TcpStream,
    catalog: &Catalog,
    gate: &AdmissionGate,
    stop: &AtomicBool,
) {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let give_up = || stop.load(Ordering::Relaxed);
    loop {
        match read_frame(&mut stream, &give_up) {
            Ok(FrameEvent::Frame(payload)) => {
                let response = match Request::decode(&payload) {
                    Ok(req) => handle_request(catalog, gate, req),
                    Err(detail) => Response::err(ErrorCode::Protocol, detail),
                };
                if write_frame(&mut stream, &response.encode()).is_err() {
                    return;
                }
            }
            Ok(FrameEvent::Idle) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Ok(FrameEvent::Closed) => return,
            Err(FrameError::Oversized(n)) => {
                // Answer, then drop the connection: the unread payload
                // makes the stream unresumable.
                let resp = Response::err(
                    ErrorCode::Protocol,
                    format!("frame length {n} exceeds the cap"),
                );
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
            Err(FrameError::Torn) | Err(FrameError::Io(_)) => return,
        }
    }
}

fn catalog_error(e: CatalogError) -> Response {
    match e {
        CatalogError::AlreadyExists(n) => Response::err(
            ErrorCode::TableExists,
            format!("table '{n}' already exists"),
        ),
        CatalogError::NoSuchTable(n) => {
            Response::err(ErrorCode::NoSuchTable, format!("no such table '{n}'"))
        }
        CatalogError::InvalidSpec(d) => Response::err(ErrorCode::Config, d),
        CatalogError::Engine(e) => Response {
            admission: Admission::Admit,
            result: Err(WireError::from_engine(&e)),
        },
    }
}

/// Reject plans that would index out of the table's column space (the
/// executors index unchecked — by the time a plan runs it must be valid).
fn validate_plan(plan: &Query<u64>, columns: usize) -> Result<(), String> {
    for p in plan.predicates() {
        if p.col >= columns {
            return Err(format!(
                "predicate column {} out of range (table has {columns})",
                p.col
            ));
        }
    }
    match plan.action() {
        Action::Project(cols) => {
            for c in cols {
                if *c >= columns {
                    return Err(format!(
                        "projected column {c} out of range (table has {columns})"
                    ));
                }
            }
        }
        Action::Sum(c) | Action::MinMax(c) => {
            if *c >= columns {
                return Err(format!(
                    "aggregate column {c} out of range (table has {columns})"
                ));
            }
        }
        Action::Rows | Action::Count => {}
    }
    Ok(())
}

/// Gate a write against `entry`'s backlog and rates; `Ok` admits.
fn gate_write(gate: &AdmissionGate, entry: &TableEntry) -> Result<(), Response> {
    let backlog = entry.table().delta_len();
    let inserted = entry.inserted_rows();
    let merged = entry.scheduler().stats().tuples_merged;
    let mut window = entry.write_window().lock().unwrap();
    match gate.admit_write(&mut window, backlog, inserted, merged) {
        WriteAdmission::Admit => Ok(()),
        WriteAdmission::Throttle { retry_after } => {
            let retry_after_ms = retry_after.as_millis().min(u32::MAX as u128) as u32;
            Err(Response {
                admission: Admission::Throttled { retry_after_ms },
                result: Err(WireError::new(
                    ErrorCode::Throttled,
                    "insert rate exceeds merge drain rate; back off and retry",
                )),
            })
        }
    }
}

/// Dispatch one decoded request. Never panics on untrusted input: every
/// table lookup, width check and plan bound is validated before the
/// engine sees it.
pub(crate) fn handle_request(catalog: &Catalog, gate: &AdmissionGate, req: Request) -> Response {
    match req {
        Request::Ping => Response::ok(Body::Pong),
        Request::CreateTable(spec) => match catalog.create(&spec) {
            Ok(()) => Response::ok(Body::Unit),
            Err(e) => catalog_error(e),
        },
        Request::DropTable { name } => match catalog.drop_table(&name) {
            Ok(()) => Response::ok(Body::Unit),
            Err(e) => catalog_error(e),
        },
        Request::ListTables => Response::ok(Body::Tables(catalog.list())),
        Request::Insert { table, rows } => {
            let entry = match catalog.get(&table) {
                Ok(e) => e,
                Err(e) => return catalog_error(e),
            };
            let columns = entry.table().num_columns();
            if let Some(bad) = rows.iter().position(|r| r.len() != columns) {
                return Response::err(
                    ErrorCode::Config,
                    format!(
                        "row {bad} has {} values, table has {columns} columns",
                        rows[bad].len()
                    ),
                );
            }
            if let Err(resp) = gate_write(gate, &entry) {
                return resp;
            }
            match entry.table().insert_rows(&rows) {
                Ok(ids) => Response::ok(Body::RowIds(ids.into_iter().map(Into::into).collect())),
                Err(e) => Response {
                    admission: Admission::Admit,
                    result: Err(WireError::from_engine(&e)),
                },
            }
        }
        Request::Delete { table, ids } => {
            let entry = match catalog.get(&table) {
                Ok(e) => e,
                Err(e) => return catalog_error(e),
            };
            if let Err(resp) = gate_write(gate, &entry) {
                return resp;
            }
            let t = entry.table();
            for id in &ids {
                let shard = id.shard as usize;
                if shard >= t.num_shards() || id.row as usize >= t.shard(shard).row_count() {
                    return Response::err(
                        ErrorCode::Config,
                        format!("row id {}/{} out of range", id.shard, id.row),
                    );
                }
                if let Err(e) = t.try_delete_row((*id).into()) {
                    return Response {
                        admission: Admission::Admit,
                        result: Err(WireError::from_engine(&e)),
                    };
                }
            }
            Response::ok(Body::Unit)
        }
        Request::Query { table, plan } => {
            let entry = match catalog.get(&table) {
                Ok(e) => e,
                Err(e) => return catalog_error(e),
            };
            if let Err(detail) = validate_plan(&plan, entry.table().num_columns()) {
                return Response::err(ErrorCode::Config, detail);
            }
            let t = Arc::clone(entry.table());
            match gate.admit_read(
                || t.memory_report().total(),
                || catalog.pool().queue_depth(),
            ) {
                ReadAdmission::Shed => Response {
                    admission: Admission::Shed,
                    result: Err(WireError::new(
                        ErrorCode::Shed,
                        "read shed under memory pressure; retry later",
                    )),
                },
                ReadAdmission::Admit { waited, queued } => {
                    // The executor takes its own `begin_read` guard, so
                    // this query is visible to the governor's read-load
                    // signal for its whole execution.
                    let out = plan.run(t.as_ref());
                    let admission = if queued {
                        Admission::Queued {
                            waited_ms: waited.as_millis().min(u32::MAX as u128) as u32,
                        }
                    } else {
                        Admission::Admit
                    };
                    Response {
                        admission,
                        result: Ok(Body::Output(WireOutput::from_output(out))),
                    }
                }
            }
        }
        Request::TableStats { table } => {
            let entry = match catalog.get(&table) {
                Ok(e) => e,
                Err(e) => return catalog_error(e),
            };
            let t = entry.table();
            let stats = entry.scheduler().stats();
            Response::ok(Body::TableStats(TableStatsBody {
                columns: t.num_columns() as u64,
                rows: t.row_count() as u64,
                valid_rows: t.valid_row_count() as u64,
                delta_rows: t.delta_len() as u64,
                merges: stats.merges,
                tuples_merged: stats.tuples_merged,
                memory_bytes: t.memory_report().total() as u64,
            }))
        }
        Request::ServerStats => {
            let s = gate.stats();
            Response::ok(Body::ServerStats(ServerStatsBody {
                admitted_reads: s.admitted_reads,
                queued_reads: s.queued_reads,
                shed_reads: s.shed_reads,
                admitted_writes: s.admitted_writes,
                throttled_writes: s.throttled_writes,
                reads_in_flight: hyrise_core::read_load().in_flight(),
                open_tables: catalog.len() as u64,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::catalog::CatalogConfig;
    use crate::protocol::TableSpec;

    fn fixture() -> (Catalog, AdmissionGate) {
        (
            Catalog::new(CatalogConfig::default()),
            AdmissionGate::new(AdmissionConfig::default()),
        )
    }

    #[test]
    fn dispatch_covers_the_happy_path() {
        let (catalog, gate) = fixture();
        let r = handle_request(&catalog, &gate, Request::Ping);
        assert_eq!(r.result, Ok(Body::Pong));
        let r = handle_request(
            &catalog,
            &gate,
            Request::CreateTable(TableSpec::volatile("t", 2, 2)),
        );
        assert_eq!(r.result, Ok(Body::Unit));
        let r = handle_request(
            &catalog,
            &gate,
            Request::Insert {
                table: "t".into(),
                rows: vec![vec![1, 10], vec![2, 20], vec![1, 30]],
            },
        );
        let ids = match r.result {
            Ok(Body::RowIds(ids)) => ids,
            other => panic!("{other:?}"),
        };
        assert_eq!(ids.len(), 3);
        let r = handle_request(
            &catalog,
            &gate,
            Request::Query {
                table: "t".into(),
                plan: Query::scan(0).eq(1).count(),
            },
        );
        assert_eq!(r.result, Ok(Body::Output(WireOutput::Count(2))));
        let r = handle_request(
            &catalog,
            &gate,
            Request::Delete {
                table: "t".into(),
                ids: vec![ids[0]],
            },
        );
        assert_eq!(r.result, Ok(Body::Unit));
        let r = handle_request(
            &catalog,
            &gate,
            Request::Query {
                table: "t".into(),
                plan: Query::scan(0).eq(1).count(),
            },
        );
        assert_eq!(r.result, Ok(Body::Output(WireOutput::Count(1))));
    }

    #[test]
    fn dispatch_rejects_bad_inputs_with_typed_errors() {
        let (catalog, gate) = fixture();
        let r = handle_request(
            &catalog,
            &gate,
            Request::Query {
                table: "ghost".into(),
                plan: Query::scan(0).count(),
            },
        );
        assert!(matches!(r.result, Err(ref e) if e.code == ErrorCode::NoSuchTable));

        handle_request(
            &catalog,
            &gate,
            Request::CreateTable(TableSpec::volatile("t", 2, 1)),
        );
        // Wrong row width.
        let r = handle_request(
            &catalog,
            &gate,
            Request::Insert {
                table: "t".into(),
                rows: vec![vec![1, 2, 3]],
            },
        );
        assert!(matches!(r.result, Err(ref e) if e.code == ErrorCode::Config));
        // Out-of-range plan column.
        let r = handle_request(
            &catalog,
            &gate,
            Request::Query {
                table: "t".into(),
                plan: Query::scan(9).eq(1).count(),
            },
        );
        assert!(matches!(r.result, Err(ref e) if e.code == ErrorCode::Config));
        // Out-of-range delete id.
        let r = handle_request(
            &catalog,
            &gate,
            Request::Delete {
                table: "t".into(),
                ids: vec![crate::protocol::WireRowId { shard: 7, row: 0 }],
            },
        );
        assert!(matches!(r.result, Err(ref e) if e.code == ErrorCode::Config));
    }
}

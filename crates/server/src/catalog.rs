//! The multi-tenant table catalog: named durable-or-volatile
//! [`ShardedTable`]s, each with its own governed merge scheduler.
//!
//! Every entry owns the full per-table machinery: the table itself (built
//! through the PR-7 `ShardedTableBuilder` so durability is just a spec
//! flag), a [`ShardedScheduler`] merging its shards under a
//! [`ResourceGovernor`], and the [`RateWindow`] the admission gate samples
//! its write valve from. Creating a table spawns the scheduler; dropping
//! it (or shutting the catalog down) stops the scheduler before the entry
//! is released. Durable tables live under `data_dir/<name>/`; dropping
//! one leaves its files on disk, so a later server can
//! [`hyrise_core::recover_sharded`] it.

use crate::admission::RateWindow;
use crate::protocol::TableSpec;
use hyrise_core::{
    Durability, GovernorConfig, MergePolicy, Pool, ResourceGovernor, ShardedScheduler, ShardedTable,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a catalog operation failed.
#[derive(Debug)]
pub enum CatalogError {
    /// `create` for a name already present.
    AlreadyExists(String),
    /// Lookup / drop of a name not present.
    NoSuchTable(String),
    /// The spec is invalid (bad name, zero columns/shards, durable table
    /// on a server without a data directory).
    InvalidSpec(String),
    /// The engine failed underneath (I/O on a durable create, …).
    Engine(hyrise_core::Error),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::AlreadyExists(n) => write!(f, "table '{n}' already exists"),
            CatalogError::NoSuchTable(n) => write!(f, "no such table '{n}'"),
            CatalogError::InvalidSpec(d) => write!(f, "invalid table spec: {d}"),
            CatalogError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<hyrise_core::Error> for CatalogError {
    fn from(e: hyrise_core::Error) -> Self {
        CatalogError::Engine(e)
    }
}

/// Catalog-wide knobs, shared by every table it creates.
#[derive(Clone, Debug)]
pub struct CatalogConfig {
    /// Root directory for durable tables (`<data_dir>/<name>/`). `None`
    /// makes durable specs an [`CatalogError::InvalidSpec`].
    pub data_dir: Option<PathBuf>,
    /// Concurrent shard merges each table's scheduler may run.
    pub max_concurrent_merges: usize,
    /// Scheduler poll interval.
    pub scheduler_poll: Duration,
    /// Governor profile cloned into every table's scheduler.
    pub governor: GovernorConfig,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            data_dir: None,
            max_concurrent_merges: 2,
            scheduler_poll: Duration::from_millis(2),
            governor: GovernorConfig::from_policy(MergePolicy {
                delta_fraction: 0.02,
                ..MergePolicy::default()
            }),
        }
    }
}

/// One catalog entry: table + scheduler + the write valve's rate window.
pub struct TableEntry {
    scheduler: ShardedScheduler<u64>,
    spec: TableSpec,
    write_window: Mutex<RateWindow>,
}

impl TableEntry {
    /// The table.
    pub fn table(&self) -> &Arc<ShardedTable<u64>> {
        self.scheduler.table()
    }

    /// The table's merge scheduler.
    pub fn scheduler(&self) -> &ShardedScheduler<u64> {
        &self.scheduler
    }

    /// The spec the table was created from.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// The write valve's sampling window (the admission gate locks it per
    /// write batch).
    pub fn write_window(&self) -> &Mutex<RateWindow> {
        &self.write_window
    }

    /// Cumulative rows ever inserted, across shards.
    pub fn inserted_rows(&self) -> u64 {
        self.table().inserted_per_shard().iter().sum()
    }
}

/// Validate a table name: it doubles as a directory name for durable
/// tables, so only `[A-Za-z0-9_-]` up to 64 bytes is accepted.
fn validate_name(name: &str) -> Result<(), CatalogError> {
    if name.is_empty() || name.len() > 64 {
        return Err(CatalogError::InvalidSpec(format!(
            "table name must be 1..=64 bytes, got {}",
            name.len()
        )));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return Err(CatalogError::InvalidSpec(format!(
            "table name '{name}' may only contain [A-Za-z0-9_-]"
        )));
    }
    Ok(())
}

/// The named-table registry. It also owns the server's handle to the
/// process-wide query [`Pool`]: creating the catalog brings the pool up,
/// and the admission gate samples its queue depth through
/// [`Catalog::pool`].
pub struct Catalog {
    cfg: CatalogConfig,
    pool: &'static Pool,
    tables: Mutex<HashMap<String, Arc<TableEntry>>>,
}

impl Catalog {
    /// An empty catalog. Eagerly initializes the shared worker pool so the
    /// first query does not pay thread creation and the queue-depth load
    /// signal is live from the start.
    pub fn new(cfg: CatalogConfig) -> Self {
        Self {
            cfg,
            pool: Pool::global_for_queries(),
            tables: Mutex::new(HashMap::new()),
        }
    }

    /// The shared worker pool every query executes on — the admission
    /// gate's queue-depth signal source.
    pub fn pool(&self) -> &'static Pool {
        self.pool
    }

    /// Create a table per `spec` and spawn its governed scheduler.
    pub fn create(&self, spec: &TableSpec) -> Result<(), CatalogError> {
        validate_name(&spec.name)?;
        if spec.columns == 0 {
            return Err(CatalogError::InvalidSpec("columns must be > 0".into()));
        }
        if spec.shards == 0 {
            return Err(CatalogError::InvalidSpec("shards must be > 0".into()));
        }
        let durability = if spec.durable {
            let root = self.cfg.data_dir.as_ref().ok_or_else(|| {
                CatalogError::InvalidSpec(
                    "durable table requested but the server has no data directory".into(),
                )
            })?;
            Durability::Wal {
                dir: root.join(&spec.name),
                fsync: spec.fsync,
            }
        } else {
            Durability::None
        };

        let mut tables = self.tables.lock().unwrap();
        if tables.contains_key(&spec.name) {
            return Err(CatalogError::AlreadyExists(spec.name.clone()));
        }
        let table = ShardedTable::<u64>::builder()
            .shards(spec.shards as usize)
            .columns(spec.columns as usize)
            .durability(durability)
            .governor(self.cfg.governor.clone())
            .build()?;
        let scheduler = ShardedScheduler::spawn_governed(
            Arc::new(table),
            ResourceGovernor::new(self.cfg.governor.clone()),
            self.cfg.max_concurrent_merges,
            self.cfg.scheduler_poll,
        );
        tables.insert(
            spec.name.clone(),
            Arc::new(TableEntry {
                scheduler,
                spec: spec.clone(),
                write_window: Mutex::new(RateWindow::new()),
            }),
        );
        Ok(())
    }

    /// Remove a table and stop its scheduler. In-flight requests holding
    /// the entry's `Arc` finish against the detached table; durable files
    /// stay on disk for a later recovery.
    pub fn drop_table(&self, name: &str) -> Result<(), CatalogError> {
        let entry = self
            .tables
            .lock()
            .unwrap()
            .remove(name)
            .ok_or_else(|| CatalogError::NoSuchTable(name.to_string()))?;
        entry.scheduler.shutdown();
        Ok(())
    }

    /// Look a table up.
    pub fn get(&self, name: &str) -> Result<Arc<TableEntry>, CatalogError> {
        self.tables
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| CatalogError::NoSuchTable(name.to_string()))
    }

    /// Sorted table names.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.lock().unwrap().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop every table's scheduler (server shutdown path).
    pub fn shutdown(&self) {
        let entries: Vec<Arc<TableEntry>> = self.tables.lock().unwrap().values().cloned().collect();
        for e in entries {
            e.scheduler.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_drop_lifecycle() {
        let cat = Catalog::new(CatalogConfig::default());
        cat.create(&TableSpec::volatile("orders", 3, 2)).unwrap();
        assert!(matches!(
            cat.create(&TableSpec::volatile("orders", 3, 2)),
            Err(CatalogError::AlreadyExists(_))
        ));
        let entry = cat.get("orders").unwrap();
        assert_eq!(entry.table().num_columns(), 3);
        assert_eq!(entry.table().num_shards(), 2);
        entry.table().insert_rows(&[[1u64, 2, 3]]).unwrap();
        assert_eq!(cat.list(), vec!["orders".to_string()]);
        cat.drop_table("orders").unwrap();
        assert!(matches!(
            cat.get("orders"),
            Err(CatalogError::NoSuchTable(_))
        ));
        assert!(matches!(
            cat.drop_table("orders"),
            Err(CatalogError::NoSuchTable(_))
        ));
    }

    #[test]
    fn bad_specs_are_rejected() {
        let cat = Catalog::new(CatalogConfig::default());
        for bad in ["", "a/b", "x y", "../evil", &"n".repeat(65)] {
            assert!(
                matches!(
                    cat.create(&TableSpec::volatile(bad, 1, 1)),
                    Err(CatalogError::InvalidSpec(_))
                ),
                "name {bad:?} should be rejected"
            );
        }
        assert!(matches!(
            cat.create(&TableSpec::volatile("t", 0, 1)),
            Err(CatalogError::InvalidSpec(_))
        ));
        assert!(matches!(
            cat.create(&TableSpec::volatile("t", 1, 0)),
            Err(CatalogError::InvalidSpec(_))
        ));
        // Durable without a data dir.
        assert!(matches!(
            cat.create(&TableSpec::durable("t", 1, 1, false)),
            Err(CatalogError::InvalidSpec(_))
        ));
    }

    #[test]
    fn durable_table_writes_under_data_dir() {
        let dir = std::env::temp_dir().join(format!("hyrise-catalog-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cat = Catalog::new(CatalogConfig {
            data_dir: Some(dir.clone()),
            ..CatalogConfig::default()
        });
        cat.create(&TableSpec::durable("sales", 2, 2, false))
            .unwrap();
        let entry = cat.get("sales").unwrap();
        entry.table().insert_rows(&[[7u64, 8], [9, 10]]).unwrap();
        assert!(
            dir.join("sales").is_dir(),
            "durable files under data_dir/name"
        );
        cat.drop_table("sales").unwrap();
        assert!(dir.join("sales").is_dir(), "drop keeps files for recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

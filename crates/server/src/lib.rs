//! The network front-end: a servable front door for the engine.
//!
//! Everything below this crate is a library embedded in one process; this
//! crate makes it a *service* — the gap between reproducing the paper's
//! single-process evaluation and the ROADMAP's "system heavy traffic
//! could hit". Five pieces:
//!
//! * [`protocol`] — the dependency-free wire format: length-prefixed
//!   binary frames carrying the query-builder surface (scan / eq /
//!   between / and, project / sum / min_max / count), batched inserts and
//!   deletes, and catalog management; every response stamped with the
//!   admission decision.
//! * [`catalog`] — the multi-tenant registry of named tables, each
//!   durable or volatile (the PR-7 builder surface underneath) with its
//!   own governed merge scheduler.
//! * [`admission`] — the [`admission::AdmissionGate`]: reads shed or
//!   queue under memory pressure, writes throttle when the sustained
//!   insert rate outruns the merge drain rate (the paper's Equation 1
//!   race, enforced at the front door). Decisions are pure functions;
//!   the gate only adds counters and a bounded queue.
//! * [`server`] — `std::net` TCP: one accept thread, a sized worker
//!   pool, graceful shutdown; served reads and writes feed the same
//!   governor counters the merge schedulers poll.
//! * [`client`] / [`swarm`] — the connection-reusing [`client::Client`]
//!   with typed errors, and [`swarm::drive_swarm`]: N client threads
//!   replaying the Section 2 enterprise mix against a live server.
//!
//! ```
//! use hyrise_server::client::Client;
//! use hyrise_server::protocol::TableSpec;
//! use hyrise_server::server::{start, ServerConfig};
//! use hyrise_query::Query;
//!
//! let mut srv = start("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut c = Client::connect(srv.addr()).unwrap();
//! c.create_table(&TableSpec::volatile("t", 2, 2)).unwrap();
//! c.insert("t", &[vec![1, 10], vec![2, 20], vec![1, 30]]).unwrap();
//! let out = c.query("t", &Query::scan(0).eq(1).count()).unwrap();
//! assert_eq!(out.count(), Some(2));
//! srv.shutdown();
//! ```

pub mod admission;
pub mod catalog;
pub mod client;
pub mod protocol;
pub mod server;
pub mod swarm;

pub use admission::{AdmissionConfig, AdmissionGate, AdmissionStats};
pub use catalog::{Catalog, CatalogConfig, CatalogError, TableEntry};
pub use client::{Client, ClientError, ClientResult};
pub use protocol::{Admission, ErrorCode, Request, Response, TableSpec, WireOutput, WireRowId};
pub use server::{start, ServerConfig, ServerHandle};
pub use swarm::{drive_swarm, SwarmReport};

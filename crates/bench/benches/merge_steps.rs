//! Criterion: full column merges — naive vs optimized vs parallel (the
//! micro-scale backing of Figure 7).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bench::build_column;
use hyrise_core::{merge_column_naive, merge_column_optimized, parallel::merge_column_parallel};

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_column");
    g.sample_size(10);
    let n_m = 1_000_000usize;
    let n_d = 50_000usize;
    for lambda in [0.01f64, 0.5] {
        let (main, delta) = build_column::<u64>(n_m, n_d, lambda, lambda, 11);
        g.throughput(Throughput::Elements((n_m + n_d) as u64));
        let label = format!("lambda{}", (lambda * 100.0) as u32);
        g.bench_with_input(BenchmarkId::new("naive_1t", &label), &(), |b, _| {
            b.iter(|| black_box(merge_column_naive(&main, &delta, 1)).main.len())
        });
        g.bench_with_input(BenchmarkId::new("optimized_1t", &label), &(), |b, _| {
            b.iter(|| black_box(merge_column_optimized(&main, &delta)).main.len())
        });
        for threads in [4usize, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("parallel_{threads}t"), &label),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        black_box(merge_column_parallel(&main, &delta, threads))
                            .main
                            .len()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);

//! Criterion: the `T_U` path — delta inserts across value widths and
//! duplicate ratios (the "Update Delta" bars of Figures 7/8).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bench::delta_values;
use hyrise_storage::{DeltaPartition, Value, V16};

fn bench_insert<V: Value>(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    lambda: f64,
) {
    let n = 100_000usize;
    let vals: Vec<V> = delta_values(n, lambda, 0, 13);
    g.throughput(Throughput::Elements(n as u64));
    let label = format!("{}B/lambda{}", V::BYTES, (lambda * 100.0) as u32);
    g.bench_with_input(BenchmarkId::new("insert", label), &vals, |b, vals| {
        b.iter(|| {
            let mut d = DeltaPartition::new();
            for v in vals {
                d.insert(*v);
            }
            black_box(d.unique_len())
        })
    });
}

fn bench_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta_insert");
    g.sample_size(15);
    for lambda in [0.01f64, 1.0] {
        bench_insert::<u32>(&mut g, lambda);
        bench_insert::<u64>(&mut g, lambda);
        bench_insert::<V16>(&mut g, lambda);
    }
    g.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);

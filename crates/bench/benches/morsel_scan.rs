//! Criterion: morsel-driven parallel query execution vs the serial engine
//! (the ISSUE-10 tentpole). Three shapes at 1M rows — an eq scan, a fused
//! 2-column conjunction, and the predicate-free sum — each as `serial`
//! (no hint: the inline path that never touches the pool) and `poolN`
//! (`with_threads(N)`: morsels claimed by the shared worker pool).
//!
//! Every pool timing is preceded by an equivalence assert against the
//! serial output, so the gate can never reward a wrong parallel combine.
//!
//! Interpreting the numbers: on the 1-core CI container the pool adds a
//! helper task on the caller's only core, so `poolN` gates *parity plus
//! bounded scheduling overhead*, not speedup — `pool1` in particular is
//! the serial code path and must track `serial` within noise. Speedup
//! only appears on multi-core hosts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_core::OnlineTable;
use hyrise_query::Query;

const N: usize = 1_000_000;
const COLS: usize = 2;

/// 1M deterministic rows (xorshift64): col 0 in a ~1000-value domain so
/// predicates are selective, col 1 wide for the sum.
fn table() -> OnlineTable<u64> {
    let t = OnlineTable::new(COLS);
    let mut x = 0x5EED_0F3A_7B1C_55AAu64;
    for _ in 0..N {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t.insert_row(&[x % 1009, x % 65_537]);
    }
    let _ = t.merge(1, None);
    // A short raw tail on top of the merged main, like a live table.
    let mut y = 0xDEC0DEu64;
    for _ in 0..4096 {
        y ^= y << 13;
        y ^= y >> 7;
        y ^= y << 17;
        t.insert_row(&[y % 1009, y % 65_537]);
    }
    t
}

fn bench_morsel_scan(c: &mut Criterion) {
    let t = table();
    let snap = t.snapshot();
    let mut g = c.benchmark_group("morsel_scan");
    g.sample_size(15);
    g.throughput(Throughput::Elements(N as u64));

    let shapes: Vec<(&str, Query<u64>)> = vec![
        ("eq", Query::scan(0).eq(500)),
        (
            "fused",
            Query::scan(0).between(100, 600).and(1).between(0, 40_000),
        ),
        ("sum", Query::scan(0).sum(1)),
    ];
    for (name, q) in shapes {
        let serial = q.run(&snap);
        for hint in [1usize, 2, 4] {
            // The gate must never reward a wrong parallel combine.
            assert_eq!(
                q.clone().with_threads(hint).run(&snap),
                serial,
                "{name} diverges at hint {hint}"
            );
        }
        g.bench_with_input(BenchmarkId::new(name, "serial"), &q, |b, q| {
            b.iter(|| black_box(q.run(&snap)))
        });
        for hint in [1usize, 2, 4] {
            let hq = q.clone().with_threads(hint);
            g.bench_with_input(
                BenchmarkId::new(name, format!("pool{hint}")),
                &hq,
                |b, q| b.iter(|| black_box(q.run(&snap))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_morsel_scan);
criterion_main!(benches);

//! Criterion: end-to-end wire-protocol throughput — an in-process
//! `hyrise-server` with N swarm clients replaying the Section 2 OLTP mix
//! over real TCP connections. This is the whole network stack on the
//! clock: framing, plan serialization, admission gating, catalog
//! dispatch, the engine underneath, and the merge schedulers running
//! live while the swarm drives.
//!
//! Server startup and table preload run outside the timed region
//! (`iter_custom` times only the swarm phase), and each round gets a
//! fresh table so delta growth from previous rounds cannot skew later
//! samples. The per-iteration number is therefore "wall time for
//! `clients × ops` mixed operations through the full service path".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_server::protocol::TableSpec;
use hyrise_server::server::{start, ServerConfig};
use hyrise_server::swarm::drive_swarm;
use hyrise_workload::SwarmWorkload;
use std::time::Duration;

const OPS_PER_CLIENT: usize = 300;
const INITIAL_ROWS: u64 = 4_000;

fn bench_client_swarm(c: &mut Criterion) {
    let mut g = c.benchmark_group("client_swarm");
    g.sample_size(10);

    for clients in [1usize, 4, 8] {
        let mut srv = start(
            "127.0.0.1:0",
            ServerConfig {
                // Each swarm client plus the preload connection holds a
                // worker for its lifetime.
                workers: clients + 2,
                ..ServerConfig::default()
            },
        )
        .expect("server start");
        let addr = srv.addr().to_string();

        g.throughput(Throughput::Elements((clients * OPS_PER_CLIENT) as u64));
        g.bench_function(BenchmarkId::new("oltp", clients), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for round in 0..iters {
                    let table = format!("swarm-{clients}-{round}");
                    let mut admin = hyrise_server::Client::connect(&addr).expect("connect");
                    admin
                        .create_table(&TableSpec::volatile(&table, 3, 2))
                        .expect("create");
                    let workload = SwarmWorkload::oltp(clients)
                        .with_volumes(INITIAL_ROWS, OPS_PER_CLIENT)
                        .with_insert_batch(8)
                        .with_seed(0xBEEF + round);
                    // drive_swarm preloads (untimed work happens inside,
                    // but it is the same for every round) — time only the
                    // swarm phase it reports.
                    let report = black_box(drive_swarm(&addr, &table, &workload).expect("swarm"));
                    total += report.elapsed;
                    admin.drop_table(&table).expect("drop");
                }
                total
            })
        });
        srv.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_client_swarm);
criterion_main!(benches);

//! Criterion: bit-packed vector primitives (the Step 2 inner loop's storage).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bitpack::BitPackedVec;

fn bench_pack_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitpack");
    g.sample_size(20);
    let n = 1_000_000usize;
    for bits in [8u8, 13, 20, 27] {
        let mask = hyrise_bitpack::max_value_for_bits(bits);
        let data: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) & mask)
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("push", bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut v = BitPackedVec::with_capacity(bits, n);
                for &x in &data {
                    v.push(x);
                }
                black_box(v.len())
            })
        });
        let packed = BitPackedVec::from_slice(bits, &data);
        g.bench_with_input(
            BenchmarkId::new("sequential_decode", bits),
            &packed,
            |b, packed| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for x in packed.iter() {
                        acc = acc.wrapping_add(x);
                    }
                    black_box(acc)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("random_get", bits),
            &packed,
            |b, packed| {
                b.iter(|| {
                    let mut acc = 0u64;
                    let mut idx = 12345usize;
                    for _ in 0..10_000 {
                        idx = (idx.wrapping_mul(1103515245).wrapping_add(12345)) % n;
                        acc = acc.wrapping_add(packed.get(idx));
                    }
                    black_box(acc)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_pack_unpack);
criterion_main!(benches);

//! Criterion: read operators vs delta size (the Section 4 read-overhead
//! trade-off at micro scale; the full sweep is `ablation_read_overhead`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bench::{build_column, delta_values};
use hyrise_query::Query;
use hyrise_storage::Attribute;

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    g.sample_size(15);
    let n_m = 1_000_000usize;
    let lambda = 0.01f64;
    let (main, _) = build_column::<u64>(n_m, 1, lambda, lambda, 19);
    let probe = main
        .dictionary()
        .value_at((main.dictionary().len() / 2) as u32);
    let lo = main.dictionary().value_at(10);
    let hi = main.dictionary().value_at(60);

    for delta_pct in [0usize, 2, 8] {
        let n_d = n_m * delta_pct / 100;
        let mut attr = Attribute::from_main(main.clone());
        for v in delta_values::<u64>(n_d.max(1), lambda, main.dictionary().len(), 23) {
            if delta_pct > 0 {
                attr.append(v);
            }
        }
        g.throughput(Throughput::Elements((attr.len()) as u64));
        let eq = Query::scan(0).eq(probe);
        g.bench_with_input(BenchmarkId::new("scan_eq", delta_pct), &attr, |b, attr| {
            b.iter(|| black_box(eq.run(attr).into_rows()).len())
        });
        let range = Query::scan(0).between(lo, hi);
        g.bench_with_input(
            BenchmarkId::new("scan_range", delta_pct),
            &attr,
            |b, attr| b.iter(|| black_box(range.run(attr).into_rows()).len()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);

//! Criterion: CSB+ tree insert, lookup and the Step-1(a) leaf traversal.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_csb::CsbTree;

fn keys(n: usize, domain: u64) -> Vec<u64> {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % domain
        })
        .collect()
}

fn bench_csb(c: &mut Criterion) {
    let mut g = c.benchmark_group("csb_tree");
    g.sample_size(15);
    let n = 200_000usize;
    for (label, domain) in [("unique-heavy", u64::MAX), ("duplicate-heavy", 10_000)] {
        let data = keys(n, domain);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("insert", label), &data, |b, data| {
            b.iter(|| {
                let mut t = CsbTree::new();
                for (i, &k) in data.iter().enumerate() {
                    t.insert(k, i as u32);
                }
                black_box(t.unique_len())
            })
        });
        let mut tree = CsbTree::new();
        for (i, &k) in data.iter().enumerate() {
            tree.insert(k, i as u32);
        }
        g.bench_with_input(BenchmarkId::new("lookup", label), &data, |b, data| {
            b.iter(|| {
                let mut hits = 0usize;
                for k in data.iter().take(10_000) {
                    if tree.contains_key(k) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        g.bench_with_input(
            BenchmarkId::new("leaf_traversal_step1a", label),
            &tree,
            |b, tree| {
                b.iter(|| {
                    // The merge Step 1(a) access path: in-order keys + postings.
                    let mut acc = 0u64;
                    for (k, postings) in tree.iter() {
                        acc = acc.wrapping_add(k).wrapping_add(postings.count() as u64);
                    }
                    black_box(acc)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_csb);
criterion_main!(benches);

//! Criterion: dictionary value-id pushdown vs naive decode scan.
//!
//! The unified `Query` engine rewrites equality/range predicates into
//! dictionary value-id ranges and scans the bit-packed main partition in
//! code space (`value_id` series); the `decode` series is the strawman the
//! paper argues against — materialize every tuple through the dictionary
//! and compare values. Both run over 1M main rows (lambda = 1%) with a
//! 0/2/8% uncompressed delta tail, the range selecting ~5% of the
//! dictionary. The pushdown win is the whole point of scanning compressed
//! data (Section 3); the delta sweep shows the value-comparison fallback's
//! growing share.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bench::{build_column, delta_values};
use hyrise_query::Query;
use hyrise_storage::Attribute;

/// The naive path: decode every tuple (code -> dictionary -> value on
/// main, raw value on delta) and compare in value space.
fn naive_decode_scan(attr: &Attribute<u64>, lo: u64, hi: u64) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..attr.len() {
        let v = attr.get(i);
        if v >= lo && v <= hi {
            out.push(i);
        }
    }
    out
}

fn bench_query_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_engine");
    g.sample_size(15);
    let n_m = 1_000_000usize;
    let lambda = 0.01f64;
    let (main, _) = build_column::<u64>(n_m, 1, lambda, lambda, 19);
    let u_m = main.dictionary().len();
    let lo = main.dictionary().value_at((u_m / 3) as u32);
    let hi = main.dictionary().value_at((u_m / 3 + u_m / 20) as u32);

    for delta_pct in [0usize, 2, 8] {
        let n_d = n_m * delta_pct / 100;
        let mut attr = Attribute::from_main(main.clone());
        for v in delta_values::<u64>(n_d.max(1), lambda, u_m, 23) {
            if delta_pct > 0 {
                attr.append(v);
            }
        }
        g.throughput(Throughput::Elements(attr.len() as u64));
        let q = Query::scan(0).between(lo, hi);
        g.bench_with_input(BenchmarkId::new("value_id", delta_pct), &attr, |b, attr| {
            b.iter(|| black_box(q.run(attr).into_rows()).len())
        });
        g.bench_with_input(BenchmarkId::new("decode", delta_pct), &attr, |b, attr| {
            b.iter(|| black_box(naive_decode_scan(attr, lo, hi)).len())
        });
    }

    // Both paths must agree — a bench that silently diverges measures
    // nothing.
    let q = Query::scan(0).between(lo, hi);
    let mut attr = Attribute::from_main(main);
    for v in delta_values::<u64>(10_000, lambda, u_m, 23) {
        attr.append(v);
    }
    assert_eq!(q.run(&attr).into_rows(), naive_decode_scan(&attr, lo, hi));
    g.finish();
}

criterion_group!(benches, bench_query_engine);
criterion_main!(benches);

//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Auxiliary-table entry width** — the paper's model charges auxiliary
//!    entries at `E'_C` bits (Eqs. 9/10); this implementation stores them as
//!    plain `u32`. Packed entries shrink the table (better cache residency at
//!    the Figure-9 cliff) but add an unpack to every Step-2 lookup. This
//!    ablation measures both variants of Step 2.
//! 2. **Step 1(a) parallelization scheme** — scheme (i) task-queues whole
//!    columns; scheme (ii) parallelizes the code scatter within one column
//!    (Section 6.2.1 implements both and reports (i)).
//! 3. **Three-phase dictionary merge thread sweep** — the cost of the
//!    "twice as many comparisons" overhead vs thread count.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bench::build_column;
use hyrise_bitpack::{bits_for, BitPackedVec};
use hyrise_core::merge_dictionaries;
use hyrise_core::parallel::{compress_delta_parallel_exact, merge_dictionaries_parallel_exact};
use hyrise_storage::{DeltaPartition, MainPartition};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Step 2 with plain `u32` auxiliary tables (the shipped implementation).
fn step2_u32_aux(main: &MainPartition<u64>, x_m: &[u32], bits_after: u8) -> BitPackedVec {
    let mut out = BitPackedVec::zeroed(bits_after, main.len());
    let mut regions = out.split_mut(1).into_regions();
    let region = regions.first_mut().expect("non-empty");
    let mut cur = main.packed_codes().cursor_at(0);
    region.fill_sequential(|_| x_m[cur.next_value() as usize] as u64);
    drop(regions);
    out
}

/// Step 2 with the auxiliary table bit-packed at `E'_C` bits (the paper's
/// accounting): 4x smaller aux for 20-bit codes, one extra unpack per tuple.
fn step2_packed_aux(
    main: &MainPartition<u64>,
    x_m_packed: &BitPackedVec,
    bits_after: u8,
) -> BitPackedVec {
    let mut out = BitPackedVec::zeroed(bits_after, main.len());
    let mut regions = out.split_mut(1).into_regions();
    let region = regions.first_mut().expect("non-empty");
    let mut cur = main.packed_codes().cursor_at(0);
    region.fill_sequential(|_| x_m_packed.get(cur.next_value() as usize));
    drop(regions);
    out
}

fn bench_aux_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_aux_width");
    g.sample_size(10);
    let n_m = 2_000_000usize;
    for lambda in [0.05f64, 0.5] {
        let (main, delta) = build_column::<u64>(n_m, n_m / 20, lambda, lambda, 41);
        let compressed = delta.compress();
        let dm = merge_dictionaries(main.dictionary().values(), &compressed.dict);
        let bits_after = bits_for(dm.merged.len());
        let packed: BitPackedVec = BitPackedVec::from_slice(
            bits_after,
            &dm.x_m.iter().map(|x| *x as u64).collect::<Vec<_>>(),
        );
        let label = format!("lambda{}", (lambda * 100.0) as u32);
        g.throughput(Throughput::Elements(n_m as u64));
        g.bench_with_input(BenchmarkId::new("u32_aux", &label), &(), |b, _| {
            b.iter(|| black_box(step2_u32_aux(&main, &dm.x_m, bits_after)).len())
        });
        g.bench_with_input(BenchmarkId::new("packed_aux", &label), &(), |b, _| {
            b.iter(|| black_box(step2_packed_aux(&main, &packed, bits_after)).len())
        });
    }
    g.finish();
}

fn bench_step1a_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_step1a_scheme");
    g.sample_size(10);
    let n_cols = 16usize;
    let n_d = 200_000usize;
    let threads = 8usize;
    let deltas: Vec<DeltaPartition<u64>> = (0..n_cols)
        .map(|i| {
            let (_, d) = build_column::<u64>(1, n_d, 1.0, 0.3, 100 + i as u64);
            d
        })
        .collect();
    g.throughput(Throughput::Elements((n_cols * n_d) as u64));

    // Scheme (i): task queue over columns, serial compress per column.
    g.bench_function("scheme_i_task_queue", |b| {
        b.iter(|| {
            let next = AtomicUsize::new(0);
            let total = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_cols {
                            break;
                        }
                        let c = deltas[i].compress();
                        total.fetch_add(c.dict.len(), Ordering::Relaxed);
                    });
                }
            });
            black_box(total.into_inner())
        })
    });

    // Scheme (ii): columns sequential, scatter parallel within each.
    g.bench_function("scheme_ii_parallel_scatter", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for d in &deltas {
                total += compress_delta_parallel_exact(d, threads).dict.len();
            }
            black_box(total)
        })
    });
    g.finish();
}

fn bench_three_phase_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_three_phase_threads");
    g.sample_size(10);
    let (main, delta) = build_column::<u64>(4_000_000, 4_000_000, 1.0, 1.0, 77);
    let u_m = main.dictionary().values();
    let u_d = delta.sorted_unique();
    g.throughput(Throughput::Elements((u_m.len() + u_d.len()) as u64));
    for threads in [1usize, 2, 4, 8, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(merge_dictionaries_parallel_exact(u_m, &u_d, threads))
                        .merged
                        .len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_aux_width,
    bench_step1a_schemes,
    bench_three_phase_threads
);
criterion_main!(benches);

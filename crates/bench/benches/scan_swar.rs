//! Criterion: word-parallel SWAR scan kernels vs the scalar cursor
//! reference (the ISSUE-9 tentpole's perf claim: SWAR >= 2x scalar medians
//! at 1M rows). Every SWAR timing is preceded by an equivalence assert
//! against the scalar path, so the gate can never pass on a wrong answer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bitpack::{mask_words, rows_from_mask, BitPackedVec};

const N: usize = 1_000_000;

/// 1M codes in `[0, 2^bits)`, deterministic, with enough repetition that
/// eq probes hit (~N / 2^min(bits,16) matches).
fn codes(bits: u8, seed: u64) -> BitPackedVec {
    let mask = hyrise_bitpack::max_value_for_bits(bits);
    let mut v = BitPackedVec::with_capacity(bits, N);
    let mut x = seed | 1;
    for _ in 0..N {
        // xorshift64: cheap, full-period, no dependency on the rand crate's
        // distribution details staying stable across refreshes.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push(x & mask);
    }
    v
}

fn bench_scan_swar(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_swar");
    g.sample_size(15);
    g.throughput(Throughput::Elements(N as u64));

    for bits in [4u8, 12, 24] {
        let v = codes(bits, 0x5EED_0000 + bits as u64);
        let max = hyrise_bitpack::max_value_for_bits(bits);
        let probe = max / 3;
        // A ~10% selective range: wide enough to exercise the mask-to-row
        // materialization, narrow enough that it isn't the whole column.
        let (lo, hi) = (max / 4, max / 4 + max / 10);

        // Equivalence asserts — the gate must never reward a wrong kernel.
        let mut swar = Vec::new();
        let mut scalar = Vec::new();
        v.select_eq_into(probe, 0, &mut swar);
        v.select_eq_scalar_into(probe, 0, &mut scalar);
        assert_eq!(swar, scalar, "select_eq diverges at {bits} bits");
        swar.clear();
        scalar.clear();
        v.select_in_range_into(lo, hi, 0, &mut swar);
        v.select_in_range_scalar_into(lo, hi, 0, &mut scalar);
        assert_eq!(swar, scalar, "select_in_range diverges at {bits} bits");
        assert_eq!(v.count_eq(probe), v.count_eq_scalar(probe));
        assert_eq!(v.count_in_range(lo, hi), v.count_in_range_scalar(lo, hi));
        assert_eq!(v.sum(), v.sum_scalar());

        let mut out = Vec::with_capacity(N);
        g.bench_with_input(BenchmarkId::new("eq_swar", bits), &v, |b, v| {
            b.iter(|| {
                out.clear();
                v.select_eq_into(probe, 0, &mut out);
                black_box(out.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("eq_scalar", bits), &v, |b, v| {
            b.iter(|| {
                out.clear();
                v.select_eq_scalar_into(probe, 0, &mut out);
                black_box(out.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("range_swar", bits), &v, |b, v| {
            b.iter(|| {
                out.clear();
                v.select_in_range_into(lo, hi, 0, &mut out);
                black_box(out.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("range_scalar", bits), &v, |b, v| {
            b.iter(|| {
                out.clear();
                v.select_in_range_scalar_into(lo, hi, 0, &mut out);
                black_box(out.len())
            })
        });

        // Fused 3-column conjunction: AND per-word masks, then materialize
        // once — vs the scan-then-refine loop the executor used before.
        let cols: Vec<BitPackedVec> = (0..3u64)
            .map(|k| codes(bits, 0xC0_FFEE + 31 * k + bits as u64))
            .collect();
        // ~40% selective per column => ~6% conjunction.
        let (flo, fhi) = (max / 5, max / 5 + 2 * (max / 5).max(1));
        let mut masks = vec![0u64; mask_words(N)];
        let fused = |masks: &mut Vec<u64>, out: &mut Vec<usize>| {
            cols[0].fill_range_mask(flo, fhi, masks);
            cols[1].and_range_mask(flo, fhi, masks);
            cols[2].and_range_mask(flo, fhi, masks);
            out.clear();
            rows_from_mask(masks, N, 0, out);
        };
        let refine = |out: &mut Vec<usize>| {
            out.clear();
            cols[0].select_in_range_scalar_into(flo, fhi, 0, out);
            for col in &cols[1..] {
                out.retain(|&r| {
                    let c = col.get(r);
                    (flo..=fhi).contains(&c)
                });
            }
        };
        fused(&mut masks, &mut swar);
        refine(&mut scalar);
        assert_eq!(swar, scalar, "fused conjunction diverges at {bits} bits");

        g.bench_with_input(BenchmarkId::new("fused_swar", bits), &cols, |b, _| {
            b.iter(|| {
                fused(&mut masks, &mut out);
                black_box(out.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("fused_scalar", bits), &cols, |b, _| {
            b.iter(|| {
                refine(&mut out);
                black_box(out.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scan_swar);
criterion_main!(benches);

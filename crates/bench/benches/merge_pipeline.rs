//! Criterion: the unified merge pipeline's two memory knobs.
//!
//! * **cold vs scratch** — the same 1M-row column merge with a fresh
//!   [`MergeScratch`] every iteration (every buffer heap-allocated) vs a
//!   warmed scratch whose caller recycles the retired output (steady-state
//!   zero allocation for dictionary/aux/output buffers).
//! * **unbudgeted vs budget1** — a 4-column, 1M-tuple table merged holding
//!   all four outputs before retiring them (the unbudgeted ~2x peak) vs
//!   merging and retiring column by column (a [`MergeBudget`] of one —
//!   the paper's Section 4 partial-column strategy), same total work.
//!
//! Both axes at 2% and 8% delta. Inputs are immutable, so iterations are
//! repeatable; an equivalence check pins cold and scratch outputs to the
//! same bytes before timing starts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bench::build_column;
use hyrise_core::{MergePipeline, MergeScratch, MergeStrategy};
use hyrise_storage::{DeltaPartition, MainPartition};

const N_M: usize = 1_000_000;
const LAMBDA: f64 = 0.1;
const TABLE_COLS: usize = 4;

fn bench_merge_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_pipeline");
    g.sample_size(10);
    let pipe = MergePipeline::new(MergeStrategy::Optimized, 1);

    for delta_pct in [2usize, 8] {
        let n_d = N_M * delta_pct / 100;
        let (main, delta) = build_column::<u64>(N_M, n_d, LAMBDA, LAMBDA, 11);
        g.throughput(Throughput::Elements((N_M + n_d) as u64));

        // Equivalence: a cold and a warmed merge must produce identical bytes.
        {
            let cold = pipe.merge_column(&main, &delta, &mut MergeScratch::new());
            let mut scratch = MergeScratch::new();
            let a = pipe.merge_column(&main, &delta, &mut scratch);
            scratch.recycle_main(a.main);
            let b = pipe.merge_column(&main, &delta, &mut scratch);
            assert_eq!(
                cold.main.dictionary().values(),
                b.main.dictionary().values()
            );
            assert_eq!(
                cold.main.packed_codes().words(),
                b.main.packed_codes().words()
            );
        }

        g.bench_with_input(BenchmarkId::new("cold", delta_pct), &(), |b, _| {
            b.iter(|| {
                // Fresh arena each merge: dictionary, aux tables and output
                // words are all newly heap-allocated, output freed on drop.
                black_box(pipe.merge_column(&main, &delta, &mut MergeScratch::new()))
                    .main
                    .len()
            })
        });

        g.bench_with_input(BenchmarkId::new("scratch", delta_pct), &(), |b, _| {
            let mut scratch = MergeScratch::new();
            // Warm the arena to its fixed point before timing.
            for _ in 0..2 {
                let out = pipe.merge_column(&main, &delta, &mut scratch);
                scratch.recycle_main(out.main);
            }
            b.iter(|| {
                let out = pipe.merge_column(&main, &delta, &mut scratch);
                let n = out.main.len();
                scratch.recycle_main(out.main);
                black_box(n)
            })
        });

        // Table-shaped inputs: 4 columns splitting the same 1M tuples.
        let cols: Vec<(MainPartition<u64>, DeltaPartition<u64>)> = (0..TABLE_COLS as u64)
            .map(|i| {
                build_column::<u64>(N_M / TABLE_COLS, n_d / TABLE_COLS, LAMBDA, LAMBDA, 23 + i)
            })
            .collect();

        g.bench_with_input(BenchmarkId::new("unbudgeted", delta_pct), &(), |b, _| {
            let mut scratch = MergeScratch::new();
            for _ in 0..2 {
                let outs: Vec<_> = cols
                    .iter()
                    .map(|(m, d)| pipe.merge_column(m, d, &mut scratch))
                    .collect();
                for o in outs {
                    scratch.recycle_main(o.main);
                }
            }
            b.iter(|| {
                // All four outputs live until the table-wide commit point —
                // the unbudgeted peak working set.
                let outs: Vec<_> = cols
                    .iter()
                    .map(|(m, d)| pipe.merge_column(m, d, &mut scratch))
                    .collect();
                let n: usize = outs.iter().map(|o| o.main.len()).sum();
                for o in outs {
                    scratch.recycle_main(o.main);
                }
                black_box(n)
            })
        });

        g.bench_with_input(BenchmarkId::new("budget1", delta_pct), &(), |b, _| {
            let mut scratch = MergeScratch::new();
            for _ in 0..2 {
                for (m, d) in &cols {
                    let out = pipe.merge_column(m, d, &mut scratch);
                    scratch.recycle_main(out.main);
                }
            }
            b.iter(|| {
                // One column in flight at a time — the budget-of-1 peak.
                let mut n = 0usize;
                for (m, d) in &cols {
                    let out = pipe.merge_column(m, d, &mut scratch);
                    n += out.main.len();
                    scratch.recycle_main(out.main);
                }
                black_box(n)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_merge_pipeline);
criterion_main!(benches);

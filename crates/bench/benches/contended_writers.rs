//! Criterion: write/read throughput under client contention — the
//! epoch-published path's headline claim. `insert` splits a fixed batch
//! workload across 1/4/16/64 writer threads (reserve-and-publish appends
//! must scale until cores saturate instead of serializing on a table
//! lock); `snapshot` measures lock-free snapshot acquisition on one
//! thread **while** that many writers hammer the same table — with no
//! reader/writer lock the snapshot cost must stay independent of the
//! writer count. Both are gated against `BENCH_baseline.json` in CI, so
//! reintroducing a lock on either steady-state path fails the build.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_core::OnlineTable;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Rows inserted per `insert` iteration, split evenly across the writers.
const INSERT_TOTAL: usize = 192_000;
/// Rows per `insert_rows` batch (a realistic client batch).
const BATCH: usize = 64;
/// Rows preloaded before the `snapshot` measurement (bounds the validity
/// prefix copy, so snapshot cost is comparable across writer counts).
const PRELOAD: usize = 100_000;
/// Rows the background writers insert per measured sample, in total.
const CONTEND_TOTAL: usize = 64_000;

fn batch_rows(n: usize) -> Vec<[u64; 2]> {
    (0..n as u64)
        .map(|i| [i % 1_000, i.wrapping_mul(2654435761) % 100_000])
        .collect()
}

fn bench_contended_writers(c: &mut Criterion) {
    let mut g = c.benchmark_group("contended_writers");
    g.sample_size(10);

    // Fixed total work: INSERT_TOTAL rows land no matter how many
    // clients carry them, so the time axis isolates contention cost.
    let batch = batch_rows(BATCH);
    for writers in [1usize, 4, 16, 64] {
        g.throughput(Throughput::Elements(INSERT_TOTAL as u64));
        g.bench_with_input(
            BenchmarkId::new("insert", writers),
            &writers,
            |b, &writers| {
                b.iter(|| {
                    let t = OnlineTable::<u64>::new(2);
                    let per_writer = INSERT_TOTAL / writers / BATCH;
                    std::thread::scope(|s| {
                        for _ in 0..writers {
                            s.spawn(|| {
                                for _ in 0..per_writer {
                                    black_box(t.insert_rows(&batch).unwrap());
                                }
                            });
                        }
                    });
                    black_box(t.row_count())
                })
            },
        );
    }

    // Snapshot acquisition while `writers` threads append concurrently.
    // Only the snapshot loop is timed; the writers' fixed workload bounds
    // the table between PRELOAD and PRELOAD + CONTEND_TOTAL rows for
    // every thread count, so medians are comparable across the axis.
    for writers in [1usize, 4, 16, 64] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(
            BenchmarkId::new("snapshot", writers),
            &writers,
            |b, &writers| {
                b.iter_custom(|iters| {
                    let t = OnlineTable::<u64>::new(2);
                    t.insert_rows(&batch_rows(PRELOAD)).unwrap();
                    let stop = AtomicBool::new(false);
                    let mut elapsed = Duration::ZERO;
                    std::thread::scope(|s| {
                        for _ in 0..writers {
                            let (t, stop, batch) = (&t, &stop, &batch);
                            s.spawn(move || {
                                for _ in 0..CONTEND_TOTAL / writers / BATCH {
                                    if stop.load(Ordering::Relaxed) {
                                        break;
                                    }
                                    black_box(t.insert_rows(batch).unwrap());
                                }
                            });
                        }
                        let start = Instant::now();
                        for _ in 0..iters {
                            black_box(t.snapshot());
                        }
                        elapsed = start.elapsed();
                        stop.store(true, Ordering::Relaxed);
                    });
                    elapsed
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_contended_writers);
criterion_main!(benches);

//! Criterion: the insert-path cost of durability. The same batched
//! insert workload runs against [`Durability::None`] (the pre-WAL
//! in-memory path — the zero-I/O baseline), a buffered WAL (records
//! reach the OS page cache before rows publish), and an fsync WAL (one
//! `fdatasync` per batch — the power-loss-proof mode, expected to be
//! dominated by device sync latency). Table construction and directory
//! teardown run outside the timed region (`iter_custom`), so the
//! numbers isolate the per-append cost. All three modes are gated
//! against `BENCH_baseline.json`; `fsync` at a widened 50% tolerance
//! (`gate::TOLERANCE_OVERRIDES`), since its median is dominated by the
//! runner's device sync latency rather than this code.
//!
//! What to expect from `buffered`: the append path is one `write(2)` of
//! a framed record per insert batch — that ordering (record in the
//! kernel before the rows publish) is the whole durability contract, so
//! the syscall cannot be deferred or amortized across batches. After
//! the append-path work (hardware CRC32C, single reusable frame buffer,
//! no userspace write buffering), the remaining cost is dominated by
//! page-cache population inside `write(2)` (~0.4 ns/byte), which is the
//! same order as the raw in-memory columnar append itself (~10 ns per
//! 8-byte value). Buffered durability therefore costs a sizable
//! fraction of pure insert throughput on this microbench by
//! construction; the gate holds the achieved number, it does not claim
//! the write-off is free.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_core::{Durability, OnlineTable};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const BATCH: usize = 1024;
/// Batches per iteration for the unsynced modes.
const BATCHES: usize = 50;
/// Batches per iteration under fsync (each batch pays a device sync).
const FSYNC_BATCHES: usize = 10;

fn batch_rows() -> Vec<[u64; 2]> {
    (0..BATCH as u64)
        .map(|i| [i % 1_000, i.wrapping_mul(2654435761) % 100_000])
        .collect()
}

fn scratch_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!("hyrise-wal-bench-{}-{tag}", std::process::id()))
}

/// Time `iters` rounds of `batches` batched inserts against a fresh
/// table per round, with construction and teardown outside the clock.
fn timed_rounds(
    iters: u64,
    batches: usize,
    batch: &[[u64; 2]],
    durability: impl Fn(u64) -> Durability,
) -> Duration {
    let mut total = Duration::ZERO;
    for round in 0..iters {
        let d = durability(round);
        let dir = match &d {
            Durability::Wal { dir, .. } => Some(dir.clone()),
            _ => None,
        };
        let t: OnlineTable<u64> = OnlineTable::builder()
            .columns(2)
            .durability(d)
            .build()
            .unwrap();
        let start = Instant::now();
        for _ in 0..batches {
            black_box(t.insert_rows(batch).unwrap());
        }
        total += start.elapsed();
        drop(t);
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    total
}

fn bench_wal_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_append");
    g.sample_size(10);
    let batch = batch_rows();

    g.throughput(Throughput::Elements((BATCHES * BATCH) as u64));
    g.bench_function(BenchmarkId::new("none", BATCHES * BATCH), |b| {
        b.iter_custom(|iters| timed_rounds(iters, BATCHES, &batch, |_| Durability::None))
    });

    // Fresh directory per round: building over an existing table is
    // refused by design, and a growing log would skew later samples.
    g.bench_function(BenchmarkId::new("buffered", BATCHES * BATCH), |b| {
        b.iter_custom(|iters| {
            timed_rounds(iters, BATCHES, &batch, |round| Durability::Wal {
                dir: scratch_dir(round),
                fsync: false,
            })
        })
    });

    g.throughput(Throughput::Elements((FSYNC_BATCHES * BATCH) as u64));
    g.bench_function(BenchmarkId::new("fsync", FSYNC_BATCHES * BATCH), |b| {
        b.iter_custom(|iters| {
            timed_rounds(iters, FSYNC_BATCHES, &batch, |round| Durability::Wal {
                dir: scratch_dir(round),
                fsync: true,
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench_wal_append);
criterion_main!(benches);

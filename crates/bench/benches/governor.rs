//! Criterion: adaptive governor grants vs the static policy under three
//! synthetic loads.
//!
//! Phase 1 (untimed) lets a real [`ResourceGovernor`] observe a real
//! [`OnlineTable`] under synthetic load — idle (nothing running),
//! read-heavy (a signal thread holding engine-run guards), write-heavy (a
//! fat delta with the table over its memory soft limit) — and asserts the
//! expected decision-table row fired. Phase 2 (timed) measures merge
//! throughput of the granted configuration over an immutable column set
//! (same shape every iteration, so the CI gate sees stable medians):
//! `governor/{idle,read_heavy,write_heavy}/{static,adaptive}`.
//!
//! The ISSUE's acceptance criterion is asserted before timing starts, on
//! real tables: under the write-heavy scenario the adaptive grant's
//! [`TableMergeStats::peak_extra_bytes`] must be **strictly below** the
//! static unbudgeted policy's peak while its merge wall time stays within
//! 10% (min-of-3, one retry to absorb scheduler noise).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_bench::build_column;
use hyrise_core::governor::{begin_read, GovernorConfig, GrantSignal, LoadView, ResourceGovernor};
use hyrise_core::{MergeGrant, MergePipeline, MergePolicy, MergeScratch, OnlineTable};
use hyrise_storage::{DeltaPartition, MainPartition};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const COLS: usize = 6;
/// Tuples per column in the timed column set.
const N_M: usize = 200_000;
const LAMBDA: f64 = 0.1;
/// Rows preloaded into the real tables the governor observes.
const TABLE_ROWS: usize = 60_000;
const DOMAIN: u64 = 10_000;

fn build_table(rows: usize) -> OnlineTable<u64> {
    let t = OnlineTable::new(COLS);
    let batch: Vec<Vec<u64>> = (0..rows as u64)
        .map(|i| {
            (0..COLS as u64)
                .map(|c| (i * 31 + c * 7) % DOMAIN)
                .collect()
        })
        .collect();
    t.insert_rows(&batch).unwrap();
    t.merge(1, None).unwrap();
    t
}

/// Insert `pct`% of the table's main size into the delta (values stay in
/// the preload domain, so dictionaries keep their shape across rounds).
fn fill_delta(t: &OnlineTable<u64>, pct: usize) {
    let n = t.main_len() * pct / 100;
    let batch: Vec<Vec<u64>> = (0..n as u64)
        .map(|i| {
            (0..COLS as u64)
                .map(|c| (i * 17 + c * 3) % DOMAIN)
                .collect()
        })
        .collect();
    t.insert_rows(&batch).unwrap();
}

/// Ask a governor observing `table` for this round's grant, after a
/// sampling window under the caller's synthetic load.
fn observed_grant(table: &OnlineTable<u64>, config: GovernorConfig) -> (MergeGrant, GrantSignal) {
    let gov = ResourceGovernor::new(config);
    let _ = gov.plan(&LoadView::of_source(table)); // open the window
    std::thread::sleep(Duration::from_millis(40));
    let plan = gov.plan(&LoadView::of_source(table));
    (plan.grant, plan.signal)
}

/// The timed kernel: merge every column of the immutable set under
/// `grant`, holding merged-but-unretired outputs per the grant's budget
/// (all at once when unbounded, K at a time otherwise) — the same commit
/// granularity `OnlineTable::merge_with` uses.
fn run_grant(
    cols: &[(MainPartition<u64>, DeltaPartition<u64>)],
    grant: &MergeGrant,
    scratch: &mut MergeScratch<u64>,
) -> usize {
    let pipe = MergePipeline::new(grant.strategy, grant.threads);
    let k = grant.budget.max_columns().min(cols.len());
    let mut n = 0usize;
    for chunk in cols.chunks(k) {
        let outs: Vec<_> = chunk
            .iter()
            .map(|(m, d)| pipe.merge_column(m, d, scratch))
            .collect();
        n += outs.iter().map(|o| o.main.len()).sum::<usize>();
        for o in outs {
            scratch.recycle_main(o.main);
        }
    }
    n
}

/// Minimum merge wall over `rounds` same-shape merges of `table` (the
/// delta is refilled to `pct`% before each).
fn min_merge_wall(table: &OnlineTable<u64>, grant: MergeGrant, pct: usize, rounds: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        fill_delta(table, pct);
        let t0 = Instant::now();
        table.merge_with(grant, None).unwrap();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The ISSUE's acceptance criterion, on real tables: adaptive write-heavy
/// grants bound peak extra bytes strictly below the static unbudgeted
/// policy while staying within 10% of its merge throughput.
fn assert_write_heavy_acceptance(static_grant: MergeGrant, adaptive_grant: MergeGrant) {
    assert!(
        !adaptive_grant.budget.is_unbounded(),
        "write-heavy adaptive grant must carry a column budget"
    );
    let t_static = build_table(TABLE_ROWS);
    let t_adaptive = build_table(TABLE_ROWS);
    fill_delta(&t_static, 8);
    fill_delta(&t_adaptive, 8);
    let s = t_static.merge_with(static_grant, None).unwrap();
    let a = t_adaptive.merge_with(adaptive_grant, None).unwrap();
    assert!(
        a.peak_extra_bytes < s.peak_extra_bytes,
        "adaptive peak_extra_bytes {} must stay strictly below static {}",
        a.peak_extra_bytes,
        s.peak_extra_bytes
    );
    assert_eq!(a.columns.len(), s.columns.len(), "same work done");
    // Throughput within 10% (min-of-3; retry once — the container shares
    // its cores).
    for attempt in 0..2 {
        let ws = min_merge_wall(&t_static, static_grant, 2, 3);
        let wa = min_merge_wall(&t_adaptive, adaptive_grant, 2, 3);
        if wa <= ws * 1.10 {
            return;
        }
        assert!(
            attempt == 0,
            "adaptive merge wall {wa:.4}s exceeds static {ws:.4}s by more than 10%"
        );
    }
}

fn bench_governor(c: &mut Criterion) {
    let mut g = c.benchmark_group("governor");
    g.sample_size(10);

    let policy = MergePolicy {
        delta_fraction: 0.01,
        threads: 2,
        ..MergePolicy::default()
    };
    let static_grant = policy.grant();

    // --- Phase 1: let the governor observe real load, pin the decisions.
    // Idle: nothing reads, nothing writes — the governor raises threads.
    let table = build_table(TABLE_ROWS);
    fill_delta(&table, 2);
    let (idle_grant, sig) = observed_grant(&table, GovernorConfig::from_policy(policy));
    assert_eq!(sig, GrantSignal::ReadIdle, "quiet process reads as idle");

    // Read-heavy: a signal thread holds engine-run guards at ~1 kHz —
    // negligible CPU, unmistakable pressure. The governor drops to Naive.
    let stop = Arc::new(AtomicBool::new(false));
    let signal = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _guard = begin_read();
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    };
    let (read_grant, sig) = observed_grant(&table, GovernorConfig::from_policy(policy));
    stop.store(true, Ordering::Relaxed);
    signal.join().unwrap();
    assert_eq!(sig, GrantSignal::Contended, "guard traffic reads as busy");

    // Write-heavy: a fat delta pushes the table past its soft limit — the
    // governor shrinks the budget to one column.
    fill_delta(&table, 8);
    let soft_limit = table.memory_report().total() / 2;
    let (write_grant, sig) = observed_grant(
        &table,
        GovernorConfig::from_policy(policy).with_memory_soft_limit(soft_limit),
    );
    assert_eq!(
        sig,
        GrantSignal::MemoryPressure,
        "over-limit reads as pressure"
    );
    drop(table);

    assert_write_heavy_acceptance(static_grant, write_grant);

    // --- Phase 2: timed merges of an immutable column set per grant.
    for (scenario, adaptive_grant, delta_pct) in [
        ("idle", idle_grant, 2usize),
        ("read_heavy", read_grant, 2),
        ("write_heavy", write_grant, 8),
    ] {
        let n_d = N_M * delta_pct / 100;
        let cols: Vec<(MainPartition<u64>, DeltaPartition<u64>)> = (0..COLS as u64)
            .map(|i| build_column::<u64>(N_M / COLS, n_d / COLS, LAMBDA, LAMBDA, 31 + i))
            .collect();
        g.throughput(Throughput::Elements((N_M + n_d) as u64));
        for (config, grant) in [("static", static_grant), ("adaptive", adaptive_grant)] {
            g.bench_with_input(BenchmarkId::new(scenario, config), &grant, |b, grant| {
                let mut scratch = MergeScratch::new();
                for _ in 0..2 {
                    black_box(run_grant(&cols, grant, &mut scratch));
                }
                b.iter(|| black_box(run_grant(&cols, grant, &mut scratch)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_governor);
criterion_main!(benches);

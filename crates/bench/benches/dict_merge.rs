//! Criterion: Step 1(b) — serial vs three-phase parallel dictionary merge.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_core::merge_dictionaries;
use hyrise_core::parallel::merge_dictionaries_parallel;

fn sorted_unique(n: usize, seed: u64, domain: u64) -> Vec<u64> {
    let mut x = seed | 1;
    let mut v: Vec<u64> = (0..n * 2)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % domain
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(n);
    v
}

fn bench_dict_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("dict_merge");
    g.sample_size(15);
    let u_m = sorted_unique(1_000_000, 3, u64::MAX / 2);
    let u_d = sorted_unique(100_000, 5, u64::MAX / 2);
    g.throughput(Throughput::Elements((u_m.len() + u_d.len()) as u64));
    g.bench_function("serial", |b| {
        b.iter(|| black_box(merge_dictionaries(&u_m, &u_d)).merged.len())
    });
    for threads in [2usize, 4, 8, 16] {
        g.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(merge_dictionaries_parallel(&u_m, &u_d, threads))
                        .merged
                        .len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_dict_merge);
criterion_main!(benches);

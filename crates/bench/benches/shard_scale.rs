//! Criterion: sharded fan-out scaling — the same logical table partitioned
//! over 1/2/4/8 shards, measuring cross-shard scan/aggregate fan-out and
//! batched routed inserts. On a single core the fan-out threads only add
//! coordination overhead (flat-to-slower curves are expected, as with the
//! parallel dict-merge bench); on multi-core hardware throughput should
//! grow with the shard count until memory bandwidth saturates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyrise_core::shard::ShardedTable;
use hyrise_query::Query;

const TOTAL_ROWS: usize = 200_000;
const KEY_DOMAIN: u64 = 1_000;

fn loaded(shards: usize) -> ShardedTable<u64> {
    let t = ShardedTable::builder()
        .shards(shards)
        .columns(2)
        .build()
        .unwrap();
    let rows: Vec<[u64; 2]> = (0..TOTAL_ROWS as u64)
        .map(|i| [i % KEY_DOMAIN, i.wrapping_mul(2654435761) % 100_000])
        .collect();
    t.insert_rows(&rows).unwrap();
    t.merge_all(1).unwrap();
    t
}

fn bench_shard_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_scale");
    g.sample_size(10);

    for shards in [1usize, 2, 4, 8] {
        let t = loaded(shards);
        g.throughput(Throughput::Elements(TOTAL_ROWS as u64));
        let scan = Query::scan(0).eq(7);
        g.bench_with_input(BenchmarkId::new("scan_eq", shards), &t, |b, t| {
            b.iter(|| black_box(scan.run(t).into_rows()).len())
        });
        let sum = Query::scan(0).sum(1);
        g.bench_with_input(BenchmarkId::new("sum", shards), &t, |b, t| {
            b.iter(|| black_box(sum.run(t).sum()))
        });
    }

    // Routed batched insert: a fresh (empty-shard) table per iteration so
    // the delta does not grow across samples; table construction is cheap
    // next to 5K CSB+ inserts.
    let batch: Vec<[u64; 2]> = (0..5_000u64).map(|i| [i % KEY_DOMAIN, i]).collect();
    for shards in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements(batch.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("insert_batch", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let t = ShardedTable::<u64>::builder()
                        .shards(shards)
                        .columns(2)
                        .build()
                        .unwrap();
                    let ids = t.insert_rows(&batch).unwrap();
                    black_box(ids.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_shard_scale);
criterion_main!(benches);

//! The CI perf-regression gate: parse the bencher output of the vendored
//! criterion stub, compare medians against a committed baseline
//! (`BENCH_baseline.json` at the repo root), and fail on regressions.
//!
//! The stub prints one line per benchmark:
//!
//! ```text
//! scan/scan_eq/0       time: [1.32 ms 1.35 ms 1.41 ms]  thrpt: 743 Melem/s
//! ```
//!
//! where the bracketed triple is `[min median max]` per iteration. The gate
//! compares the **median** — min is too optimistic under CI noise, max too
//! pessimistic — and trips when `median > baseline * (1 + tolerance)`.
//! The baseline is a flat JSON object `{"bench id": median_ns}`; it is
//! hardware-specific, so refresh it (`scripts/refresh_bench_baseline.sh`)
//! on the machine class CI runs on whenever a deliberate perf change lands.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One benchmark's parsed result.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/param`).
    pub name: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
}

fn unit_to_ns(unit: &str) -> Option<f64> {
    match unit {
        "ns" => Some(1.0),
        "µs" | "us" => Some(1e3),
        "ms" => Some(1e6),
        "s" => Some(1e9),
        _ => None,
    }
}

/// Parse every `time: [min median max]` line out of a bench run's stdout.
/// Non-matching lines (cargo noise, group banners) are ignored.
pub fn parse_bench_output(text: &str) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some((id_part, rest)) = line.split_once("time: [") else {
            continue;
        };
        let name = id_part.trim().to_string();
        let Some((triple, _)) = rest.split_once(']') else {
            continue;
        };
        // `min min_unit median median_unit max max_unit`
        let tokens: Vec<&str> = triple.split_whitespace().collect();
        if tokens.len() != 6 || name.is_empty() {
            continue;
        }
        let (Ok(value), Some(scale)) = (tokens[2].parse::<f64>(), unit_to_ns(tokens[3])) else {
            continue;
        };
        out.push(BenchResult {
            name,
            median_ns: value * scale,
        });
    }
    out
}

/// Serialize results as the flat, sorted baseline JSON object.
pub fn to_json(results: &[BenchResult]) -> String {
    let sorted: BTreeMap<&str, f64> = results
        .iter()
        .map(|r| (r.name.as_str(), r.median_ns))
        .collect();
    let mut s = String::from("{\n");
    for (i, (name, ns)) in sorted.iter().enumerate() {
        let comma = if i + 1 < sorted.len() { "," } else { "" };
        writeln!(s, "  \"{name}\": {ns:.1}{comma}").expect("write to String");
    }
    s.push_str("}\n");
    s
}

/// Parse the baseline JSON (the exact shape [`to_json`] emits; bench ids
/// contain no quotes or escapes, so no general JSON parser is needed).
pub fn parse_json(text: &str) -> Result<Vec<BenchResult>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" || line == "{}" {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed baseline line: {line:?}"))?;
        let name = name.trim().trim_matches('"');
        let median_ns: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number in baseline line {line:?}: {e}"))?;
        if name.is_empty() {
            return Err(format!("empty bench name in baseline line {line:?}"));
        }
        out.push(BenchResult {
            name: name.to_string(),
            median_ns,
        });
    }
    Ok(out)
}

/// Per-entry tolerance overrides: benches whose medians are dominated by
/// something other than this codebase get a wider band than the global
/// default. `wal_append/fsync` is bounded by the runner's device sync
/// latency — gating it at the default 25% would make CI a disk benchmark —
/// so it is gated, but at 50%. `morsel_scan/*/pool*` medians include OS
/// scheduler hand-offs between the caller and pool workers; on the
/// single-core CI runner those dominate the short eq/fused scans, so the
/// pool entries get the same widened 50% band (the `serial` and `pool1`
/// entries stay at the default — they never leave the calling thread).
pub const TOLERANCE_OVERRIDES: &[(&str, f64)] = &[("wal_append/fsync/", 0.50)];

/// Suffix-matched counterpart to [`TOLERANCE_OVERRIDES`] (criterion ids
/// put the varying parameter last, so pool-backed entries share a suffix,
/// not a prefix).
pub const TOLERANCE_SUFFIX_OVERRIDES: &[(&str, &str, f64)] = &[
    ("morsel_scan/", "/pool2", 0.50),
    ("morsel_scan/", "/pool4", 0.50),
];

/// The tolerance that applies to a bench id: the first matching
/// [`TOLERANCE_OVERRIDES`] prefix, else the first matching
/// [`TOLERANCE_SUFFIX_OVERRIDES`] prefix+suffix pair, else `default`.
pub fn tolerance_for(name: &str, default: f64) -> f64 {
    if let Some((_, t)) = TOLERANCE_OVERRIDES
        .iter()
        .find(|(prefix, _)| name.starts_with(prefix))
    {
        return *t;
    }
    TOLERANCE_SUFFIX_OVERRIDES
        .iter()
        .find(|(prefix, suffix, _)| name.starts_with(prefix) && name.ends_with(suffix))
        .map_or(default, |(_, _, t)| *t)
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Benchmark id.
    pub name: String,
    /// Baseline median, ns.
    pub baseline_ns: f64,
    /// This run's median, ns.
    pub current_ns: f64,
    /// The tolerance this entry was gated at ([`tolerance_for`]).
    pub tolerance: f64,
}

impl Delta {
    /// `current / baseline` (> 1 is slower).
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// Outcome of comparing a run against the baseline.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Benches slower than `baseline * (1 + tolerance)` — these fail CI.
    pub regressions: Vec<Delta>,
    /// Benches within tolerance (including improvements).
    pub passed: Vec<Delta>,
    /// Ran now but absent from the baseline (new benches — refresh soon).
    pub missing_in_baseline: Vec<String>,
    /// In the baseline but not in this run (filtered-out or removed).
    pub missing_in_run: Vec<String>,
}

impl GateReport {
    /// Does the gate pass?
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare `current` against `baseline` with the given relative
/// `tolerance` (0.25 = fail on >25% median regression). Entries matching
/// a [`TOLERANCE_OVERRIDES`] prefix are gated at their own threshold
/// instead.
pub fn compare(baseline: &[BenchResult], current: &[BenchResult], tolerance: f64) -> GateReport {
    let base: BTreeMap<&str, f64> = baseline
        .iter()
        .map(|r| (r.name.as_str(), r.median_ns))
        .collect();
    let cur: BTreeMap<&str, f64> = current
        .iter()
        .map(|r| (r.name.as_str(), r.median_ns))
        .collect();
    let mut report = GateReport::default();
    for (name, &now) in &cur {
        match base.get(name) {
            None => report.missing_in_baseline.push(name.to_string()),
            Some(&was) => {
                let entry_tolerance = tolerance_for(name, tolerance);
                let d = Delta {
                    name: name.to_string(),
                    baseline_ns: was,
                    current_ns: now,
                    tolerance: entry_tolerance,
                };
                if now > was * (1.0 + entry_tolerance) {
                    report.regressions.push(d);
                } else {
                    report.passed.push(d);
                }
            }
        }
    }
    for name in base.keys() {
        if !cur.contains_key(name) {
            report.missing_in_run.push(name.to_string());
        }
    }
    // Worst offenders first, so the CI log leads with the problem.
    report
        .regressions
        .sort_by(|a, b| b.ratio().total_cmp(&a.ratio()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
   Compiling hyrise-bench v0.1.0 (/root/repo/crates/bench)
    Finished `bench` profile [optimized + debuginfo] target(s) in 3.43s
     Running benches/scan.rs (target/release/deps/scan-cafe)
scan/scan_eq/0                                     time: [1.32 ms 1.35 ms 1.41 ms]  thrpt: 743.143 Melem/s
scan/scan_range/0                                  time: [1.88 ms 1.90 ms 1.99 ms]
dict_merge/serial                                  time: [3.31 ms 3.41 ms 3.52 ms]  thrpt: 322.581 Melem/s
shard_scale/scan_eq/8                              time: [151.94 µs 175.66 µs 224.42 µs]  thrpt: 1.139 Gelem/s
shard_scale/tiny                                   time: [151.94 ns 175.66 ns 224.42 ns]
not a bench line
";

    #[test]
    fn parses_ids_and_median_in_ns() {
        let r = parse_bench_output(SAMPLE);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].name, "scan/scan_eq/0");
        assert!((r[0].median_ns - 1.35e6).abs() < 1.0);
        assert_eq!(r[3].name, "shard_scale/scan_eq/8");
        assert!((r[3].median_ns - 175_660.0).abs() < 1.0);
        assert!((r[4].median_ns - 175.66).abs() < 0.01, "ns stays ns");
    }

    #[test]
    fn json_roundtrip() {
        let r = parse_bench_output(SAMPLE);
        let json = to_json(&r);
        let back = parse_json(&json).unwrap();
        // to_json sorts by name; compare as maps.
        let a: BTreeMap<String, i64> = r
            .iter()
            .map(|x| (x.name.clone(), x.median_ns.round() as i64))
            .collect();
        let b: BTreeMap<String, i64> = back
            .iter()
            .map(|x| (x.name.clone(), x.median_ns.round() as i64))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse_json("{\n  \"a\" 12\n}").is_err());
        assert!(parse_json("{\n  \"a\": twelve\n}").is_err());
        assert!(parse_json("{}\n").unwrap().is_empty());
    }

    fn res(name: &str, ns: f64) -> BenchResult {
        BenchResult {
            name: name.into(),
            median_ns: ns,
        }
    }

    #[test]
    fn gate_trips_only_past_tolerance() {
        let base = vec![res("a", 100.0), res("b", 100.0), res("c", 100.0)];
        let cur = vec![res("a", 124.0), res("b", 126.0), res("c", 60.0)];
        let rep = compare(&base, &cur, 0.25);
        assert!(!rep.ok());
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].name, "b");
        assert!((rep.regressions[0].ratio() - 1.26).abs() < 1e-9);
        assert_eq!(rep.passed.len(), 2, "improvement and within-tolerance pass");
    }

    #[test]
    fn gate_reports_membership_drift_without_failing() {
        let base = vec![res("old", 10.0), res("shared", 10.0)];
        let cur = vec![res("new", 10.0), res("shared", 10.0)];
        let rep = compare(&base, &cur, 0.25);
        assert!(rep.ok(), "membership drift alone must not fail the gate");
        assert_eq!(rep.missing_in_baseline, vec!["new".to_string()]);
        assert_eq!(rep.missing_in_run, vec!["old".to_string()]);
    }

    #[test]
    fn fsync_entries_get_the_wide_band() {
        assert!((tolerance_for("wal_append/fsync/10240", 0.25) - 0.50).abs() < 1e-12);
        assert!((tolerance_for("wal_append/buffered/51200", 0.25) - 0.25).abs() < 1e-12);
        // Pool-backed morsel entries are suffix-matched; serial/pool1 stay
        // at the default band.
        assert!((tolerance_for("morsel_scan/eq/pool2", 0.25) - 0.50).abs() < 1e-12);
        assert!((tolerance_for("morsel_scan/sum/pool4", 0.25) - 0.50).abs() < 1e-12);
        assert!((tolerance_for("morsel_scan/eq/serial", 0.25) - 0.25).abs() < 1e-12);
        assert!((tolerance_for("morsel_scan/eq/pool1", 0.25) - 0.25).abs() < 1e-12);
        let base = vec![
            res("wal_append/fsync/10240", 100.0),
            res("scan/scan_eq/0", 100.0),
        ];
        // +40%: inside the fsync band, outside the default one.
        let cur = vec![
            res("wal_append/fsync/10240", 140.0),
            res("scan/scan_eq/0", 140.0),
        ];
        let rep = compare(&base, &cur, 0.25);
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].name, "scan/scan_eq/0");
        assert!((rep.regressions[0].tolerance - 0.25).abs() < 1e-12);
        let fsync = rep
            .passed
            .iter()
            .find(|d| d.name.starts_with("wal_append"))
            .unwrap();
        assert!((fsync.tolerance - 0.50).abs() < 1e-12);
        // +60% trips even the wide band.
        let cur = vec![
            res("wal_append/fsync/10240", 160.0),
            res("scan/scan_eq/0", 100.0),
        ];
        assert_eq!(compare(&base, &cur, 0.25).regressions.len(), 1);
    }

    #[test]
    fn worst_regression_sorts_first() {
        let base = vec![res("a", 100.0), res("b", 100.0)];
        let cur = vec![res("a", 200.0), res("b", 400.0)];
        let rep = compare(&base, &cur, 0.25);
        assert_eq!(rep.regressions[0].name, "b");
        assert_eq!(rep.regressions[1].name, "a");
    }
}

//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Every binary accepts `--key value` overrides (e.g. `--nm 100000000
//! --threads 12`) so the paper-scale experiments can be run given enough
//! RAM/time, while the defaults finish in minutes on a laptop. Each binary
//! prints the paper's reference numbers next to the measured ones;
//! `EXPERIMENTS.md` records a full run.

pub mod gate;

use hyrise_core::model::{calibrate, MachineProfile};
use hyrise_storage::{DeltaPartition, MainPartition, Value};
use hyrise_workload::values::{values_with_unique, UniqueSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Minimal `--key value` / `--flag` argument parsing (no CLI dependency).
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        let mut map = HashMap::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].trim_start_matches('-').to_string();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                map.insert(key, argv[i + 1].clone());
                i += 2;
            } else {
                map.insert(key, "true".to_string());
                i += 1;
            }
        }
        Self { map }
    }

    /// Integer argument with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.map
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// Float argument with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.map
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number"))
            })
            .unwrap_or(default)
    }

    /// String argument with default.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }
}

/// Default thread count: all available cores (the paper: "the merge uses all
/// available resources").
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// One main+delta column pair with controlled sizes and unique fractions.
///
/// The delta's seed range straddles the top of the main's value domain, so
/// about half the delta's distinct values already exist in the main
/// dictionary and half are new (the paper generates both uniformly at
/// random; this overlap is our documented choice — see EXPERIMENTS.md).
pub fn build_column<V: Value>(
    n_m: usize,
    n_d: usize,
    lambda_m: f64,
    lambda_d: f64,
    seed: u64,
) -> (MainPartition<V>, DeltaPartition<V>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let main_spec = UniqueSpec::from_lambda(n_m, lambda_m);
    let main_vals: Vec<V> = values_with_unique(&mut rng, main_spec);
    let main = MainPartition::from_values(&main_vals);
    drop(main_vals);

    let delta_vals: Vec<V> = delta_values_rng(&mut rng, n_d, lambda_d, main_spec.unique);
    let mut delta = DeltaPartition::new();
    for v in delta_vals {
        delta.insert(v);
    }
    (main, delta)
}

fn delta_values_rng<V: Value, R: rand::Rng>(
    rng: &mut R,
    n_d: usize,
    lambda_d: f64,
    main_unique: usize,
) -> Vec<V> {
    let spec = UniqueSpec::from_lambda(n_d, lambda_d);
    // Straddle the domain boundary: half the delta's seeds reuse the main's
    // top values, half are fresh.
    let spec = spec.offset(main_unique.saturating_sub(spec.unique / 2) as u64);
    values_with_unique(rng, spec)
}

/// Generate just the delta-value stream for a column (for timing `T_U`
/// separately from partition construction). `main_unique` is the main
/// dictionary size, used to place the half-overlapping value domain.
pub fn delta_values<V: Value>(n_d: usize, lambda_d: f64, main_unique: usize, seed: u64) -> Vec<V> {
    let mut rng = StdRng::seed_from_u64(seed);
    delta_values_rng(&mut rng, n_d, lambda_d, main_unique)
}

/// Time the `T_U` component: inserting `values` into a fresh delta
/// partition (uncompressed append + CSB+ insert per tuple).
pub fn time_delta_updates<V: Value>(values: &[V]) -> (DeltaPartition<V>, Duration) {
    let mut delta = DeltaPartition::new();
    let t0 = Instant::now();
    for v in values {
        delta.insert(*v);
    }
    (delta, t0.elapsed())
}

/// Cycles per tuple from a duration (the figures' y-axis unit).
pub fn cpt(t: Duration, tuples: usize, hz: f64) -> f64 {
    hyrise_core::stats::cycles_per_tuple(t, tuples, hz)
}

/// Full machine calibration (bandwidth micro-benchmarks; a second or two).
pub fn machine(threads: usize) -> MachineProfile {
    calibrate(threads)
}

/// Clock estimate without the bandwidth micro-benchmarks.
pub fn quick_hz() -> f64 {
    static HZ: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *HZ.get_or_init(|| {
        if let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") {
            for line in text.lines() {
                if line.starts_with("cpu MHz") {
                    if let Some(v) = line
                        .split(':')
                        .nth(1)
                        .and_then(|s| s.trim().parse::<f64>().ok())
                    {
                        if v > 100.0 {
                            return v * 1e6;
                        }
                    }
                }
            }
        }
        calibrate(1).hz
    })
}

/// Fixed-width table printing.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Start a table; prints the header row and a separator.
    pub fn new(headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(12)).collect();
        let p = Self { widths };
        p.row(headers);
        println!(
            "{}",
            p.widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-")
        );
        p
    }

    /// Print one row.
    pub fn row(&self, cells: &[&str]) {
        let line: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>width$}", width = w))
            .collect();
        println!("{}", line.join(" | "));
    }
}

/// Human-readable large number (e.g. `1.5M`).
pub fn fmt_count(n: usize) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Standard experiment banner: what runs, at which scale, vs paper scale.
pub fn banner(experiment: &str, paper_setup: &str, our_setup: &str) {
    println!("=== {experiment} ===");
    println!("paper setup : {paper_setup}");
    println!("this run    : {our_setup}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_column_respects_lambdas() {
        let (main, delta) = build_column::<u64>(10_000, 1_000, 0.1, 0.2, 1);
        assert_eq!(main.len(), 10_000);
        assert_eq!(delta.len(), 1_000);
        assert_eq!(main.dictionary().len(), 1_000);
        assert_eq!(delta.unique_len(), 200);
    }

    #[test]
    fn delta_overlaps_main_domain() {
        let (main, delta) = build_column::<u64>(10_000, 1_000, 0.1, 0.2, 2);
        let in_main = delta
            .sorted_unique()
            .iter()
            .filter(|v| main.dictionary().code_of(v).is_some())
            .count();
        assert!(
            in_main > 0,
            "some delta values must already be in the main dictionary"
        );
        assert!(
            in_main < delta.unique_len(),
            "some delta values must be new"
        );
    }

    #[test]
    fn fmt_count_units() {
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_500), "1.5K");
        assert_eq!(fmt_count(2_000_000), "2.0M");
        assert_eq!(fmt_count(1_600_000_000), "1.6B");
    }

    #[test]
    fn time_delta_updates_builds_the_delta() {
        let vals: Vec<u64> = (0..500).collect();
        let (delta, t) = time_delta_updates(&vals);
        assert_eq!(delta.len(), 500);
        assert_eq!(delta.unique_len(), 500);
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn args_parsing() {
        // Exercise the map-backed accessors directly.
        let mut map = HashMap::new();
        map.insert("nm".to_string(), "1000".to_string());
        map.insert("lambda".to_string(), "0.5".to_string());
        map.insert("quick".to_string(), "true".to_string());
        let args = Args { map };
        assert_eq!(args.usize("nm", 7), 1000);
        assert_eq!(args.usize("nd", 7), 7);
        assert!((args.f64("lambda", 0.0) - 0.5).abs() < 1e-12);
        assert!(args.flag("quick"));
        assert!(!args.flag("missing"));
    }
}

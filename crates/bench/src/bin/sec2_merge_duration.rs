//! Section 2 "Merge Duration": the VBAP sales-order scenario.
//!
//! Paper measurement: merging one month of sales orders (750K rows) into the
//! VBAP table (33M rows x 230 columns) took 1.8 trillion CPU cycles = 12
//! minutes with the naive implementation — ~1,000 merged updates/second,
//! extrapolating to ~20 hours of merging per month for a 1.5 TB system.
//!
//! This harness replays the scenario at `--scale` (default 1% of rows) over
//! `--cols` sampled columns (default 16 of the 230), measures both the naive
//! and the optimized parallel merge, and extrapolates linearly to the
//! paper's full size (the merge is embarrassingly parallel across columns
//! and linear in rows, so per-column-per-tuple cost is the invariant).

use hyrise_bench::{banner, default_threads, fmt_count, quick_hz, Args, TablePrinter};
use hyrise_core::{merge_column_naive, parallel::merge_column_parallel};
use hyrise_storage::{DeltaPartition, MainPartition};
use hyrise_workload::VbapScenario;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let scale = args.f64("scale", 0.01);
    let cols = args.usize("cols", 16);
    let threads = args.usize("threads", default_threads());
    let hz = quick_hz();

    let full = VbapScenario::paper();
    let s = full.scaled(scale).with_cols(cols);
    banner(
        "Section 2 — VBAP merge duration",
        "VBAP: 33M rows x 230 cols, merge 750K rows; naive merge = 12 min (~1,000 upd/s)",
        &format!(
            "scale={scale} => {} rows x {} cols, merge {} rows, {} threads, {:.2} GHz",
            fmt_count(s.rows),
            s.cols,
            fmt_count(s.merge_rows),
            threads,
            hz / 1e9
        ),
    );

    let distinct = s.column_distinct_counts();
    let mut t_naive = Duration::ZERO;
    let mut t_opt = Duration::ZERO;
    let t = TablePrinter::new(&["column", "distinct", "naive ms", "optimized ms", "speedup"]);
    for (c, &dc) in distinct.iter().enumerate() {
        let main_vals = s.generate_main_column(c, dc);
        let delta_vals = s.generate_delta_column(c, dc);
        let main = MainPartition::from_values(&main_vals);
        drop(main_vals);
        let mut delta = DeltaPartition::new();
        for v in delta_vals {
            delta.insert(v);
        }
        let naive = merge_column_naive(&main, &delta, threads);
        let opt = merge_column_parallel(&main, &delta, threads);
        t_naive += naive.stats.t_total();
        t_opt += opt.stats.t_total();
        if c < 8 {
            t.row(&[
                &format!("c{c}"),
                &fmt_count(dc),
                &format!("{:.1}", naive.stats.t_total().as_secs_f64() * 1e3),
                &format!("{:.1}", opt.stats.t_total().as_secs_f64() * 1e3),
                &format!(
                    "{:.1}x",
                    naive.stats.t_total().as_secs_f64()
                        / opt.stats.t_total().as_secs_f64().max(1e-12)
                ),
            ]);
        }
    }
    println!("  ... ({} columns measured in total)", s.cols);
    println!();

    // Extrapolate: scale rows back up and multiply columns out to 230.
    let row_factor = full.rows as f64 / s.rows as f64;
    let col_factor = full.cols as f64 / s.cols as f64;
    let naive_full = t_naive.as_secs_f64() * row_factor * col_factor;
    let opt_full = t_opt.as_secs_f64() * row_factor * col_factor;
    let naive_rate = full.merge_rows as f64 / naive_full;
    let opt_rate = full.merge_rows as f64 / opt_full;

    let t = TablePrinter::new(&["quantity", "naive", "optimized", "paper (naive)"]);
    t.row(&[
        "VBAP merge (extrapolated)",
        &format!("{:.1} min", naive_full / 60.0),
        &format!("{:.1} min", opt_full / 60.0),
        "12 min",
    ]);
    t.row(&[
        "merged updates/second",
        &format!("{naive_rate:.0}"),
        &format!("{opt_rate:.0}"),
        "~1,000",
    ]);
    t.row(&[
        "monthly merge, 1.5TB system",
        &format!("{:.1} h", naive_full / 60.0 / 60.0 * 100.0), // paper: VBAP is ~1% of 1.5TB
        &format!("{:.1} h", opt_full / 60.0 / 60.0 * 100.0),
        "~20 h",
    ]);
    println!();
    println!("expected shape: optimized is an order of magnitude faster than naive, turning");
    println!("the ~20 h/month merge burden into low single-digit hours (the paper's 30x");
    println!("headline combines algorithm + parallelization vs unoptimized serial code).");
}

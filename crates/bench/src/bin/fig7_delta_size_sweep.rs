//! Figure 7: update cost (cycles per tuple) for various delta partition
//! sizes — unoptimized vs optimized merge, broken into Update-Delta, Step 1
//! and Step 2.
//!
//! Paper setup: N_M = 100M tuples, lambda_M = lambda_D = 10%, E_j = 8 bytes,
//! N_C = 300 columns, N_D from 500K (0.5%) to 8M (8%), both implementations
//! parallelized on a 2x6-core Xeon.
//!
//! Default here: N_M = 10M on all cores (override with `--nm`, `--threads`;
//! the y-axis is already normalized per tuple, so the shape is comparable).
//! Expected shape (paper): optimized Step 2 is ~9-10x cheaper than
//! unoptimized Step 2, which dominates the unoptimized bar and is flat in
//! N_D; the delta update share grows to 30-55% of the optimized total as
//! N_D grows.

use hyrise_bench::{
    banner, build_column, cpt, default_threads, delta_values, fmt_count, quick_hz,
    time_delta_updates, Args, TablePrinter,
};
use hyrise_core::{merge_column_naive, parallel::merge_column_parallel};

fn main() {
    let args = Args::from_env();
    let n_m = args.usize("nm", 10_000_000);
    let lambda = args.f64("lambda", 0.10);
    let threads = args.usize("threads", default_threads());
    let hz = quick_hz();
    let fractions: Vec<f64> = if args.flag("quick") {
        vec![0.005, 0.02, 0.08]
    } else {
        vec![0.005, 0.01, 0.02, 0.04, 0.08]
    };

    banner(
        "Figure 7 — update cost vs delta partition size (UnOpt vs Opt)",
        "N_M=100M, lambda=10%, E_j=8B, N_D=0.5%..8%, both merges parallelized",
        &format!(
            "N_M={}, lambda={:.0}%, E_j=8B, {} threads, {:.2} GHz",
            fmt_count(n_m),
            lambda * 100.0,
            threads,
            hz / 1e9
        ),
    );

    let t = TablePrinter::new(&[
        "N_D",
        "updDelta cpt",
        "unopt S1",
        "unopt S2",
        "opt S1",
        "opt S2",
        "unopt total",
        "opt total",
        "S2 speedup",
        "merge speedup",
    ]);

    // Main partition is reused across delta sizes (same as the paper's
    // fixed 100M-tuple main).
    let (main, _) = build_column::<u64>(n_m, 1, lambda, lambda, 7);
    let u_m = main.dictionary().len();

    for f in fractions {
        let n_d = ((n_m as f64) * f) as usize;
        let vals = delta_values::<u64>(n_d, lambda, u_m, 1000 + (f * 1e4) as u64);
        let (delta, t_u) = time_delta_updates(&vals);
        let total = n_m + n_d;

        let naive = merge_column_naive(&main, &delta, threads);
        let opt = merge_column_parallel(&main, &delta, threads);
        debug_assert_eq!(naive.main.dictionary().len(), opt.main.dictionary().len());

        let upd = cpt(t_u, total, hz);
        let n1 = naive.stats.step1_cycles_per_tuple(hz);
        let n2 = naive.stats.step2_cycles_per_tuple(hz);
        let o1 = opt.stats.step1_cycles_per_tuple(hz);
        let o2 = opt.stats.step2_cycles_per_tuple(hz);
        t.row(&[
            &fmt_count(n_d),
            &format!("{upd:.2}"),
            &format!("{n1:.2}"),
            &format!("{n2:.2}"),
            &format!("{o1:.2}"),
            &format!("{o2:.2}"),
            &format!("{:.2}", upd + n1 + n2),
            &format!("{:.2}", upd + o1 + o2),
            &format!("{:.1}x", n2 / o2.max(1e-12)),
            &format!("{:.1}x", (n1 + n2) / (o1 + o2).max(1e-12)),
        ]);
    }
    println!();
    println!("paper reference: optimized Step 2 is 9-10x cheaper than unoptimized; the");
    println!("unoptimized Step 2 dominates its total and is ~flat per tuple across N_D;");
    println!("Update-Delta grows to 30-55% of the optimized total at larger deltas.");
}

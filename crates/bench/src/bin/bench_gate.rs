//! The CI perf-regression gate CLI (see [`hyrise_bench::gate`]).
//!
//! ```text
//! # Fail (exit 1) on any bench whose median regressed >25% vs baseline:
//! bench_gate check bench_output.txt
//!
//! # Rewrite the committed baseline from a fresh run's output:
//! bench_gate update bench_output.txt
//! ```
//!
//! Flags: `--baseline <path>` (default `BENCH_baseline.json`),
//! `--tolerance <frac>` (default `0.25`; per-entry overrides in
//! [`hyrise_bench::gate::TOLERANCE_OVERRIDES`] take precedence — e.g.
//! `wal_append/fsync/*` is gated at 50% because its median tracks the
//! runner's device sync latency). The input file is the combined
//! stdout of the gated `cargo bench` runs —
//! `scripts/refresh_bench_baseline.sh` produces both the run and the
//! baseline in one command.

use hyrise_bench::gate::{compare, parse_bench_output, parse_json, to_json};
use hyrise_bench::Args;

fn fail(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mode, input) = match (argv.first().map(String::as_str), argv.get(1)) {
        (Some(m @ ("check" | "update")), Some(path)) if !path.starts_with("--") => {
            (m.to_string(), path.clone())
        }
        _ => fail(
            "usage: bench_gate <check|update> <bench-output.txt> [--baseline p] [--tolerance f]",
        ),
    };
    let args = Args::from_env(); // flag parsing only; positionals become junk keys
    let baseline_path = args.string("baseline", "BENCH_baseline.json");
    let tolerance = args.f64("tolerance", 0.25);

    let output = std::fs::read_to_string(&input)
        .unwrap_or_else(|e| fail(&format!("cannot read bench output {input}: {e}")));
    let current = parse_bench_output(&output);
    if current.is_empty() {
        fail(&format!("no `time: [..]` bench lines found in {input}"));
    }
    println!(
        "bench_gate: parsed {} bench results from {input}",
        current.len()
    );

    match mode.as_str() {
        "update" => {
            std::fs::write(&baseline_path, to_json(&current))
                .unwrap_or_else(|e| fail(&format!("cannot write {baseline_path}: {e}")));
            println!(
                "bench_gate: wrote {} medians to {baseline_path}",
                current.len()
            );
        }
        "check" => {
            let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
                fail(&format!(
                    "cannot read baseline {baseline_path}: {e}\n\
                     (run scripts/refresh_bench_baseline.sh to create it)"
                ))
            });
            let baseline = parse_json(&text).unwrap_or_else(|e| fail(&e));
            let report = compare(&baseline, &current, tolerance);
            for d in &report.passed {
                println!(
                    "  ok      {:<45} {:>12.1} ns vs {:>12.1} ns  ({:+.1}%)",
                    d.name,
                    d.current_ns,
                    d.baseline_ns,
                    (d.ratio() - 1.0) * 100.0
                );
            }
            for name in &report.missing_in_baseline {
                println!("  new     {name:<45} (not in baseline; refresh to start gating it)");
            }
            for name in &report.missing_in_run {
                println!("  absent  {name:<45} (in baseline but not in this run)");
            }
            for d in &report.regressions {
                println!(
                    "  REGRESS {:<45} {:>12.1} ns vs {:>12.1} ns  ({:+.1}% > +{:.0}%)",
                    d.name,
                    d.current_ns,
                    d.baseline_ns,
                    (d.ratio() - 1.0) * 100.0,
                    d.tolerance * 100.0
                );
            }
            if !report.ok() {
                eprintln!(
                    "bench_gate: FAIL — {} bench(es) regressed past their tolerance vs {}",
                    report.regressions.len(),
                    baseline_path
                );
                eprintln!(
                    "bench_gate: if the slowdown is intended, refresh the baseline: \
                     scripts/refresh_bench_baseline.sh"
                );
                std::process::exit(1);
            }
            println!(
                "bench_gate: PASS — {} gated, {} new, {} absent (tolerance +{:.0}%)",
                report.passed.len(),
                report.missing_in_baseline.len(),
                report.missing_in_run.len(),
                tolerance * 100.0
            );
        }
        _ => unreachable!("mode validated above"),
    }
}

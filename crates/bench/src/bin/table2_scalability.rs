//! Table 2: parallel scalability of each phase (Update Delta, Step 1,
//! Step 2) at 1% and 100% unique values — serial vs multi-threaded cost in
//! cycles per tuple and the resulting speedup.
//!
//! Paper setup: N_M = 100M, N_D = 1M, E_j = 8B; 1 thread vs 6 threads on one
//! socket (plus a 2-socket column we cannot reproduce on a single-socket
//! machine — we report total-machine scaling instead and say so).
//!
//! Paper reference values (cycles/tuple):
//! ```text
//! 1%   Update Delta 4.52 -> 0.87 (5.2x)   Step1 1.29 -> 0.30 (4.3x)   Step2 3.89 -> 1.85 (2.1x)
//! 100% Update Delta 20.63 -> 4.21 (4.9x)  Step1 20.92 -> 6.97 (3.0x)  Step2 66.21 -> 15.0 (4.4x)
//! ```

use hyrise_bench::{
    banner, build_column, cpt, default_threads, delta_values, fmt_count, quick_hz,
    time_delta_updates, Args, TablePrinter,
};
use hyrise_core::parallel::merge_column_parallel;
use std::time::Duration;

/// Update-delta parallelized over columns (the paper: "we parallelize over
/// the different columns being updated"): `threads` columns inserted
/// concurrently, cost charged per column.
fn parallel_delta_update(vals: &[u64], threads: usize) -> Duration {
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut d = hyrise_storage::DeltaPartition::new();
                for v in vals {
                    d.insert(*v);
                }
                std::hint::black_box(d.len());
            });
        }
    });
    t0.elapsed()
}

fn main() {
    let args = Args::from_env();
    let n_m = args.usize("nm", 10_000_000);
    let n_d = args.usize("nd", n_m / 10 / 10); // 1% of N_M, matching paper's 1M of 100M
    let nt = args.usize("threads", default_threads().min(6)); // paper compares 1T vs 6T
    let hz = quick_hz();

    banner(
        "Table 2 — parallel scalability per step (1T vs NT)",
        "N_M=100M, N_D=1M, E_j=8B; 1 vs 6 threads on one socket; 2-socket scaling 1.8-2.0x",
        &format!(
            "N_M={}, N_D={}, 1 vs {} threads, {:.2} GHz (single machine; no socket column)",
            fmt_count(n_m),
            fmt_count(n_d),
            nt,
            hz / 1e9
        ),
    );

    type PaperRows = [(f64, f64, f64); 3];
    let paper: [(&str, PaperRows); 2] = [
        (
            "1%",
            [(4.52, 0.87, 5.2), (1.29, 0.30, 4.3), (3.89, 1.85, 2.1)],
        ),
        (
            "100%",
            [(20.63, 4.21, 4.9), (20.92, 6.97, 3.0), (66.21, 15.0, 4.4)],
        ),
    ];

    for (case, (label, paper_rows)) in [(0.01f64, paper[0]), (1.0, paper[1])] {
        let lambda = case;
        println!("--- {} unique values ---", label);
        let t = TablePrinter::new(&[
            "step",
            "1T cpt",
            &format!("{nt}T cpt"),
            "scaling",
            "paper 1T",
            "paper 6T",
            "paper scaling",
        ]);
        let (main, _) = build_column::<u64>(n_m, 1, lambda, lambda, 21);
        let vals = delta_values::<u64>(n_d, lambda, main.dictionary().len(), 22);
        let total = n_m + n_d;

        // Update Delta: per-column cost with 1 column serially vs `nt`
        // columns concurrently (the paper's column-parallel scheme).
        let (_, t1) = time_delta_updates(&vals);
        let t_par = parallel_delta_update(&vals, nt);
        let upd1 = cpt(t1, total, hz);
        let upd_nt = cpt(t_par, total, hz); // nt columns done in t_par => per-column cost /nt... see below
                                            // t_par processed nt columns; per-column wall cost is t_par, but the
                                            // per-column *throughput* cost is t_par / nt.
        let upd_nt = upd_nt / nt as f64;

        let (delta, _) = time_delta_updates(&vals);
        let serial = merge_column_parallel(&main, &delta, 1);
        let par = merge_column_parallel(&main, &delta, nt);

        let rows = [
            ("Update Delta", upd1, upd_nt),
            (
                "Step 1",
                serial.stats.step1_cycles_per_tuple(hz),
                par.stats.step1_cycles_per_tuple(hz),
            ),
            (
                "Step 2",
                serial.stats.step2_cycles_per_tuple(hz),
                par.stats.step2_cycles_per_tuple(hz),
            ),
        ];
        for ((name, c1, cn), (p1, p6, ps)) in rows.iter().zip(paper_rows) {
            t.row(&[
                name,
                &format!("{c1:.2}"),
                &format!("{cn:.2}"),
                &format!("{:.1}x", c1 / cn.max(1e-12)),
                &format!("{p1:.2}"),
                &format!("{p6:.2}"),
                &format!("{ps:.1}x"),
            ]);
        }
        println!();
    }
    println!("expected shape: every step speeds up with threads; Step 2 scales worst at 1%");
    println!("unique (bandwidth-bound streaming) and well at 100% (latency-bound gathers");
    println!("turn into parallel misses); Step 1 pays the 3-phase double-comparison tax.");
}

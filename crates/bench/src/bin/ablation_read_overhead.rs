//! Ablation: read performance vs delta partition size.
//!
//! Section 4 motivates frequent merging with a read-side argument: "a large
//! delta partition ... implies a slower read performance due to the fact
//! that the delta partition stores uncompressed values ... (forced
//! materialization), thereby adding overhead to the read performance." The
//! paper never plots this trade-off; this ablation does, quantifying the
//! pressure that makes the fast merge necessary.
//!
//! The bandwidth asymmetry: with lambda = 1% a 10M-tuple main stores ~17
//! bits/tuple (~2.1 B) while the delta stores 8 B/tuple uncompressed plus
//! CSB+ overhead — a full-column aggregate touches ~4x the bytes per delta
//! tuple, and point/range reads on the delta add tree walks.

use hyrise_bench::{
    banner, build_column, default_threads, delta_values, fmt_count, quick_hz, Args, TablePrinter,
};
use hyrise_core::parallel::merge_column_parallel;
use hyrise_query::{AttributeExecutor, Query};
use hyrise_storage::{Attribute, ValidityBitmap};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let n_m = args.usize("nm", 10_000_000);
    let lambda = args.f64("lambda", 0.01);
    let reps = args.usize("reps", 3);
    let threads = args.usize("threads", default_threads());
    let hz = quick_hz();

    banner(
        "Ablation — read query cost vs delta size (the Section 4 trade-off)",
        "not plotted in the paper; motivates the merge trigger N_D > fraction * N_M",
        &format!(
            "N_M={}, lambda={:.0}%, deltas 0%..100%, {:.2} GHz",
            fmt_count(n_m),
            lambda * 100.0,
            hz / 1e9
        ),
    );

    let t = TablePrinter::new(&[
        "N_D/N_M",
        "par-sum ns/t",
        "par-sum slwdn",
        "1T-sum ns/t",
        "range ms",
        "memory MB",
        "mem amplif.",
    ]);
    let (main, _) = build_column::<u64>(n_m, 1, lambda, lambda, 66);
    let u_m = main.dictionary().len();
    let range_lo = main.dictionary().value_at((u_m / 4) as u32);
    let range_hi = main
        .dictionary()
        .value_at((u_m / 4 + u_m / 50 + 1).min(u_m - 1) as u32);

    let mut base_psum = 0.0f64;
    let mut base_mem = 0.0f64;
    for frac_pct in [0usize, 10, 25, 50, 100] {
        let n_d = n_m * frac_pct / 100;
        let mut attr = Attribute::from_main(main.clone());
        if frac_pct > 0 {
            for v in delta_values::<u64>(n_d, lambda, u_m, 67) {
                attr.append(v);
            }
        }
        let validity = ValidityBitmap::all_valid(attr.len());
        let tuples = attr.len();

        // Bandwidth-bound path: all cores scanning. The main partition moves
        // E_C/8 bytes per tuple, the delta E_j = 8 bytes per tuple.
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(Query::scan(0).sum(0).with_threads(threads).run(&attr).sum());
        }
        let psum_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64 / tuples as f64;

        // Compute-bound single-thread scan for contrast.
        let t0 = Instant::now();
        std::hint::black_box(
            Query::scan(0)
                .sum(0)
                .run(&AttributeExecutor::with_validity(&attr, &validity))
                .sum(),
        );
        let sum_ns = t0.elapsed().as_secs_f64() * 1e9 / tuples as f64;

        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(
                Query::scan(0)
                    .between(range_lo, range_hi)
                    .run(&attr)
                    .into_rows()
                    .len(),
            );
        }
        let range_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

        let mem = attr.memory_bytes() as f64 / 1e6;
        if frac_pct == 0 {
            base_psum = psum_ns;
            base_mem = mem;
        }
        t.row(&[
            &format!("{frac_pct}%"),
            &format!("{psum_ns:.3}"),
            &format!("{:.2}x", psum_ns / base_psum.max(1e-12)),
            &format!("{sum_ns:.2}"),
            &format!("{range_ms:.2}"),
            &format!("{mem:.0}"),
            &format!("{:.2}x", mem / base_mem.max(1e-12)),
        ]);
    }
    println!();
    println!("reading the table: the *parallel* (bandwidth-bound) scan degrades with delta");
    println!(
        "share because delta tuples move 8 B vs ~{:.1} B packed; the 1T scan is",
        (main.code_bits() as f64) / 8.0
    );
    println!("compute-bound on this machine and barely moves — the paper's 2011 Xeon had");
    println!("~10x less bandwidth per core, making even 1T scans bandwidth-sensitive.");
    println!("Memory amplification is the second §4 cost: uncompressed values + CSB+ tree.");
    println!();

    // The payoff: merging the largest delta restores baseline per-tuple cost.
    let n_d = n_m;
    let mut attr = Attribute::from_main(main.clone());
    for v in delta_values::<u64>(n_d, lambda, u_m, 67) {
        attr.append(v);
    }
    let t0 = Instant::now();
    let merged = merge_column_parallel(attr.main(), attr.delta(), threads).main;
    let merge_ms = t0.elapsed().as_secs_f64() * 1e3;
    let merged_attr: Attribute<u64> = Attribute::from_main(merged);
    let validity = ValidityBitmap::all_valid(merged_attr.len());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            Query::scan(0)
                .sum(0)
                .run(&AttributeExecutor::with_validity(&merged_attr, &validity))
                .sum(),
        );
    }
    let after = t0.elapsed().as_secs_f64() * 1e9 / reps as f64 / merged_attr.len() as f64;
    println!("after merging the 100% delta (merge took {merge_ms:.0} ms): sum costs {after:.2}");
    println!("ns/tuple again (~the 0% baseline) and memory shrinks back to packed codes —");
    println!("the read-side payoff that justifies paying the merge cost.");
}

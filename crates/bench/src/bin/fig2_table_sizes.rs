//! Figure 2: all 73,979 tables clustered by number of rows.
//!
//! Emits the reconstructed histogram and validates that sampling table sizes
//! from the model reproduces it.

use hyrise_bench::{banner, Args, TablePrinter};
use hyrise_workload::TableSizeModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let samples = args.usize("samples", 200_000);
    banner(
        "Figure 2 — tables clustered by number of rows",
        "73,979 tables of one SAP Business Suite installation",
        &format!("reconstructed bucket counts + {samples} sampled table sizes"),
    );

    let t = TablePrinter::new(&[
        "rows",
        "tables (paper)",
        "sampled fraction",
        "model fraction",
    ]);
    let total = TableSizeModel::total_tables() as f64;

    // Sample and bucket.
    let mut rng = StdRng::seed_from_u64(2);
    let mut sampled = [0usize; 8];
    for _ in 0..samples {
        let rows = TableSizeModel::sample_rows(&mut rng);
        let bucket = TableSizeModel::BUCKETS
            .iter()
            .position(|(_, hi, _)| rows <= *hi)
            .expect("buckets cover the domain");
        sampled[bucket] += 1;
    }

    for (i, (label, _, count)) in TableSizeModel::BUCKETS.iter().enumerate() {
        t.row(&[
            label,
            &count.to_string(),
            &format!("{:.2}%", sampled[i] as f64 / samples as f64 * 100.0),
            &format!("{:.2}%", *count as f64 / total * 100.0),
        ]);
    }
    println!();
    println!(
        "total tables: {} (paper: 73,979; counts reconstructed from the arXiv",
        TableSizeModel::total_tables()
    );
    println!("text — they sum exactly and 144 tables exceed 10M rows as stated).");
}

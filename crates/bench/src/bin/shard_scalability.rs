//! Shard-count scalability sweep (the Table-2 exercise lifted to the
//! sharded layer): one logical table partitioned over 1/2/4/8 shards,
//! serving concurrent routed inserts and cross-shard scans while a
//! [`ShardedScheduler`] grants at most K merge slots across shards.
//!
//! The paper stops at one table on one box; this harness measures what the
//! ROADMAP's scale-out step buys: per-shard merges touch `1/N`-th of the
//! data, writers to different shards do not contend on one table lock, and
//! scans fan out. On a single-core container expect flat write throughput
//! and growing merge counts (merges get smaller and cheaper as N grows);
//! on multi-core hardware expect write throughput to climb with N.
//!
//! ```text
//! cargo run --release -p hyrise-bench --bin shard_scalability -- \
//!     --rows 200000 --writes 50000 --max-shards 8 --merge-slots 2
//! ```

use hyrise_bench::{banner, default_threads, fmt_count, Args, TablePrinter};
use hyrise_core::shard::{ShardedScheduler, ShardedTable};
use hyrise_core::MergePolicy;
use hyrise_query::Query;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEY_DOMAIN: u64 = 10_000;

fn row(i: u64) -> [u64; 2] {
    [i % KEY_DOMAIN, i.wrapping_mul(2654435761) % 1_000_000]
}

/// One sweep point: returns (preload ms, write upd/s, scans/s, merges,
/// max delta fraction at end, total rows at end, per-stage merge micros
/// summed over shards: step1a/step1b/step2, governor grant trace).
#[allow(clippy::type_complexity)]
fn sweep(
    shards: usize,
    rows: usize,
    writes: usize,
    merge_slots: usize,
    trigger: f64,
    threads: usize,
) -> (
    u128,
    f64,
    f64,
    u64,
    f64,
    usize,
    [u64; 3],
    Vec<hyrise_core::governor::GrantRecord>,
) {
    let table = Arc::new(
        ShardedTable::<u64>::builder()
            .shards(shards)
            .columns(2)
            .build()
            .unwrap(),
    );
    let t0 = Instant::now();
    let preload: Vec<[u64; 2]> = (0..rows as u64).map(row).collect();
    table.insert_rows(&preload).unwrap();
    table.merge_all(threads).unwrap();
    let preload_ms = t0.elapsed().as_millis();

    let policy = MergePolicy {
        delta_fraction: trigger,
        threads: 1,
        ..MergePolicy::default()
    };
    let sched = ShardedScheduler::spawn(
        Arc::clone(&table),
        policy,
        merge_slots,
        Duration::from_millis(1),
    );

    // One writer per shard plus one fan-out scanner, racing.
    let stop = Arc::new(AtomicBool::new(false));
    let scans = Arc::new(AtomicU64::new(0));
    let t1 = Instant::now();
    let mut write_secs = 0f64;
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..shards)
            .map(|w| {
                let table = Arc::clone(&table);
                s.spawn(move || {
                    let base = (rows + w * writes) as u64;
                    for chunk in (0..writes as u64).collect::<Vec<_>>().chunks(256) {
                        let batch: Vec<[u64; 2]> = chunk.iter().map(|i| row(base + i)).collect();
                        table.insert_rows(&batch).unwrap();
                    }
                })
            })
            .collect();
        {
            let (table, stop, scans) = (Arc::clone(&table), Arc::clone(&stop), Arc::clone(&scans));
            s.spawn(move || {
                let mut probe = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(
                        Query::scan(0)
                            .eq(probe % KEY_DOMAIN)
                            .run(&*table)
                            .into_rows(),
                    );
                    std::hint::black_box(Query::scan(0).sum(1).run(&*table).sum());
                    scans.fetch_add(2, Ordering::Relaxed);
                    probe += 1;
                }
            });
        }
        for h in writers {
            h.join().expect("writer");
        }
        write_secs = t1.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
    });

    // Drain to the trigger bound, then freeze the scheduler's counters.
    let deadline = Instant::now() + Duration::from_secs(30);
    while table.max_delta_fraction() > trigger && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    sched.shutdown();
    let stats = sched.stats();
    let stages = stats.per_shard.iter().fold([0u64; 3], |acc, s| {
        [
            acc[0] + s.step1a_micros,
            acc[1] + s.step1b_micros,
            acc[2] + s.step2_micros,
        ]
    });
    (
        preload_ms,
        (shards * writes) as f64 / write_secs,
        scans.load(Ordering::Relaxed) as f64 / write_secs,
        stats.merges,
        table.max_delta_fraction(),
        table.row_count(),
        stages,
        stats.grants,
    )
}

/// Compress a grant trace into a per-round summary column: the dominant
/// signal with its share of rounds, plus the most recent grant shape.
fn governor_column(grants: &[hyrise_core::governor::GrantRecord]) -> String {
    use std::collections::HashMap;
    let Some(last) = grants.last() else {
        return "-".into();
    };
    let mut by_signal: HashMap<String, usize> = HashMap::new();
    for g in grants {
        *by_signal.entry(g.signal.to_string()).or_default() += 1;
    }
    let (dominant, n) = by_signal
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .expect("non-empty trace");
    format!(
        "{dominant} {n}/{} · {}/t{}",
        grants.len(),
        last.strategy.algo(),
        last.threads
    )
}

fn main() {
    let args = Args::from_env();
    let rows = args.usize("rows", 200_000);
    let writes = args.usize("writes", 50_000);
    let max_shards = args.usize("max-shards", 8);
    let merge_slots = args.usize("merge-slots", 2);
    let trigger = args.f64("trigger", 0.02);
    let threads = args.usize("threads", default_threads());

    banner(
        "Shard scalability — concurrent inserts + fan-out scans + K-slot merges",
        "no paper reference: the paper evaluates one table on one box (Secs 3/9)",
        &format!(
            "preload {} rows, {} writes per writer (one writer per shard), trigger {trigger}, \
             {merge_slots} merge slots, {threads} HW threads",
            fmt_count(rows),
            fmt_count(writes),
        ),
    );

    let t = TablePrinter::new(&[
        "shards",
        "preload ms",
        "write upd/s",
        "scan/s",
        "merges",
        "s1a ms",
        "s1b ms",
        "s2 ms",
        "end frac",
        "end rows",
        "governor",
    ]);

    let mut last_trace = Vec::new();
    let mut shards = 1usize;
    while shards <= max_shards {
        let (pre_ms, upd_s, scan_s, merges, frac, end_rows, stages, grants) =
            sweep(shards, rows, writes, merge_slots, trigger, threads);
        t.row(&[
            &shards.to_string(),
            &pre_ms.to_string(),
            &format!("{upd_s:.0}"),
            &format!("{scan_s:.1}"),
            &merges.to_string(),
            &format!("{:.1}", stages[0] as f64 / 1e3),
            &format!("{:.1}", stages[1] as f64 / 1e3),
            &format!("{:.1}", stages[2] as f64 / 1e3),
            &format!("{frac:.4}"),
            &fmt_count(end_rows),
            &governor_column(&grants),
        ]);
        last_trace = grants;
        shards *= 2;
    }
    println!();
    println!("governor trace of the last sweep point (strategy/threads/budget K,");
    println!("triggering signal, worst selected delta fraction; newest last):");
    let tail = last_trace.len().saturating_sub(8);
    for (i, g) in last_trace.iter().enumerate().skip(tail) {
        println!("  round {:>3}: {g}", i + 1);
    }
    if last_trace.is_empty() {
        println!("  (no merge rounds ran)");
    }
    println!();
    println!("expected shape: merges grow with shard count (each merge covers 1/N of the");
    println!("data); write throughput grows with cores available, flat on one core.");
    println!("s1a/s1b/s2 stack like the paper's Figure 7/8 stage bars (per-shard");
    println!("ShardMergeStats summed): Step 2 dominates, Step 1b grows with |U|.");
    println!("the governor column is dominant-signal share · last grant; the scan");
    println!("thread keeps the read counters busy, so expect contended/baseline");
    println!("rounds while writers run and read-idle ones during the drain.");
}

//! Section 7.4: comparison with the analytical model.
//!
//! The paper validates that measured per-step merge costs land within 1–10%
//! of the model's compute/bandwidth bounds (Equations 8–15) when fed the
//! machine's measured streaming bandwidth, random-access bandwidth and LLC
//! size. This harness calibrates those constants with micro-benchmarks
//! (`hyrise_core::model::calibrate`), runs the parallel merge at the
//! Table-2 operating points, and prints measured vs predicted.

use hyrise_bench::{
    banner, build_column, default_threads, delta_values, fmt_count, time_delta_updates, Args,
    TablePrinter,
};
use hyrise_core::model::{calibrate, MergeScenario};
use hyrise_core::parallel::merge_column_parallel;

fn main() {
    let args = Args::from_env();
    let n_m = args.usize("nm", 10_000_000);
    let n_d = args.usize("nd", n_m / 100);
    let threads = args.usize("threads", default_threads());

    println!("calibrating machine profile ({threads} threads)...");
    let m = calibrate(threads);
    println!(
        "  hz={:.2} GHz  streaming={:.1} B/cyc  random={:.1} B/cyc  LLC={}",
        m.hz / 1e9,
        m.streaming_bytes_per_cycle,
        m.random_bytes_per_cycle,
        fmt_count(m.llc_bytes)
    );
    println!();

    banner(
        "Section 7.4 — analytical model vs measurement",
        "N_M=100M, N_D=1M, E_j=8B; model within 1-10% of measured per-step cost",
        &format!(
            "N_M={}, N_D={}, {} threads, calibrated constants above",
            fmt_count(n_m),
            fmt_count(n_d),
            threads
        ),
    );

    let t = TablePrinter::new(&[
        "unique",
        "step",
        "measured cpt",
        "model cpt",
        "error",
        "regime",
    ]);
    for lambda in [0.01f64, 1.0] {
        let (main, _) = build_column::<u64>(n_m, 1, lambda, lambda, 55);
        let vals = delta_values::<u64>(n_d, lambda, main.dictionary().len(), 56);
        let (delta, _) = time_delta_updates(&vals);
        let out = merge_column_parallel(&main, &delta, threads);
        let scenario = MergeScenario::from_stats(&out.stats, 8);
        let pred = m.predict(&scenario);

        let rows = [
            (
                "Step 1",
                out.stats.step1_cycles_per_tuple(m.hz),
                pred.step1a_cpt + pred.step1b_cpt,
                if pred.step1b_compute_bound {
                    "compute"
                } else {
                    "bandwidth"
                },
            ),
            (
                "Step 2",
                out.stats.step2_cycles_per_tuple(m.hz),
                pred.step2_cpt,
                if pred.aux_fits_cache {
                    "aux-in-cache"
                } else {
                    "aux-in-memory"
                },
            ),
        ];
        for (name, measured, model, regime) in rows {
            let err = (measured - model).abs() / model.max(1e-12) * 100.0;
            t.row(&[
                &format!("{:.0}%", lambda * 100.0),
                name,
                &format!("{measured:.2}"),
                &format!("{model:.2}"),
                &format!("{err:.0}%"),
                regime,
            ]);
        }
    }
    println!();
    println!("paper reference (their machine): Step 1 predicted 6.9 vs measured ~6.97 cpt");
    println!("(<1%); Step 2 predicted 14.2 vs measured 15.0 cpt (5.5%) at 100% unique;");
    println!("Step 2 predicted 1.73 vs measured 1.85 cpt (7%) at 1% unique. Agreement");
    println!("within a few tens of percent on other machines still validates the model's");
    println!("regime predictions (which bound is active and where the cache cliff sits).");
}

//! Figure 1: query-type distribution of OLTP and OLAP customer systems vs
//! TPC-C.
//!
//! The paper derives these from customer database statistics; we re-emit the
//! calibrated model and verify, by sampling, that a generated workload
//! reproduces it (which is what the mixed-workload example consumes).

use hyrise_bench::{banner, Args, TablePrinter};
use hyrise_workload::{QueryMix, QueryType};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let samples = args.usize("samples", 1_000_000);
    banner(
        "Figure 1 — workload query-type distribution",
        "query statistics from 12 SAP Business Suite customer systems + TPC-C",
        &format!("calibrated mix model, verified by sampling {samples} queries per workload"),
    );

    let mixes = [QueryMix::oltp(), QueryMix::olap(), QueryMix::tpcc()];
    let t = TablePrinter::new(&[
        "workload",
        "lookup%",
        "scan%",
        "range%",
        "insert%",
        "modif%",
        "delete%",
        "writes%",
        "sampled-writes%",
    ]);
    let mut rng = StdRng::seed_from_u64(1);
    for mix in mixes {
        let writes = (0..samples)
            .filter(|_| mix.sample(&mut rng).is_write())
            .count();
        let sampled = writes as f64 / samples as f64 * 100.0;
        let p = mix.percent;
        t.row(&[
            mix.name,
            &format!("{:.1}", p[0]),
            &format!("{:.1}", p[1]),
            &format!("{:.1}", p[2]),
            &format!("{:.1}", p[3]),
            &format!("{:.1}", p[4]),
            &format!("{:.1}", p[5]),
            &format!("{:.1}", mix.write_fraction() * 100.0),
            &format!("{sampled:.1}"),
        ]);
    }
    println!();
    println!("paper-stated constraints: OLTP ~17% writes (>80% reads), OLAP ~7% writes");
    println!("(>90% reads), TPC-C 46% writes. Per-category splits estimated from the");
    println!("figure; the stated aggregates hold exactly (see workload::enterprise tests).");

    let _ = QueryType::ALL; // silence unused when samples == 0
}

//! Figure 4: distinct values per column in Inventory Management and
//! Financial Accounting.

use hyrise_bench::{banner, Args, TablePrinter};
use hyrise_workload::DistinctValueModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let samples = args.usize("samples", 100_000);
    banner(
        "Figure 4 — distinct values per column by application domain",
        "21 most active tables per customer; 32B records, 400M distinct values inspected",
        &format!("calibrated bucket model, verified by sampling {samples} columns per domain"),
    );

    let domains = [
        DistinctValueModel::inventory_management(),
        DistinctValueModel::financial_accounting(),
    ];
    let t = TablePrinter::new(&[
        "domain",
        "1-32 (paper)",
        "sampled",
        "33-1023 (paper)",
        "sampled",
        "1024+ (paper)",
        "sampled",
    ]);
    let mut rng = StdRng::seed_from_u64(4);
    for d in domains {
        let mut buckets = [0usize; 3];
        for _ in 0..samples {
            let v = d.sample_distinct(&mut rng, u64::MAX);
            let b = if v <= 32 {
                0
            } else if v <= 1023 {
                1
            } else {
                2
            };
            buckets[b] += 1;
        }
        let pct = |b: usize| format!("{:.1}%", buckets[b] as f64 / samples as f64 * 100.0);
        t.row(&[
            d.name,
            &format!("{:.0}%", d.pct_small),
            &pct(0),
            &format!("{:.0}%", d.pct_medium),
            &pct(1),
            &format!("{:.0}%", d.pct_large),
            &pct(2),
        ]);
    }
    println!();
    println!("\"Most of the columns in financial accounting and inventory management work");
    println!("with a very limited set of distinct values\" — the dictionary-encoding premise.");
}

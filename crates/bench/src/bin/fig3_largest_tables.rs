//! Figure 3: the 144 tables with more than 10 million rows — rows and
//! columns per table, sorted by row count.

use hyrise_bench::{banner, fmt_count, Args, TablePrinter};
use hyrise_workload::LargeTableModel;

fn main() {
    let args = Args::from_env();
    let show = args.usize("show", 20);
    banner(
        "Figure 3 — the 144 largest tables (rows & columns)",
        "rows 10M..1.6B avg 65M; columns 2..399 avg 70 (one customer system)",
        &format!(
            "deterministic reconstruction matching those statistics; showing every {}th",
            144 / show.max(1)
        ),
    );

    let model = LargeTableModel::new();
    let t = TablePrinter::new(&["position", "rows", "columns"]);
    let step = (LargeTableModel::COUNT / show.max(1)).max(1);
    for (i, (rows, cols)) in model.tables().iter().enumerate() {
        if i % step == 0 || i == LargeTableModel::COUNT - 1 {
            t.row(&[
                &(i + 1).to_string(),
                &fmt_count(*rows as usize),
                &cols.to_string(),
            ]);
        }
    }
    println!();
    let (max_rows, _) = model.tables()[0];
    let (min_rows, _) = model.tables()[LargeTableModel::COUNT - 1];
    println!(
        "stats: rows {}..{} avg {} (paper: 10M..1.6B avg 65M); columns avg {:.0} (paper: 70)",
        fmt_count(min_rows as usize),
        fmt_count(max_rows as usize),
        fmt_count(model.avg_rows() as usize),
        model.avg_cols(),
    );
}

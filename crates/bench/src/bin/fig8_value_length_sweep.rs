//! Figure 8: update cost for value-lengths of 4, 8 and 16 bytes, delta
//! sizes of 1% and 3% of main, at 1% and 100% unique values.
//!
//! Paper setup: N_M = 100M, N_D in {1M, 3M}, N_C = 300, optimized parallel
//! merge. Default here: N_M = 10M, N_D in {1%, 3%} of N_M (`--nm` to scale
//! up). Expected shape (paper): the delta-update bar grows with E_j and with
//! N_D and dominates at 16 bytes; Step 2 is insensitive to E_j (it moves
//! compressed codes) but jumps when the unique fraction moves the auxiliary
//! tables out of cache; Step 1 grows with unique fraction.

use hyrise_bench::{
    banner, build_column, cpt, default_threads, delta_values, fmt_count, quick_hz,
    time_delta_updates, Args, TablePrinter,
};
use hyrise_core::parallel::merge_column_parallel;
use hyrise_storage::{Value, V16};

fn run_case<V: Value>(
    t: &TablePrinter,
    n_m: usize,
    frac: f64,
    lambda: f64,
    threads: usize,
    hz: f64,
) {
    let n_d = (n_m as f64 * frac) as usize;
    let (main, _) = build_column::<V>(n_m, 1, lambda, lambda, 31);
    let vals = delta_values::<V>(n_d, lambda, main.dictionary().len(), 77);
    let (delta, t_u) = time_delta_updates(&vals);
    let total = n_m + n_d;
    let out = merge_column_parallel(&main, &delta, threads);
    let upd = cpt(t_u, total, hz);
    let s1 = out.stats.step1_cycles_per_tuple(hz);
    let s2 = out.stats.step2_cycles_per_tuple(hz);
    t.row(&[
        &format!("{}B", V::BYTES),
        &fmt_count(n_d),
        &format!("{:.0}%", lambda * 100.0),
        &format!("{upd:.2}"),
        &format!("{s1:.2}"),
        &format!("{s2:.2}"),
        &format!("{:.2}", upd + s1 + s2),
    ]);
}

fn main() {
    let args = Args::from_env();
    let n_m = args.usize("nm", 10_000_000);
    let threads = args.usize("threads", default_threads());
    let hz = quick_hz();
    let fracs: &[f64] = if args.flag("quick") {
        &[0.01]
    } else {
        &[0.01, 0.03]
    };

    banner(
        "Figure 8 — update cost vs value-length (4/8/16B), delta size, uniqueness",
        "N_M=100M, N_D in {1M,3M}, lambda in {1%,100%}, optimized parallel merge",
        &format!(
            "N_M={}, N_D in {{1%,3%}} of N_M, {} threads, {:.2} GHz",
            fmt_count(n_m),
            threads,
            hz / 1e9
        ),
    );

    for lambda in [0.01, 1.0] {
        println!(
            "--- ({}) {}% unique values ---",
            if lambda < 0.5 { "a" } else { "b" },
            lambda * 100.0
        );
        let t = TablePrinter::new(&[
            "E_j",
            "N_D",
            "unique",
            "updDelta cpt",
            "step1 cpt",
            "step2 cpt",
            "total cpt",
        ]);
        for &frac in fracs {
            run_case::<u32>(&t, n_m, frac, lambda, threads, hz);
            run_case::<u64>(&t, n_m, frac, lambda, threads, hz);
            run_case::<V16>(&t, n_m, frac, lambda, threads, hz);
        }
        println!();
    }
    println!("paper reference (100M main): at 1% unique, 16B values raise the delta-update");
    println!("cost from ~1.0 cpt (N_D=1M) to ~3.3 cpt (N_D=3M); at 100% unique the same");
    println!("cells read ~5.1 and ~12.9 cpt. Step 2 is ~1.0 cpt when the auxiliary tables");
    println!("fit in cache and ~8.3 cpt when they do not; Step 1 grows from ~0.1 cpt (1%)");
    println!("to ~3.3 cpt (100%) for 8B values at N_D=1M.");
}

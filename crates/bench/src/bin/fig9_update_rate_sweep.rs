//! Figure 9: sustainable update rate (K updates/second) for main partition
//! sizes from 1M to 1B tuples and unique fractions from 0.1% to 100%, with
//! N_D = 1% of N_M, E_j = 8 bytes, N_C = 300.
//!
//! The paper's headline operational result: >81K updates/s when the
//! auxiliary structures are cache-resident, stabilizing around ~7.1K when
//! they are not — always above the 3K low target; above the 18K high target
//! up to 100M rows at <=1% unique.
//!
//! Default here: N_M in {1M, 10M, 100M} (use `--nm-list 1000000,...` or
//! `--full` for the 1B point if you have the RAM: the 1B x 8B column alone
//! is 8 GB before encoding). The update rate is computed per Equation 16
//! from the measured per-column update cost, normalized to N_C = 300
//! (`--cols` to change).

use hyrise_bench::{
    banner, build_column, cpt, default_threads, delta_values, fmt_count, quick_hz,
    time_delta_updates, Args, TablePrinter,
};
use hyrise_core::parallel::merge_column_parallel;
use hyrise_core::rate::{
    updates_per_second, HIGH_TARGET_UPDATES_PER_SEC, LOW_TARGET_UPDATES_PER_SEC,
};

fn main() {
    let args = Args::from_env();
    let threads = args.usize("threads", default_threads());
    let n_c = args.usize("cols", 300);
    let hz = quick_hz();
    let mains: Vec<usize> = if args.flag("full") {
        vec![1_000_000, 10_000_000, 100_000_000, 1_000_000_000]
    } else if args.flag("quick") {
        vec![1_000_000, 10_000_000]
    } else {
        vec![1_000_000, 10_000_000, 100_000_000]
    };
    let lambdas = [0.001, 0.01, 0.10, 1.0];

    banner(
        "Figure 9 — update rate vs main size and unique fraction",
        "N_M=1M..1B, lambda=0.1%..100%, N_D=1% N_M, E_j=8B, N_C=300, 12 cores",
        &format!(
            "N_M in {:?}, N_C={} (Eq. 16 normalization), {} threads, {:.2} GHz",
            mains.iter().map(|n| fmt_count(*n)).collect::<Vec<_>>(),
            n_c,
            threads,
            hz / 1e9
        ),
    );

    let t = TablePrinter::new(&[
        "lambda",
        "N_M",
        "N_D",
        "updDelta cpt",
        "merge cpt",
        "total cpt",
        "aux bytes",
        "K upd/s",
        "vs targets",
    ]);
    for &lambda in &lambdas {
        for &n_m in &mains {
            let n_d = n_m / 100;
            let (main, _) = build_column::<u64>(n_m, 1, lambda, lambda, 9);
            let vals = delta_values::<u64>(n_d, lambda, main.dictionary().len(), 17);
            let (delta, t_u) = time_delta_updates(&vals);
            let total = n_m + n_d;
            let out = merge_column_parallel(&main, &delta, threads);
            let upd = cpt(t_u, total, hz);
            let merge_cpt = out.stats.cycles_per_tuple(hz);
            let total_cpt = upd + merge_cpt;
            let rate = updates_per_second(total_cpt, hz, n_d, total, n_c);
            let aux_bytes = (out.stats.u_m + out.stats.u_d) * 4;
            let vs = if rate >= HIGH_TARGET_UPDATES_PER_SEC {
                ">high(18K)"
            } else if rate >= LOW_TARGET_UPDATES_PER_SEC {
                ">low(3K)"
            } else {
                "BELOW 3K"
            };
            t.row(&[
                &format!("{:.1}%", lambda * 100.0),
                &fmt_count(n_m),
                &fmt_count(n_d),
                &format!("{upd:.2}"),
                &format!("{merge_cpt:.2}"),
                &format!("{total_cpt:.2}"),
                &fmt_count(aux_bytes),
                &format!("{:.1}", rate / 1e3),
                vs,
            ]);
        }
    }
    println!();
    println!("paper reference: >81K upd/s while X_M/X_D fit in LLC; a sharp drop when the");
    println!("aux structures cross the cache size (paper: 2.5MB fits, 30MB does not, 24MB");
    println!("LLC); ~7.1K upd/s floor at bandwidth-bound sizes — above the 3K low target");
    println!("even at 1B tuples; the 18K high target holds to 100M rows at <=1% unique.");
}

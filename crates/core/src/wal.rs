//! The append-only delta write-ahead log, checkpoints, and the merge
//! recovery log.
//!
//! The paper's main-memory design assumes a recoverable delta as the price
//! of its insert-only differential buffer; this module supplies it with
//! three kinds of files under a table's durability directory:
//!
//! * **Segments** (`seg-<base>.wal`): an append-only sequence of
//!   length-prefixed, CRC-checked records — `insert_rows` batches (global
//!   start row id + row-major values), validity flips (deletes / old
//!   versions of updates), and a terminal seal marker. A segment's base is
//!   the global tuple id of its first insert; a merge *freeze* seals the
//!   live segment and rotates to a fresh one whose base is the new tail's
//!   base, so segment boundaries coincide exactly with freeze boundaries.
//! * **The data checkpoint** (`checkpoint.bin`): the dictionary-compressed
//!   mains (sorted dictionary values + packed code words, verbatim) and the
//!   validity bitmap of the checkpointed rows, written atomically
//!   (tmp + rename) when a merge commits its last column. Sealed segments
//!   whose rows the checkpoint covers are then deleted — bounded replay.
//! * **The merge recovery log** (`merge.ckpt` + `staged/col-<c>.bin`):
//!   SAGA-style enumerated step records in the spirit of resumable
//!   branch-merge engines — a begin marker at freeze, advisory per-stage /
//!   per-word-region progress records streamed by the pipeline, and
//!   durable chunk-done records whose staged column outputs let a restarted
//!   process resume a half-finished budgeted merge at its last completed
//!   K-column chunk instead of redoing it.
//!
//! Ordering contract: under the `fsync` policy a batch's insert record is
//! written **and synced** before the batch's tail watermark publishes —
//! visible implies durable. Under `buffered`, the record is written (to the
//! OS, not synced) before the publish, so a process kill preserves it but a
//! power loss may not. In both modes records enter the live segment before
//! their rows publish, which (together with the in-order watermark) is what
//! makes replaying the maximal contiguous row prefix of each segment
//! correct: any row a reader could have seen is at or below that prefix
//! under `fsync`, and rows lost past a gap were never durable.

use crate::error::{Error, Result};
use hyrise_bitpack::BitPackedVec;
use hyrise_storage::{Dictionary, MainPartition, ValidityBitmap, Value};
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Record types inside a segment.
const REC_INSERT: u8 = 1;
const REC_FLIP: u8 = 2;
const REC_SEAL: u8 = 3;

/// Record types inside the merge recovery log.
const MREC_BEGIN: u8 = 1;
const MREC_STEP: u8 = 2;
const MREC_CHUNK: u8 = 3;

/// Upper bound on a single record's payload; a length header above this is
/// corruption, not a real record (guards the replay allocator).
const MAX_RECORD: u32 = 1 << 30;

const SEGMENT_PREFIX: &str = "seg-";
const SEGMENT_SUFFIX: &str = ".wal";
const CHECKPOINT_FILE: &str = "checkpoint.bin";
const MERGE_LOG_FILE: &str = "merge.ckpt";
const STAGED_DIR: &str = "staged";
const MANIFEST_FILE: &str = "TABLE";
const SHARDED_MANIFEST_FILE: &str = "SHARDS";

const CHECKPOINT_MAGIC: &[u8; 8] = b"HYRCKP01";
const STAGED_MAGIC: &[u8; 8] = b"HYRSTG01";
const MANIFEST_MAGIC: &[u8; 8] = b"HYRTBL01";
const SHARDED_MAGIC: &[u8; 8] = b"HYRSHRD1";

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli, hardware-accelerated where available)
// ---------------------------------------------------------------------------
//
// The WAL checksums every insert payload on the append path, so checksum
// speed is a first-order term of the buffered mode's per-row cost. The
// Castagnoli polynomial (0x1EDC6F41) is used instead of IEEE 802.3
// because x86-64 has carried a dedicated instruction for it (SSE4.2
// `crc32`) since Nehalem; the software fallback is slice-by-8.

fn crc_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<Box<[[u32; 256]; 8]>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 8]);
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0x82F6_3B78 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Software CRC32C, slice-by-8.
fn crc32_sw(data: &[u8]) -> u32 {
    let t = crc_tables();
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = c ^ u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c = !0u64;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let word = u64::from_le_bytes(ch.try_into().expect("8 bytes"));
        c = _mm_crc32_u64(c, word);
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

/// CRC32C of `data`.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("sse4.2") {
        // Safety: the feature check guarantees the instruction exists.
        return unsafe { crc32_hw(data) };
    }
    crc32_sw(data)
}

// ---------------------------------------------------------------------------
// Framing: [u32 len][u32 crc(payload)][payload]
// ---------------------------------------------------------------------------

const FRAME_HEADER: usize = 8;

fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// One decoded frame: `(payload_range, next_offset)`.
enum Frame {
    /// A complete, CRC-valid record.
    Ok { start: usize, end: usize },
    /// The file ends cleanly at this offset.
    End,
    /// The final record is torn (header or payload cut short) — tolerated
    /// as a crash artifact; replay stops at `clean_len`.
    Torn,
}

/// Decode the frame at `off`; CRC mismatch on a complete record is a hard
/// corruption error.
fn read_frame(bytes: &[u8], off: usize, path: &Path) -> Result<Frame> {
    if off == bytes.len() {
        return Ok(Frame::End);
    }
    if bytes.len() - off < 8 {
        return Ok(Frame::Torn);
    }
    let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        return Err(Error::corrupt(
            path,
            off as u64,
            format!("impossible record length {len}"),
        ));
    }
    let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
    let start = off + 8;
    let end = start + len as usize;
    if end > bytes.len() {
        return Ok(Frame::Torn);
    }
    if crc32(&bytes[start..end]) != crc {
        return Err(Error::corrupt(path, off as u64, "record crc mismatch"));
    }
    Ok(Frame::Ok { start, end })
}

// ---------------------------------------------------------------------------
// Little helpers for payload codecs
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], path: &'a Path) -> Self {
        Self {
            bytes,
            pos: 0,
            path,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(Error::corrupt(
                self.path,
                self.pos as u64,
                "payload shorter than its fields",
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn values<V: Value>(&mut self, n: usize) -> Result<Vec<V>> {
        let raw = self.take(n * V::BYTES)?;
        Ok((0..n)
            .map(|i| V::read_bytes(&raw[i * V::BYTES..]))
            .collect())
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn io(context: &'static str) -> impl FnOnce(std::io::Error) -> Error {
    move |e| Error::io(context, e)
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

/// `seg-<base>.wal` for global row id `base` (zero-padded hex keeps
/// lexicographic order equal to numeric order).
fn segment_name(base: usize) -> String {
    format!("{SEGMENT_PREFIX}{base:016x}{SEGMENT_SUFFIX}")
}

fn segment_path(dir: &Path, base: usize) -> PathBuf {
    dir.join(segment_name(base))
}

/// Parse a segment file name back to its base row id.
fn parse_segment_name(name: &str) -> Option<usize> {
    let hex = name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?;
    usize::from_str_radix(hex, 16).ok()
}

/// Delete one segment file (recovery drops segments already absorbed by
/// the checkpoint).
pub(crate) fn remove_segment(dir: &Path, base: usize) -> Result<()> {
    fs::remove_file(segment_path(dir, base)).map_err(io("remove stale wal segment"))
}

/// Path of the segment with the given base (recovery error reporting).
pub(crate) fn segment_file(dir: &Path, base: usize) -> PathBuf {
    segment_path(dir, base)
}

/// All segment bases in `dir`, ascending.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<usize>> {
    let mut bases = Vec::new();
    for entry in fs::read_dir(dir).map_err(io("list wal directory"))? {
        let entry = entry.map_err(io("list wal directory"))?;
        if let Some(base) = entry.file_name().to_str().and_then(parse_segment_name) {
            bases.push(base);
        }
    }
    bases.sort_unstable();
    Ok(bases)
}

/// Best-effort fsync of the directory itself (makes renames/creates
/// durable on POSIX filesystems; ignored where unsupported).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// One decoded insert batch.
#[derive(Debug)]
pub(crate) struct InsertRecord<V> {
    /// Global tuple id of the batch's first row.
    pub start: usize,
    /// Rows in the batch.
    pub n_rows: usize,
    /// Row-major values, `n_rows * n_cols` entries.
    pub values: Vec<V>,
}

/// A fully decoded segment.
#[derive(Debug)]
pub(crate) struct SegmentData<V> {
    /// Global tuple id of the segment's first row.
    pub base: usize,
    /// Insert batches in append order (not necessarily row order).
    pub inserts: Vec<InsertRecord<V>>,
    /// Validity flips in append order.
    pub flips: Vec<(usize, bool)>,
    /// True when the segment ends with a seal record (frozen by a merge).
    pub sealed: bool,
    /// Bytes of the clean record prefix (a torn final record is excluded;
    /// a live segment reopened for append is truncated to this).
    pub clean_len: u64,
}

/// Decode the segment at `path`. A torn final record is tolerated (clean
/// prefix replay); a CRC mismatch or malformed record before the end of
/// file is a hard [`Error::Corrupt`].
pub(crate) fn read_segment<V: Value>(
    path: &Path,
    base: usize,
    n_cols: usize,
) -> Result<SegmentData<V>> {
    let bytes = fs::read(path).map_err(io("read wal segment"))?;
    let mut data = SegmentData {
        base,
        inserts: Vec::new(),
        flips: Vec::new(),
        sealed: false,
        clean_len: 0,
    };
    let mut off = 0usize;
    loop {
        let (start, end) = match read_frame(&bytes, off, path)? {
            Frame::Ok { start, end } => (start, end),
            Frame::End => break,
            Frame::Torn => break, // tolerated: crash mid-append
        };
        if data.sealed {
            return Err(Error::corrupt(
                path,
                off as u64,
                "record after the seal marker",
            ));
        }
        let mut r = Reader::new(&bytes[start..end], path);
        match r.u8()? {
            REC_INSERT => {
                let rec_start = r.u64()? as usize;
                let n_rows = r.u32()? as usize;
                let rec_cols = r.u32()? as usize;
                if rec_cols != n_cols {
                    return Err(Error::corrupt(
                        path,
                        off as u64,
                        format!("insert record has {rec_cols} columns, table has {n_cols}"),
                    ));
                }
                let values = r.values::<V>(n_rows * n_cols)?;
                data.inserts.push(InsertRecord {
                    start: rec_start,
                    n_rows,
                    values,
                });
            }
            REC_FLIP => {
                let row = r.u64()? as usize;
                let valid = r.u8()? != 0;
                data.flips.push((row, valid));
            }
            REC_SEAL => data.sealed = true,
            t => {
                return Err(Error::corrupt(
                    path,
                    off as u64,
                    format!("unknown record type {t}"),
                ))
            }
        }
        if !r.done() {
            return Err(Error::corrupt(path, off as u64, "trailing payload bytes"));
        }
        off = end;
        data.clean_len = end as u64;
    }
    Ok(data)
}

// ---------------------------------------------------------------------------
// The live WAL writer
// ---------------------------------------------------------------------------

struct SegmentWriter {
    /// Unbuffered on purpose: every append is one `write_all` of a fully
    /// framed record, so a userspace buffer would only add a copy.
    file: File,
    /// First global row id of the live segment (`seg-<base>.wal`).
    base: usize,
    buf: Vec<u8>,
}

/// A table's write-ahead log: one live segment at a time, rotated at every
/// merge freeze. Appends are serialized by an internal mutex; under the
/// `fsync` policy each append is synced before it returns.
pub(crate) struct Wal<V> {
    dir: PathBuf,
    fsync: bool,
    writer: Mutex<SegmentWriter>,
    _values: PhantomData<fn() -> V>,
}

impl<V: Value> Wal<V> {
    /// Start a fresh log in `dir` (created if missing): the live segment
    /// opens at `base` (0 for an empty table).
    pub(crate) fn create(dir: &Path, fsync: bool, base: usize) -> Result<Self> {
        fs::create_dir_all(dir).map_err(io("create wal directory"))?;
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(dir, base))
            .map_err(io("create wal segment"))?;
        sync_dir(dir);
        Ok(Self {
            dir: dir.to_path_buf(),
            fsync,
            writer: Mutex::new(SegmentWriter {
                file,
                base,
                buf: Vec::new(),
            }),
            _values: PhantomData,
        })
    }

    /// Reattach to an existing live segment after recovery, truncating the
    /// torn suffix (if any) to `clean_len` and appending after it. Creates
    /// the segment when the crash happened between seal and rotation.
    pub(crate) fn attach(dir: &Path, fsync: bool, base: usize, clean_len: u64) -> Result<Self> {
        let path = segment_path(dir, base);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(io("open wal segment"))?;
        file.set_len(clean_len)
            .map_err(io("truncate torn wal suffix"))?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(io("seek wal segment"))?;
        sync_dir(dir);
        Ok(Self {
            dir: dir.to_path_buf(),
            fsync,
            writer: Mutex::new(SegmentWriter {
                file,
                base,
                buf: Vec::new(),
            }),
            _values: PhantomData,
        })
    }

    /// The durability directory.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one record, its payload built by `build` directly into the
    /// writer's reusable frame buffer (after an 8-byte header hole that is
    /// patched with length + CRC once the payload is in place — no
    /// intermediate payload allocation or copy on the hot path).
    fn append_frame(&self, build: impl FnOnce(&mut Vec<u8>)) -> Result<()> {
        let mut w = self.writer.lock();
        let mut framed = std::mem::take(&mut w.buf);
        framed.clear();
        framed.resize(FRAME_HEADER, 0);
        build(&mut framed);
        let len = (framed.len() - FRAME_HEADER) as u32;
        let crc = crc32(&framed[FRAME_HEADER..]);
        framed[0..4].copy_from_slice(&len.to_le_bytes());
        framed[4..8].copy_from_slice(&crc.to_le_bytes());
        let res = (|| {
            w.file.write_all(&framed).map_err(io("append wal record"))?;
            if self.fsync {
                w.file.sync_data().map_err(io("sync wal record"))?;
            }
            Ok(())
        })();
        w.buf = framed;
        res
    }

    /// Append one insert batch: global start row id plus row-major values.
    pub(crate) fn append_insert<R: AsRef<[V]>>(&self, start: usize, rows: &[R]) -> Result<()> {
        let n_cols = rows.first().map_or(0, |r| r.as_ref().len());
        self.append_frame(|payload| {
            payload.reserve(1 + 8 + 4 + 4 + rows.len() * n_cols * V::BYTES);
            payload.push(REC_INSERT);
            payload.extend_from_slice(&(start as u64).to_le_bytes());
            payload.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            payload.extend_from_slice(&(n_cols as u32).to_le_bytes());
            for row in rows {
                for &v in row.as_ref() {
                    v.write_bytes(payload);
                }
            }
        })
    }

    /// Append one validity flip (`valid = false` for deletes / old update
    /// versions).
    pub(crate) fn append_flip(&self, row: usize, valid: bool) -> Result<()> {
        self.append_frame(|payload| {
            payload.push(REC_FLIP);
            payload.extend_from_slice(&(row as u64).to_le_bytes());
            payload.push(valid as u8);
        })
    }

    /// Seal the live segment (terminal record, synced regardless of
    /// policy — a segment boundary is a commit point) and rotate to a
    /// fresh segment whose first row is `new_base`. Called by the merge
    /// freeze after the tail's final row count is known.
    pub(crate) fn seal_and_rotate(&self, new_base: usize) -> Result<()> {
        let mut w = self.writer.lock();
        if w.base == new_base {
            // The tail sealed at zero rows (a merge of pending-only rows,
            // e.g. re-merging after a cancellation or a resumed
            // recovery): the live segment holds no insert records, stays
            // live, and rotating it onto itself would clobber the file.
            return Ok(());
        }
        let mut framed = std::mem::take(&mut w.buf);
        framed.clear();
        frame_into(&mut framed, &[REC_SEAL]);
        w.file.write_all(&framed).map_err(io("seal wal segment"))?;
        w.file.sync_data().map_err(io("sync sealed wal segment"))?;
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(&self.dir, new_base))
            .map_err(io("create wal segment"))?;
        sync_dir(&self.dir);
        w.file = file;
        w.base = new_base;
        w.buf = framed;
        Ok(())
    }

    /// Delete every sealed segment whose rows `checkpoint.bin` now covers
    /// (base below `rows`). Best-effort: a segment that refuses to die is
    /// skipped at the next recovery anyway (stale bases are filtered).
    pub(crate) fn truncate_absorbed(&self, rows: usize) -> Result<()> {
        for base in list_segments(&self.dir)? {
            if base < rows {
                let _ = fs::remove_file(segment_path(&self.dir, base));
            }
        }
        sync_dir(&self.dir);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The data checkpoint
// ---------------------------------------------------------------------------

/// A decoded `checkpoint.bin`.
pub(crate) struct Checkpoint<V> {
    /// Rows covered (every column's main length).
    pub rows: usize,
    /// The dictionary-compressed mains, bit-identical to the committed
    /// generation's.
    pub mains: Vec<MainPartition<V>>,
    /// Validity of rows `0..rows` as of the checkpoint.
    pub validity: ValidityBitmap,
}

fn push_main_partition<V: Value>(buf: &mut Vec<u8>, main: &MainPartition<V>) {
    let dict = main.dictionary().values();
    buf.extend_from_slice(&(dict.len() as u64).to_le_bytes());
    for &v in dict {
        v.write_bytes(buf);
    }
    let codes = main.packed_codes();
    buf.push(codes.bits());
    buf.extend_from_slice(&(codes.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(codes.words().len() as u64).to_le_bytes());
    for &w in codes.words() {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

fn read_main_partition<V: Value>(r: &mut Reader<'_>) -> Result<MainPartition<V>> {
    let dict_len = r.u64()? as usize;
    let dict = r.values::<V>(dict_len)?;
    let bits = r.u8()?;
    let n_codes = r.u64()? as usize;
    let n_words = r.u64()? as usize;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    if !(1..=64).contains(&bits) || n_words < (n_codes * bits as usize).div_ceil(64) {
        return Err(Error::corrupt(
            r.path,
            r.pos as u64,
            "main partition geometry out of range",
        ));
    }
    Ok(MainPartition::from_parts(
        Dictionary::from_sorted_unique(dict),
        BitPackedVec::from_words(bits, n_codes, words),
    ))
}

/// Atomically persist the committed mains + validity prefix: build the
/// image, CRC it, write to a temp file, fsync, rename over
/// `checkpoint.bin`, fsync the directory.
pub(crate) fn write_checkpoint<V: Value>(
    dir: &Path,
    mains: &[&MainPartition<V>],
    validity: &ValidityBitmap,
) -> Result<()> {
    let rows = mains.first().map_or(0, |m| m.len());
    debug_assert!(mains.iter().all(|m| m.len() == rows));
    debug_assert_eq!(validity.len(), rows);
    let mut buf = Vec::new();
    buf.extend_from_slice(CHECKPOINT_MAGIC);
    buf.extend_from_slice(&(V::BYTES as u32).to_le_bytes());
    buf.extend_from_slice(&(mains.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(rows as u64).to_le_bytes());
    for main in mains {
        push_main_partition(&mut buf, main);
    }
    buf.extend_from_slice(&(validity.words().len() as u64).to_le_bytes());
    for &w in validity.words() {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = dir.join("checkpoint.tmp");
    let final_path = dir.join(CHECKPOINT_FILE);
    let mut f = File::create(&tmp).map_err(io("create checkpoint"))?;
    f.write_all(&buf).map_err(io("write checkpoint"))?;
    f.sync_all().map_err(io("sync checkpoint"))?;
    drop(f);
    fs::rename(&tmp, &final_path).map_err(io("publish checkpoint"))?;
    sync_dir(dir);
    Ok(())
}

/// Load `checkpoint.bin` if present. A missing file means "no merge has
/// ever committed" (replay starts from empty mains); a damaged file is a
/// hard error — the checkpoint is written atomically, so damage is disk
/// corruption, not a crash artifact.
pub(crate) fn read_checkpoint<V: Value>(dir: &Path) -> Result<Option<Checkpoint<V>>> {
    let path = dir.join(CHECKPOINT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::io("read checkpoint", e)),
    };
    if bytes.len() < CHECKPOINT_MAGIC.len() + 4 || &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(Error::corrupt(&path, 0, "bad checkpoint magic"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(Error::corrupt(&path, 0, "checkpoint crc mismatch"));
    }
    let mut r = Reader::new(&body[8..], &path);
    let value_bytes = r.u32()? as usize;
    if value_bytes != V::BYTES {
        return Err(Error::corrupt(
            &path,
            0,
            format!(
                "value width {value_bytes} does not match table's {}",
                V::BYTES
            ),
        ));
    }
    let n_cols = r.u32()? as usize;
    let rows = r.u64()? as usize;
    let mut mains = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let main = read_main_partition::<V>(&mut r)?;
        if main.len() != rows {
            return Err(Error::corrupt(&path, 0, "column length mismatch"));
        }
        mains.push(main);
    }
    let n_words = r.u64()? as usize;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    if n_words < rows.div_ceil(64) {
        return Err(Error::corrupt(&path, 0, "validity words too short"));
    }
    Ok(Some(Checkpoint {
        rows,
        mains,
        validity: ValidityBitmap::from_words(words, rows),
    }))
}

// ---------------------------------------------------------------------------
// The merge recovery log (SAGA-style resumable steps)
// ---------------------------------------------------------------------------

/// The open merge recovery log an in-flight merge appends to. Implements
/// [`crate::pipeline::StepSink`] so the pipeline can stream advisory
/// stage/progress records; the durable resume points are the begin marker
/// and the chunk-done records.
pub(crate) struct MergeLog {
    file: Mutex<BufWriter<File>>,
}

impl MergeLog {
    /// Start a fresh merge log: truncate any stale one and write the
    /// begin marker (`frozen_end` = global row count at the freeze),
    /// synced — from here on, recovery resumes the merge instead of
    /// rolling it back.
    pub(crate) fn begin(dir: &Path, frozen_end: usize, n_cols: usize) -> Result<Self> {
        let path = dir.join(MERGE_LOG_FILE);
        let file = File::create(&path).map_err(io("create merge log"))?;
        let log = Self {
            file: Mutex::new(BufWriter::new(file)),
        };
        let mut payload = Vec::with_capacity(13);
        payload.push(MREC_BEGIN);
        payload.extend_from_slice(&(frozen_end as u64).to_le_bytes());
        payload.extend_from_slice(&(n_cols as u32).to_le_bytes());
        log.append(&payload, true)?;
        sync_dir(dir);
        Ok(log)
    }

    fn append(&self, payload: &[u8], sync: bool) -> Result<()> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        frame_into(&mut framed, payload);
        let mut f = self.file.lock();
        f.write_all(&framed)
            .map_err(io("append merge log record"))?;
        f.flush().map_err(io("append merge log record"))?;
        if sync {
            f.get_ref()
                .sync_data()
                .map_err(io("sync merge log record"))?;
        }
        Ok(())
    }

    /// Record that the staged outputs of `cols` are durable on disk:
    /// recovery loads them instead of re-merging. Synced.
    pub(crate) fn chunk_done(&self, cols: &[usize]) -> Result<()> {
        let mut payload = Vec::with_capacity(5 + 4 * cols.len());
        payload.push(MREC_CHUNK);
        payload.extend_from_slice(&(cols.len() as u32).to_le_bytes());
        for &c in cols {
            payload.extend_from_slice(&(c as u32).to_le_bytes());
        }
        self.append(&payload, true)
    }

    /// Append one advisory step record (buffered, not synced — these
    /// narrate progress between the durable chunk boundaries). Errors are
    /// swallowed: a lost advisory record costs nothing at recovery.
    pub(crate) fn step(&self, step: crate::pipeline::MergeStep) {
        let (kind, col, progress, total) = step.encode();
        let mut payload = Vec::with_capacity(22);
        payload.push(MREC_STEP);
        payload.push(kind);
        payload.extend_from_slice(&(col as u32).to_le_bytes());
        payload.extend_from_slice(&progress.to_le_bytes());
        payload.extend_from_slice(&total.to_le_bytes());
        let _ = self.append(&payload, false);
    }
}

impl crate::pipeline::StepSink for MergeLog {
    fn record(&self, step: crate::pipeline::MergeStep) {
        self.step(step);
    }
}

/// A decoded merge recovery log: the merge to resume.
#[derive(Debug)]
pub(crate) struct MergeCkpt {
    /// Global row count at the freeze (every merged column's final length).
    pub frozen_end: usize,
    /// Columns whose staged outputs are durable (union of chunk records).
    pub done_cols: Vec<usize>,
}

/// Load `merge.ckpt` if present. A torn suffix is tolerated (the advisory
/// step records are streamed unsynced); a torn or missing begin marker
/// means no merge was in flight.
pub(crate) fn read_merge_log(dir: &Path, n_cols: usize) -> Result<Option<MergeCkpt>> {
    let path = dir.join(MERGE_LOG_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::io("read merge log", e)),
    };
    let mut ckpt: Option<MergeCkpt> = None;
    let mut off = 0usize;
    while let Frame::Ok { start, end } = read_frame(&bytes, off, &path)? {
        let mut r = Reader::new(&bytes[start..end], &path);
        match r.u8()? {
            MREC_BEGIN => {
                let frozen_end = r.u64()? as usize;
                let cols = r.u32()? as usize;
                if cols != n_cols {
                    return Err(Error::corrupt(
                        &path,
                        off as u64,
                        format!("merge log has {cols} columns, table has {n_cols}"),
                    ));
                }
                ckpt = Some(MergeCkpt {
                    frozen_end,
                    done_cols: Vec::new(),
                });
            }
            MREC_CHUNK => {
                let n = r.u32()? as usize;
                let ckpt = ckpt.as_mut().ok_or_else(|| {
                    Error::corrupt(&path, off as u64, "chunk record before begin marker")
                })?;
                for _ in 0..n {
                    ckpt.done_cols.push(r.u32()? as usize);
                }
            }
            MREC_STEP => {} // advisory narration only
            t => {
                return Err(Error::corrupt(
                    &path,
                    off as u64,
                    format!("unknown merge log record type {t}"),
                ))
            }
        }
        off = end;
    }
    Ok(ckpt)
}

/// Remove the merge recovery log and every staged column (merge finished
/// or rolled back).
pub(crate) fn clear_merge_log(dir: &Path) -> Result<()> {
    let _ = fs::remove_file(dir.join(MERGE_LOG_FILE));
    let _ = fs::remove_dir_all(dir.join(STAGED_DIR));
    sync_dir(dir);
    Ok(())
}

/// Durably stage one merged column output (`staged/col-<c>.bin`,
/// tmp + rename) so a resumed merge loads it instead of re-merging.
pub(crate) fn write_staged_column<V: Value>(
    dir: &Path,
    col: usize,
    main: &MainPartition<V>,
) -> Result<()> {
    let staged = dir.join(STAGED_DIR);
    fs::create_dir_all(&staged).map_err(io("create staged directory"))?;
    let mut buf = Vec::new();
    buf.extend_from_slice(STAGED_MAGIC);
    buf.extend_from_slice(&(V::BYTES as u32).to_le_bytes());
    push_main_partition(&mut buf, main);
    buf.extend_from_slice(&crc32(&buf).to_le_bytes());
    let tmp = staged.join(format!("col-{col}.tmp"));
    let final_path = staged.join(format!("col-{col}.bin"));
    let mut f = File::create(&tmp).map_err(io("create staged column"))?;
    f.write_all(&buf).map_err(io("write staged column"))?;
    f.sync_all().map_err(io("sync staged column"))?;
    drop(f);
    fs::rename(&tmp, &final_path).map_err(io("publish staged column"))?;
    sync_dir(&staged);
    Ok(())
}

/// Load a staged column written by [`write_staged_column`].
pub(crate) fn read_staged_column<V: Value>(dir: &Path, col: usize) -> Result<MainPartition<V>> {
    let path = dir.join(STAGED_DIR).join(format!("col-{col}.bin"));
    let bytes = fs::read(&path).map_err(io("read staged column"))?;
    if bytes.len() < 12 || &bytes[..8] != STAGED_MAGIC {
        return Err(Error::corrupt(&path, 0, "bad staged column magic"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")) {
        return Err(Error::corrupt(&path, 0, "staged column crc mismatch"));
    }
    let mut r = Reader::new(&body[8..], &path);
    if r.u32()? as usize != V::BYTES {
        return Err(Error::corrupt(
            &path,
            0,
            "staged column value width mismatch",
        ));
    }
    read_main_partition::<V>(&mut r)
}

// ---------------------------------------------------------------------------
// The table manifest
// ---------------------------------------------------------------------------

/// The immutable facts recovery needs before it can read anything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    pub n_cols: usize,
    pub value_bytes: usize,
    pub fsync: bool,
}

/// Write the `TABLE` manifest (once, at table creation).
pub(crate) fn write_manifest(dir: &Path, m: &Manifest) -> Result<()> {
    let mut buf = Vec::with_capacity(21);
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&(m.n_cols as u32).to_le_bytes());
    buf.extend_from_slice(&(m.value_bytes as u32).to_le_bytes());
    buf.push(m.fsync as u8);
    buf.extend_from_slice(&crc32(&buf).to_le_bytes());
    let path = dir.join(MANIFEST_FILE);
    let mut f = File::create(&path).map_err(io("create table manifest"))?;
    f.write_all(&buf).map_err(io("write table manifest"))?;
    f.sync_all().map_err(io("sync table manifest"))?;
    sync_dir(dir);
    Ok(())
}

/// Read the `TABLE` manifest.
pub(crate) fn read_manifest(dir: &Path) -> Result<Manifest> {
    let path = dir.join(MANIFEST_FILE);
    let bytes = fs::read(&path).map_err(io("read table manifest"))?;
    if bytes.len() != 21 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(Error::corrupt(&path, 0, "bad table manifest"));
    }
    let (body, crc_bytes) = bytes.split_at(17);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")) {
        return Err(Error::corrupt(&path, 0, "table manifest crc mismatch"));
    }
    let mut r = Reader::new(&body[8..], &path);
    Ok(Manifest {
        n_cols: r.u32()? as usize,
        value_bytes: r.u32()? as usize,
        fsync: r.u8()? != 0,
    })
}

/// Does `dir` already hold a table manifest?
pub(crate) fn manifest_exists(dir: &Path) -> bool {
    dir.join(MANIFEST_FILE).is_file()
}

// ---------------------------------------------------------------------------
// The sharded-table manifest
// ---------------------------------------------------------------------------

/// Shard `i`'s table directory under a sharded root.
pub(crate) fn shard_dir(root: &Path, i: usize) -> PathBuf {
    root.join(format!("shard-{i}"))
}

/// The routing layout of a durable [`crate::shard::ShardedTable`], stored
/// as `SHARDS` in the root directory. Each shard is a full table directory
/// (`shard-<i>/`) underneath; this file is what lets recovery rebuild the
/// router identically.
#[derive(Debug, Clone)]
pub(crate) struct ShardedManifest<V> {
    pub n_shards: usize,
    pub n_cols: usize,
    pub value_bytes: usize,
    pub fsync: bool,
    pub key_col: usize,
    pub by: crate::shard::ShardBy<V>,
}

/// Write the `SHARDS` manifest (once, at table creation).
pub(crate) fn write_sharded_manifest<V: Value>(root: &Path, m: &ShardedManifest<V>) -> Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SHARDED_MAGIC);
    buf.extend_from_slice(&(m.n_shards as u32).to_le_bytes());
    buf.extend_from_slice(&(m.n_cols as u32).to_le_bytes());
    buf.extend_from_slice(&(m.value_bytes as u32).to_le_bytes());
    buf.extend_from_slice(&(m.key_col as u32).to_le_bytes());
    buf.push(m.fsync as u8);
    match &m.by {
        crate::shard::ShardBy::Hash => buf.push(0),
        crate::shard::ShardBy::Range(bounds) => {
            buf.push(1);
            buf.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
            for b in bounds {
                b.write_bytes(&mut buf);
            }
        }
    }
    buf.extend_from_slice(&crc32(&buf).to_le_bytes());
    let path = root.join(SHARDED_MANIFEST_FILE);
    let mut f = File::create(&path).map_err(io("create sharded manifest"))?;
    f.write_all(&buf).map_err(io("write sharded manifest"))?;
    f.sync_all().map_err(io("sync sharded manifest"))?;
    sync_dir(root);
    Ok(())
}

/// Read the `SHARDS` manifest.
pub(crate) fn read_sharded_manifest<V: Value>(root: &Path) -> Result<ShardedManifest<V>> {
    let path = root.join(SHARDED_MANIFEST_FILE);
    let bytes = fs::read(&path).map_err(io("read sharded manifest"))?;
    if bytes.len() < 26 || &bytes[..8] != SHARDED_MAGIC {
        return Err(Error::corrupt(&path, 0, "bad sharded manifest"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")) {
        return Err(Error::corrupt(&path, 0, "sharded manifest crc mismatch"));
    }
    let mut r = Reader::new(&body[8..], &path);
    let n_shards = r.u32()? as usize;
    let n_cols = r.u32()? as usize;
    let value_bytes = r.u32()? as usize;
    let key_col = r.u32()? as usize;
    let fsync = r.u8()? != 0;
    let by = match r.u8()? {
        0 => crate::shard::ShardBy::Hash,
        1 => {
            let n = r.u32()? as usize;
            crate::shard::ShardBy::Range(r.values::<V>(n)?)
        }
        t => {
            return Err(Error::corrupt(
                &path,
                0,
                format!("unknown partitioning tag {t}"),
            ))
        }
    };
    if !r.done() {
        return Err(Error::corrupt(
            &path,
            0,
            "trailing bytes in sharded manifest",
        ));
    }
    Ok(ShardedManifest {
        n_shards,
        n_cols,
        value_bytes,
        fsync,
        key_col,
        by,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hyrise-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // CRC32C of "123456789" is the classic check value (RFC 3720
        // appendix B lists the polynomial; iSCSI uses the same CRC).
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
        // The software fallback matches whatever path `crc32` picked.
        assert_eq!(crc32_sw(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc32_hw_and_sw_agree() {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let data: Vec<u8> = (0..4096 + 7)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for cut in [0, 1, 7, 8, 9, 63, 64, 1000, data.len()] {
            assert_eq!(crc32(&data[..cut]), crc32_sw(&data[..cut]), "len {cut}");
        }
    }

    #[test]
    fn segment_names_round_trip_and_sort() {
        assert_eq!(parse_segment_name(&segment_name(0)), Some(0));
        assert_eq!(parse_segment_name(&segment_name(123_456)), Some(123_456));
        assert!(
            segment_name(9) < segment_name(16),
            "hex padding keeps order"
        );
        assert_eq!(parse_segment_name("checkpoint.bin"), None);
    }

    #[test]
    fn wal_append_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        let wal: Wal<u64> = Wal::create(&dir, true, 0).unwrap();
        wal.append_insert(0, &[vec![1u64, 2], vec![3, 4]]).unwrap();
        wal.append_flip(1, false).unwrap();
        wal.append_insert(2, &[vec![5u64, 6]]).unwrap();
        let seg = read_segment::<u64>(&segment_path(&dir, 0), 0, 2).unwrap();
        assert_eq!(seg.inserts.len(), 2);
        assert_eq!(seg.inserts[0].start, 0);
        assert_eq!(seg.inserts[0].n_rows, 2);
        assert_eq!(seg.inserts[0].values, vec![1, 2, 3, 4]);
        assert_eq!(seg.inserts[1].values, vec![5, 6]);
        assert_eq!(seg.flips, vec![(1, false)]);
        assert!(!seg.sealed);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_rotates_to_new_segment() {
        let dir = temp_dir("rotate");
        let wal: Wal<u32> = Wal::create(&dir, false, 0).unwrap();
        wal.append_insert(0, &[vec![7u32]]).unwrap();
        wal.seal_and_rotate(1).unwrap();
        wal.append_insert(1, &[vec![8u32]]).unwrap();
        assert_eq!(list_segments(&dir).unwrap(), vec![0, 1]);
        let s0 = read_segment::<u32>(&segment_path(&dir, 0), 0, 1).unwrap();
        assert!(s0.sealed);
        let s1 = read_segment::<u32>(&segment_path(&dir, 1), 1, 1).unwrap();
        assert!(!s1.sealed);
        assert_eq!(s1.inserts[0].values, vec![8]);
        wal.truncate_absorbed(1).unwrap();
        assert_eq!(list_segments(&dir).unwrap(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_record_is_tolerated() {
        let dir = temp_dir("torn");
        let wal: Wal<u64> = Wal::create(&dir, true, 0).unwrap();
        wal.append_insert(0, &[vec![1u64]]).unwrap();
        wal.append_insert(1, &[vec![2u64]]).unwrap();
        drop(wal);
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        // Cut into the middle of the second record.
        let clean_one = {
            let seg = read_segment::<u64>(&path, 0, 1).unwrap();
            assert_eq!(seg.inserts.len(), 2);
            // first record's framed length
            8 + 1 + 8 + 4 + 4 + 8
        };
        fs::write(&path, &full[..clean_one + 5]).unwrap();
        let seg = read_segment::<u64>(&path, 0, 1).unwrap();
        assert_eq!(seg.inserts.len(), 1, "torn tail dropped");
        assert_eq!(seg.clean_len, clean_one as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_mismatch_mid_log_is_a_hard_error() {
        let dir = temp_dir("crc");
        let wal: Wal<u64> = Wal::create(&dir, true, 0).unwrap();
        wal.append_insert(0, &[vec![1u64]]).unwrap();
        wal.append_insert(1, &[vec![2u64]]).unwrap();
        drop(wal);
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[12] ^= 0xFF; // corrupt the first record's payload
        fs::write(&path, &bytes).unwrap();
        let err = read_segment::<u64>(&path, 0, 1).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "got {err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_round_trips() {
        let dir = temp_dir("ckpt");
        let m0 = MainPartition::from_values(&[5u64, 1, 5, 9, 1]);
        let m1 = MainPartition::from_values(&[10u64, 20, 30, 40, 50]);
        let mut validity = ValidityBitmap::all_valid(5);
        validity.invalidate(2);
        write_checkpoint(&dir, &[&m0, &m1], &validity).unwrap();
        let ck = read_checkpoint::<u64>(&dir).unwrap().unwrap();
        assert_eq!(ck.rows, 5);
        assert_eq!(ck.mains.len(), 2);
        assert_eq!(ck.mains[0].dictionary().values(), m0.dictionary().values());
        assert_eq!(
            ck.mains[0].packed_codes().words(),
            m0.packed_codes().words()
        );
        assert_eq!(ck.validity.valid_count(), 4);
        assert!(!ck.validity.is_valid(2));
        // Wrong value width is rejected.
        assert!(matches!(
            read_checkpoint::<u32>(&dir),
            Err(Error::Corrupt { .. })
        ));
        // Missing checkpoint is None, not an error.
        let empty = temp_dir("ckpt-none");
        assert!(read_checkpoint::<u64>(&empty).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn merge_log_round_trips_and_tolerates_torn_tail() {
        let dir = temp_dir("mlog");
        let log = MergeLog::begin(&dir, 1_000, 4).unwrap();
        log.step(crate::pipeline::MergeStep::Stage1a { col: 0 });
        log.chunk_done(&[0, 1]).unwrap();
        log.chunk_done(&[2]).unwrap();
        drop(log);
        let ck = read_merge_log(&dir, 4).unwrap().unwrap();
        assert_eq!(ck.frozen_end, 1_000);
        assert_eq!(ck.done_cols, vec![0, 1, 2]);
        // Torn tail: drop the last 3 bytes.
        let path = dir.join(MERGE_LOG_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let ck = read_merge_log(&dir, 4).unwrap().unwrap();
        assert_eq!(ck.frozen_end, 1_000);
        assert_eq!(ck.done_cols, vec![0, 1], "torn final chunk dropped");
        clear_merge_log(&dir).unwrap();
        assert!(read_merge_log(&dir, 4).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staged_column_round_trips() {
        let dir = temp_dir("staged");
        let main = MainPartition::from_values(&[3u32, 1, 4, 1, 5]);
        write_staged_column(&dir, 2, &main).unwrap();
        let back = read_staged_column::<u32>(&dir, 2).unwrap();
        assert_eq!(back.dictionary().values(), main.dictionary().values());
        assert_eq!(back.packed_codes().words(), main.packed_codes().words());
        assert!(read_staged_column::<u32>(&dir, 3).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips() {
        let dir = temp_dir("manifest");
        let m = Manifest {
            n_cols: 3,
            value_bytes: 8,
            fsync: true,
        };
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), m);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn attach_truncates_torn_suffix() {
        let dir = temp_dir("attach");
        let wal: Wal<u64> = Wal::create(&dir, true, 0).unwrap();
        wal.append_insert(0, &[vec![1u64]]).unwrap();
        drop(wal);
        let path = segment_path(&dir, 0);
        let clean = fs::metadata(&path).unwrap().len();
        // Simulate a torn append.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 9, 9]);
        fs::write(&path, &bytes).unwrap();
        let wal: Wal<u64> = Wal::attach(&dir, true, 0, clean).unwrap();
        wal.append_insert(1, &[vec![2u64]]).unwrap();
        drop(wal);
        let seg = read_segment::<u64>(&path, 0, 1).unwrap();
        assert_eq!(seg.inserts.len(), 2);
        assert_eq!(seg.inserts[1].values, vec![2]);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! The unoptimized merge (Sections 5.1–5.2): the baseline implementation.
//!
//! Step 1 is the same dictionary merge as the optimized variant minus the
//! auxiliary tables; Step 2(b) re-encodes every tuple by materializing its
//! uncompressed value and **binary-searching** it in the merged dictionary —
//! `O(N_M + (N_M + N_D) · log |U'_M|)` (Equation 5). "As shown in Section 7,
//! this makes the merging algorithm prohibitively slow".
//!
//! Figure 7 runs this baseline *parallelized* ("both optimized (Opt) and
//! unoptimized (UnOpt) merge implementations were parallelized"), so Step 2
//! here partitions the tuples over threads just like the optimized code —
//! only the per-tuple search is the naive part.

use crate::pipeline::{merge_column_with, MergeScratch, MergeStrategy};
use crate::stats::MergeOutput;
use hyrise_storage::{DeltaPartition, MainPartition, Value};

/// Merge one column's delta into its main partition using the unoptimized
/// algorithm, with Step 2 parallelized over `threads`.
///
/// A stage configuration of the unified [`crate::pipeline::MergePipeline`]:
/// Stage 1a extracts `U_D` without re-coding the delta, Stage 1b unions the
/// dictionaries without auxiliary tables, and the shared Stage 2 kernel
/// runs with a binary-search code map (Equation 5's log factor).
pub fn merge_column_naive<V: Value>(
    main: &MainPartition<V>,
    delta: &DeltaPartition<V>,
    threads: usize,
) -> MergeOutput<MainPartition<V>> {
    merge_column_with(
        main,
        delta,
        MergeStrategy::Naive,
        threads,
        &mut MergeScratch::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_from(values: &[u64]) -> DeltaPartition<u64> {
        let mut d = DeltaPartition::new();
        for &v in values {
            d.insert(v);
        }
        d
    }

    /// The full Figure 5 example: main [hotel delta frank delta] over the
    /// 6-value dictionary, delta [bravo charlie golf charlie young].
    #[test]
    fn figure5_end_to_end() {
        // Encode words as integers keeping lexicographic order:
        // apple=1 bravo=2 charlie=3 delta=4 frank=6 golf=7 hotel=8 inbox=9 young=25
        // Main column must reference all 6 dictionary values; Figure 5 shows
        // the column fragment [hotel delta frank delta] with dictionary
        // {apple charlie delta frank hotel inbox}, so we load a main whose
        // value set is exactly that dictionary.
        let main = MainPartition::from_values(&[8u64, 4, 6, 4, 1, 3, 9]);
        let delta = delta_from(&[2, 3, 7, 3, 25]);
        let out = merge_column_naive(&main, &delta, 2);

        // Merged dictionary has 9 values -> 4 bits (Figure 5).
        assert_eq!(out.main.dictionary().len(), 9);
        assert_eq!(out.main.code_bits(), 4);
        // "the encoded value for hotel was 4 before merging and 6 after".
        assert_eq!(main.code(0), 4);
        assert_eq!(out.main.code(0), 6);
        // Concatenation order: main tuples then delta tuples.
        let all: Vec<u64> = (0..out.main.len()).map(|i| out.main.get(i)).collect();
        assert_eq!(all, vec![8, 4, 6, 4, 1, 3, 9, 2, 3, 7, 3, 25]);
        assert_eq!(out.stats.n_m, 7);
        assert_eq!(out.stats.n_d, 5);
        assert_eq!(out.stats.u_merged, 9);
    }

    #[test]
    fn empty_delta_is_identity_reencoding() {
        let main = MainPartition::from_values(&[5u64, 1, 5, 9]);
        let delta = delta_from(&[]);
        let out = merge_column_naive(&main, &delta, 1);
        assert_eq!(out.main.len(), 4);
        let all: Vec<u64> = (0..4).map(|i| out.main.get(i)).collect();
        assert_eq!(all, vec![5, 1, 5, 9]);
        assert_eq!(out.stats.u_d, 0);
    }

    #[test]
    fn empty_main_bulk_loads_delta() {
        let main = MainPartition::<u64>::empty();
        let delta = delta_from(&[3, 1, 3, 2]);
        let out = merge_column_naive(&main, &delta, 1);
        assert_eq!(out.main.len(), 4);
        let all: Vec<u64> = (0..4).map(|i| out.main.get(i)).collect();
        assert_eq!(all, vec![3, 1, 3, 2]);
        assert_eq!(out.main.dictionary().len(), 3);
    }

    #[test]
    fn code_width_grows_when_dictionary_grows() {
        // 2 values (1 bit) + 3 new ones -> 5 values (3 bits).
        let main = MainPartition::from_values(&[1u64, 2]);
        assert_eq!(main.code_bits(), 1);
        let delta = delta_from(&[10, 11, 12]);
        let out = merge_column_naive(&main, &delta, 1);
        assert_eq!(out.main.code_bits(), 3);
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let values: Vec<u64> = (0..5000).map(|i| (i * 31) % 500).collect();
        let main = MainPartition::from_values(&values);
        let delta = delta_from(&(0..1000).map(|i| (i * 17) % 800).collect::<Vec<_>>());
        let a = merge_column_naive(&main, &delta, 1);
        let b = merge_column_naive(&main, &delta, 8);
        assert_eq!(a.main.dictionary().values(), b.main.dictionary().values());
        let va: Vec<u64> = (0..a.main.len()).map(|i| a.main.get(i)).collect();
        let vb: Vec<u64> = (0..b.main.len()).map(|i| b.main.get(i)).collect();
        assert_eq!(va, vb);
    }
}

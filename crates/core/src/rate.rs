//! Update-rate accounting (Section 4, Equations 1 and 16).

use std::time::Duration;

/// Equation 1: `Update Rate = N_D / (T_U + T_M)` updates/second, where `T_U`
/// is the time spent applying the `N_D` updates to the delta partitions and
/// `T_M` the time spent merging them back.
pub fn update_rate(n_updates: usize, t_u: Duration, t_m: Duration) -> f64 {
    let secs = (t_u + t_m).as_secs_f64();
    if secs == 0.0 {
        f64::INFINITY
    } else {
        n_updates as f64 / secs
    }
}

/// Equation 16: convert an amortized update cost (cycles per tuple per
/// column) into updates/second:
///
/// ```text
///            N_D * hz
/// rate = ----------------------------
///         cpt * (N_M + N_D) * N_C
/// ```
pub fn updates_per_second(cpt: f64, hz: f64, n_d: usize, total_tuples: usize, n_c: usize) -> f64 {
    (n_d as f64 * hz) / (cpt * total_tuples as f64 * n_c as f64)
}

/// The paper's two target update rates (Section 4): systems must sustain at
/// least the low target; high-update systems the high one.
pub const LOW_TARGET_UPDATES_PER_SEC: f64 = 3_000.0;
/// See [`LOW_TARGET_UPDATES_PER_SEC`].
pub const HIGH_TARGET_UPDATES_PER_SEC: f64 = 18_000.0;

/// An observed write rate bucketed against the paper's Section 4 targets —
/// the classification the resource governor feeds its thread-grant
/// decisions from (Section 9: "constantly analyze the available bandwidth
/// and thus adjust the degree of parallelization for the merge process").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WriteLoad {
    /// Below [`LOW_TARGET_UPDATES_PER_SEC`]: any grant keeps up.
    #[default]
    Light,
    /// Between the low and high targets: the paper's baseline enterprise
    /// workload band.
    Moderate,
    /// At or above [`HIGH_TARGET_UPDATES_PER_SEC`]: the delta grows faster
    /// than the baseline merge cadence absorbs — grant the merge more
    /// resources or fall behind.
    Heavy,
}

/// Bucket an observed update rate (tuples/second into the delta) against
/// the Section 4 targets.
pub fn classify_update_rate(updates_per_sec: f64) -> WriteLoad {
    if updates_per_sec >= HIGH_TARGET_UPDATES_PER_SEC {
        WriteLoad::Heavy
    } else if updates_per_sec >= LOW_TARGET_UPDATES_PER_SEC {
        WriteLoad::Moderate
    } else {
        WriteLoad::Light
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_16_worked_example() {
        // "for N_D = 4 million and say N_C = 300, an update cost of 13.5
        // cycles per tuple evaluates to ~31,350 updates/second" at 3.3 GHz
        // with N_M = 100 million.
        let rate = updates_per_second(13.5, 3.3e9, 4_000_000, 104_000_000, 300);
        assert!((rate - 31_350.0).abs() / 31_350.0 < 0.01, "got {rate}");
    }

    #[test]
    fn equation_1_basics() {
        let r = update_rate(1000, Duration::from_millis(200), Duration::from_millis(300));
        assert!((r - 2000.0).abs() < 1e-9);
        assert!(update_rate(5, Duration::ZERO, Duration::ZERO).is_infinite());
    }

    #[test]
    fn rate_decreases_with_merge_time() {
        let fast = update_rate(1000, Duration::from_millis(100), Duration::from_millis(100));
        let slow = update_rate(1000, Duration::from_millis(100), Duration::from_millis(900));
        assert!(fast > slow);
    }

    #[test]
    fn classification_brackets_the_targets() {
        assert_eq!(classify_update_rate(0.0), WriteLoad::Light);
        assert_eq!(
            classify_update_rate(LOW_TARGET_UPDATES_PER_SEC - 1.0),
            WriteLoad::Light
        );
        assert_eq!(
            classify_update_rate(LOW_TARGET_UPDATES_PER_SEC),
            WriteLoad::Moderate
        );
        assert_eq!(
            classify_update_rate(HIGH_TARGET_UPDATES_PER_SEC),
            WriteLoad::Heavy
        );
        assert_eq!(classify_update_rate(f64::INFINITY), WriteLoad::Heavy);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn naive_implementation_misses_targets() {
        // Section 2: the naive implementation handled ~1,000 merged updates
        // per second on VBAP — below even the low target.
        assert!(1_000.0 < LOW_TARGET_UPDATES_PER_SEC);
        assert!(LOW_TARGET_UPDATES_PER_SEC < HIGH_TARGET_UPDATES_PER_SEC);
    }
}

//! Merge instrumentation: the per-step timings the paper's figures plot.
//!
//! Figure 7/8 stack three bars per configuration — "Update Delta",
//! "Merge-Step1" and "Merge-Step2" — measured in *cycles per tuple* where the
//! tuple count is `N_M + N_D` (Section 7: "Update Cost is defined as the
//! amortized time taken per tuple per column").

use std::time::Duration;

/// Which merge implementation produced a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MergeAlgo {
    /// Sections 5.1–5.2 (binary-search Step 2, Equation 5).
    Naive,
    /// Section 5.3 (auxiliary tables, Equation 6), single-threaded.
    Optimized,
    /// Section 6.2 (multi-core, three-phase Step 1(b), partitioned Step 2).
    Parallel,
}

impl std::fmt::Display for MergeAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeAlgo::Naive => write!(f, "naive"),
            MergeAlgo::Optimized => write!(f, "optimized"),
            MergeAlgo::Parallel => write!(f, "parallel"),
        }
    }
}

/// Sizes and per-step wall times for one column's merge.
#[derive(Clone, Debug)]
pub struct ColumnMergeStats {
    /// Which algorithm ran.
    pub algo: MergeAlgo,
    /// Threads **granted** to the merge (1 for serial algorithms). The
    /// parallel stages may run narrower teams than this: each stage clamps
    /// to the host's `available_parallelism()` and falls back toward
    /// serial below its per-thread work crossover
    /// (`hyrise_core::pipeline`'s team-sizing heuristic). Use
    /// `MergePipeline::exact` when a figure or ablation must run the
    /// granted count literally.
    pub threads: usize,
    /// Tuples in the old main partition (`N_M`).
    pub n_m: usize,
    /// Tuples in the delta partition (`N_D`).
    pub n_d: usize,
    /// Old main dictionary size (`|U_M|`).
    pub u_m: usize,
    /// Delta dictionary size (`|U_D|`).
    pub u_d: usize,
    /// Merged dictionary size (`|U'_M|`).
    pub u_merged: usize,
    /// Compressed value-length before the merge (`E_C`, bits).
    pub bits_before: u8,
    /// Compressed value-length after the merge (`E'_C`, bits).
    pub bits_after: u8,
    /// Step 1(a): delta dictionary extraction (+ delta re-coding when
    /// optimized).
    pub t_step1a: Duration,
    /// Step 1(b): dictionary merge (+ auxiliary tables when optimized).
    pub t_step1b: Duration,
    /// Step 2: appending and re-encoding all tuples.
    pub t_step2: Duration,
}

impl ColumnMergeStats {
    /// Total tuples processed (`N'_M = N_M + N_D`).
    pub fn total_tuples(&self) -> usize {
        self.n_m + self.n_d
    }

    /// Step 1 = 1(a) + 1(b).
    pub fn t_step1(&self) -> Duration {
        self.t_step1a + self.t_step1b
    }

    /// Total merge time `T_M` for this column.
    pub fn t_total(&self) -> Duration {
        self.t_step1a + self.t_step1b + self.t_step2
    }

    /// Cycles per tuple for the whole merge at clock `hz`.
    pub fn cycles_per_tuple(&self, hz: f64) -> f64 {
        cycles_per_tuple(self.t_total(), self.total_tuples(), hz)
    }

    /// Cycles per tuple for Step 1 at clock `hz`.
    pub fn step1_cycles_per_tuple(&self, hz: f64) -> f64 {
        cycles_per_tuple(self.t_step1(), self.total_tuples(), hz)
    }

    /// Cycles per tuple for Step 2 at clock `hz`.
    pub fn step2_cycles_per_tuple(&self, hz: f64) -> f64 {
        cycles_per_tuple(self.t_step2, self.total_tuples(), hz)
    }
}

/// Convert a duration over `tuples` into cycles/tuple at clock `hz`.
pub fn cycles_per_tuple(t: Duration, tuples: usize, hz: f64) -> f64 {
    if tuples == 0 {
        0.0
    } else {
        t.as_secs_f64() * hz / tuples as f64
    }
}

/// Per-stage wall time aggregated over a merge — the breakdown the paper's
/// Figure 7/8 stacked bars plot ("Update Delta" aside): Stage 1a (delta
/// dictionary), Stage 1b (dictionary union + aux tables), Stage 2
/// (re-encode).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Stage 1a: delta dictionary extraction (+ delta re-coding).
    pub step1a: Duration,
    /// Stage 1b: dictionary union (+ auxiliary tables).
    pub step1b: Duration,
    /// Stage 2: appending and re-encoding all tuples.
    pub step2: Duration,
}

impl StageTimings {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.step1a + self.step1b + self.step2
    }

    /// Accumulate one column's stage times.
    pub fn add_column(&mut self, c: &ColumnMergeStats) {
        self.step1a += c.t_step1a;
        self.step1b += c.t_step1b;
        self.step2 += c.t_step2;
    }
}

impl std::ops::AddAssign for StageTimings {
    fn add_assign(&mut self, rhs: Self) {
        self.step1a += rhs.step1a;
        self.step1b += rhs.step1b;
        self.step2 += rhs.step2;
    }
}

/// A merged main partition plus its stats.
pub struct MergeOutput<M> {
    /// The new main partition (`M'` with dictionary `U'_M`).
    pub main: M,
    /// Per-step measurements.
    pub stats: ColumnMergeStats,
}

/// Aggregated stats for a whole-table merge (`N_C` columns).
#[derive(Clone, Debug, Default)]
pub struct TableMergeStats {
    /// One entry per merged column.
    pub columns: Vec<ColumnMergeStats>,
    /// Wall-clock time for the whole table merge (`T_M` of Equation 1).
    pub t_wall: Duration,
    /// Most merged-but-uncommitted columns held at any point — `N_C` for an
    /// unbudgeted merge, at most the budget's `K` otherwise.
    pub peak_columns_in_flight: usize,
    /// Peak extra heap bytes held in uncommitted merged outputs (the
    /// merge's transient memory cost on top of the live table).
    pub peak_extra_bytes: usize,
}

impl TableMergeStats {
    /// Per-stage times summed over all merged columns.
    pub fn stage_timings(&self) -> StageTimings {
        let mut t = StageTimings::default();
        for c in &self.columns {
            t.add_column(c);
        }
        t
    }

    /// Sum of per-column step-1 times.
    pub fn t_step1_sum(&self) -> Duration {
        self.columns.iter().map(|c| c.t_step1()).sum()
    }

    /// Sum of per-column step-2 times.
    pub fn t_step2_sum(&self) -> Duration {
        self.columns.iter().map(|c| c.t_step2).sum()
    }

    /// Total tuples merged across columns.
    pub fn total_tuples(&self) -> usize {
        self.columns.iter().map(|c| c.total_tuples()).sum()
    }

    /// Amortized cycles per tuple per column over the wall time.
    pub fn update_cost_cpt(&self, hz: f64) -> f64 {
        cycles_per_tuple(self.t_wall, self.total_tuples(), hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ms1a: u64, ms1b: u64, ms2: u64) -> ColumnMergeStats {
        ColumnMergeStats {
            algo: MergeAlgo::Optimized,
            threads: 1,
            n_m: 900,
            n_d: 100,
            u_m: 90,
            u_d: 30,
            u_merged: 100,
            bits_before: 7,
            bits_after: 7,
            t_step1a: Duration::from_millis(ms1a),
            t_step1b: Duration::from_millis(ms1b),
            t_step2: Duration::from_millis(ms2),
        }
    }

    #[test]
    fn totals_add_up() {
        let s = stats(1, 2, 7);
        assert_eq!(s.total_tuples(), 1000);
        assert_eq!(s.t_step1(), Duration::from_millis(3));
        assert_eq!(s.t_total(), Duration::from_millis(10));
    }

    #[test]
    fn cycles_per_tuple_matches_hand_calc() {
        let s = stats(0, 0, 10); // 10ms for 1000 tuples
                                 // at 1 GHz: 10ms = 1e7 cycles / 1000 tuples = 1e4 cpt
        assert!((s.cycles_per_tuple(1e9) - 1e4).abs() < 1.0);
        assert!((s.step2_cycles_per_tuple(1e9) - 1e4).abs() < 1.0);
        assert_eq!(s.step1_cycles_per_tuple(1e9), 0.0);
    }

    #[test]
    fn zero_tuples_is_zero_cost() {
        assert_eq!(cycles_per_tuple(Duration::from_secs(1), 0, 3.3e9), 0.0);
    }

    #[test]
    fn table_stats_aggregate() {
        let t = TableMergeStats {
            columns: vec![stats(1, 1, 3), stats(2, 2, 6)],
            t_wall: Duration::from_millis(15),
            ..Default::default()
        };
        assert_eq!(t.total_tuples(), 2000);
        assert_eq!(t.t_step1_sum(), Duration::from_millis(6));
        assert_eq!(t.t_step2_sum(), Duration::from_millis(9));
        let st = t.stage_timings();
        assert_eq!(st.step1a, Duration::from_millis(3));
        assert_eq!(st.step1b, Duration::from_millis(3));
        assert_eq!(st.step2, Duration::from_millis(9));
        assert_eq!(st.total(), Duration::from_millis(15));
        // 15ms at 1GHz over 2000 tuples = 7500 cpt
        assert!((t.update_cost_cpt(1e9) - 7500.0).abs() < 1.0);
    }
}

//! Shared worker pool for morsel-driven parallel query execution.
//!
//! The paper's Sec 6.1 memory-traffic model prices a scan at the bytes it
//! streams, which assumes the engine can bring *aggregate* memory bandwidth
//! to bear — all cores, not one. This module provides the process-wide
//! worker set the query layer schedules onto: a fixed complement of threads
//! (sized from [`std::thread::available_parallelism`]) created once and
//! shared by every concurrent query, instead of per-query OS threads whose
//! creation cost and unbounded fan-out the old `thread::scope` paths paid.
//!
//! # Scheduling
//!
//! Each worker owns a local deque; a global injector receives tasks from
//! non-worker threads. Workers pop their own deque LIFO (hot caches),
//! take from the injector FIFO (fairness across queries), and steal FIFO
//! from siblings when both are empty — the classic work-stealing shape.
//! [`Pool::queue_depth`] exposes the number of queued-but-unclaimed tasks
//! as a load signal for the governor and the server's admission gate.
//!
//! # Scoped parallel-for
//!
//! [`Pool::run_indexed`] is the execution primitive the morsel executor
//! uses: run `f(i)` for every `i in 0..n` with bounded parallelism, over a
//! *borrowed* closure, blocking until all indices finish. The caller itself
//! claims indices from the shared counter, so completion never depends on
//! a worker picking the helper tasks up — a query running *on* a pool
//! worker can fan out again (shard task → morsel tasks) without risking
//! the pool feeding on itself into a deadlock. Helper tasks that fire
//! after all indices are claimed observe the drained counter and return
//! without touching the (by then possibly dead) closure, which is what
//! makes the lifetime erasure sound. Panics in `f` are caught, counted,
//! and re-thrown on the caller once every index has finished, so borrowed
//! state is never observed mid-flight.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Monotonic pool identity so a worker thread can tell whether it belongs
/// to the pool it is spawning into (local push) or a different one
/// (injector push).
static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Wakeup protocol: a generation counter under the sleep mutex. Producers
/// bump it after pushing; a worker samples it before scanning the queues
/// and sleeps only while it is unchanged, so a push between scan and sleep
/// can never be missed.
struct Gate {
    gen: Mutex<u64>,
    cv: Condvar,
}

struct Shared {
    id: usize,
    injector: Mutex<VecDeque<Task>>,
    locals: Vec<Mutex<VecDeque<Task>>>,
    gate: Gate,
    /// Queued-but-unclaimed tasks (the admission/governor load signal).
    depth: AtomicUsize,
    /// High-water mark of `depth` since the last [`Pool::reset_peak_depth`].
    peak_depth: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    fn push(&self, task: Task) {
        let slot = WORKER.with(|w| w.get()).and_then(
            |(pid, idx)| {
                if pid == self.id {
                    Some(idx)
                } else {
                    None
                }
            },
        );
        // Count BEFORE the task becomes visible: a worker may pop and
        // decrement the instant it lands in a queue, and an
        // increment-after-push would let `depth` transiently underflow.
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_depth.fetch_max(d, Ordering::Relaxed);
        match slot {
            Some(idx) => self.locals[idx].lock().unwrap().push_back(task),
            None => self.injector.lock().unwrap().push_back(task),
        }
        let mut gen = self.gate.gen.lock().unwrap();
        *gen += 1;
        drop(gen);
        self.gate.cv.notify_all();
    }

    /// One full scan: own deque LIFO, injector FIFO, then steal FIFO.
    fn find_task(&self, me: usize) -> Option<Task> {
        if let Some(t) = self.locals[me].lock().unwrap().pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.locals.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.locals[victim].lock().unwrap().pop_front() {
                return Some(t);
            }
        }
        None
    }

    fn worker_loop(&self, me: usize) {
        loop {
            let gen0 = *self.gate.gen.lock().unwrap();
            if let Some(task) = self.find_task(me) {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                // A panicking task must not take the worker down with it;
                // run_indexed re-throws on the caller instead.
                let _ = panic::catch_unwind(AssertUnwindSafe(task));
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let mut gen = self.gate.gen.lock().unwrap();
            while *gen == gen0 && !self.shutdown.load(Ordering::Acquire) {
                gen = self.gate.cv.wait(gen).unwrap();
            }
        }
    }
}

/// A persistent worker pool shared by every query in the process.
///
/// Created once — via [`Pool::global`] in the executors, or [`Pool::new`]
/// for an owned pool in tests — and shut down by [`Pool::shutdown`] or
/// `Drop`, both of which let queued work drain and join every worker.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// A pool of exactly `threads` workers (`threads >= 1`).
    ///
    /// # Panics
    /// If `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one worker");
        let shared = Arc::new(Shared {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Gate {
                gen: Mutex::new(0),
                cv: Condvar::new(),
            },
            depth: AtomicUsize::new(0),
            peak_depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hyrise-pool-{i}"))
                    .spawn(move || {
                        WORKER.with(|w| w.set(Some((s.id, i))));
                        s.worker_loop(i);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The process-wide pool, created on first use with one worker per
    /// available hardware thread. Every executor schedules through this
    /// instance, so concurrent queries share workers instead of
    /// oversubscribing the machine.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism().map_or(1, |n| n.get());
            Pool::new(n)
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.locals.len()
    }

    /// Tasks currently queued and unclaimed — the load signal the governor
    /// and admission gate consult.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::queue_depth`] since the last
    /// [`Self::reset_peak_depth`] (used by the oversubscription tests).
    pub fn peak_queue_depth(&self) -> usize {
        self.shared.peak_depth.load(Ordering::Relaxed)
    }

    /// Reset the peak-depth high-water mark.
    pub fn reset_peak_depth(&self) {
        self.shared.peak_depth.store(0, Ordering::Relaxed);
    }

    /// Fire-and-forget task submission. A worker of *this* pool pushes to
    /// its own deque (stolen by idle siblings); other threads go through
    /// the shared injector.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        if self.shared.shutdown.load(Ordering::Acquire) {
            // The pool is draining: run inline rather than strand the task
            // in a queue no worker will visit again.
            f();
            return;
        }
        self.shared.push(Box::new(f));
    }

    /// Run `f(i)` for every `i in 0..n` with at most `width` helper tasks,
    /// blocking until all indices complete. Deterministic combine is the
    /// *caller's* job — indices are claimed in arbitrary order, so `f`
    /// must write results into per-index slots.
    ///
    /// `width` bounds this call's parallelism: the number of helper tasks
    /// is `width` clamped to `n` and to the pool size (so the queue never
    /// exceeds the pool), but never below one — on a single-worker pool a
    /// parallel request still runs caller + one worker concurrently, which
    /// is what keeps the cross-thread path exercised on small machines.
    /// `width <= 1` or `n <= 1` runs inline with no task queued, which is
    /// the serial-parity path. The caller participates in claiming
    /// indices, so nested calls from inside a worker cannot deadlock, and
    /// a panic in any `f(i)` is re-thrown here once every index has
    /// finished.
    pub fn run_indexed(&self, n: usize, width: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if n == 1 || width <= 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let helpers = width.min(n).min(self.threads()).max(1);
        // SAFETY: the lifetime is erased, not extended — `ScopeState`
        // dereferences the pointer only while this call's borrow of `f` is
        // provably live (see `ErasedFn`).
        let func = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let state = Arc::new(ScopeState {
            func: ErasedFn(func as *const (dyn Fn(usize) + Sync)),
            n,
            next: AtomicUsize::new(0),
            done: Mutex::new(Done {
                finished: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        });
        for _ in 0..helpers {
            let st = Arc::clone(&state);
            self.spawn(move || st.drain());
        }
        state.drain();
        let mut d = state.done.lock().unwrap();
        while d.finished < n {
            d = state.cv.wait(d).unwrap();
        }
        let panicked = d.panic.take();
        drop(d);
        if let Some(p) = panicked {
            panic::resume_unwind(p);
        }
    }

    /// Graceful shutdown: let queued work drain, then join every worker.
    /// Idempotent; also runs on `Drop`.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut gen = self.shared.gate.gen.lock().unwrap();
            *gen += 1;
        }
        self.shared.gate.cv.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// Queue depth of the global pool, without forcing its creation (a process
/// that never ran a parallel query reports zero). This is the free
/// function the governor samples.
pub fn global_queue_depth() -> usize {
    // `Pool::global` creates on first use; sampling must not. A separate
    // flag records whether the global pool exists yet.
    if GLOBAL_STARTED.load(Ordering::Acquire) {
        Pool::global().queue_depth()
    } else {
        0
    }
}

static GLOBAL_STARTED: AtomicBool = AtomicBool::new(false);

/// Mark the global pool live. Called from the executors' first dispatch;
/// split from [`Pool::global`] so depth sampling stays creation-free.
pub(crate) fn mark_global_started() {
    GLOBAL_STARTED.store(true, Ordering::Release);
}

/// The borrowed parallel-for closure, lifetime-erased. Soundness: the
/// pointer is dereferenced only for indices claimed while `finished < n`,
/// and `run_indexed` does not return before `finished == n` — so every
/// dereference happens while the caller's borrow is still live. Helper
/// tasks that outlive the call observe `next >= n` and never touch it.
struct ErasedFn(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and the pointer is only dereferenced inside the validity window argued
// above, so moving/sharing the pointer value across threads is sound.
unsafe impl Send for ErasedFn {}
unsafe impl Sync for ErasedFn {}

struct Done {
    finished: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct ScopeState {
    func: ErasedFn,
    n: usize,
    next: AtomicUsize,
    done: Mutex<Done>,
    cv: Condvar,
}

impl ScopeState {
    /// Claim and run indices until the counter drains. Runs on helpers and
    /// on the caller alike.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: `i < n` was claimed, so `finished < n` and the
            // caller is still blocked in `run_indexed`; the borrow behind
            // the pointer is live (see `ErasedFn`).
            let f = unsafe { &*self.func.0 };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(i)));
            let mut d = self.done.lock().unwrap();
            d.finished += 1;
            if let Err(p) = result {
                if d.panic.is_none() {
                    d.panic = Some(p);
                }
            }
            if d.finished == self.n {
                self.cv.notify_all();
            }
        }
    }
}

impl Pool {
    /// [`Pool::global`] plus the liveness mark for
    /// [`global_queue_depth`] — the entry point the executors use.
    pub fn global_for_queries() -> &'static Pool {
        let p = Pool::global();
        mark_global_started();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn run_indexed_covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run_indexed(1000, 4, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_indexed_width_one_is_inline_and_queues_nothing() {
        let pool = Pool::new(4);
        pool.reset_peak_depth();
        let sum = AtomicU64::new(0);
        pool.run_indexed(100, 1, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
        assert_eq!(pool.peak_queue_depth(), 0, "serial path must not queue");
    }

    #[test]
    fn nested_run_indexed_from_workers_does_not_deadlock() {
        // Outer fan-out wider than the pool, each index fanning out again:
        // only sound because every claimant (workers *and* blocked
        // callers) drains the shared counter.
        let pool = Pool::new(2);
        let total = AtomicU64::new(0);
        pool.run_indexed(8, 8, &|_| {
            pool.run_indexed(16, 4, &|j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * (15 * 16 / 2));
    }

    #[test]
    fn panic_in_one_index_propagates_after_all_finish() {
        let pool = Pool::new(3);
        let ran = AtomicU64::new(0);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(64, 3, &|i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 17 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "caller must observe the panic");
        assert_eq!(ran.load(Ordering::Relaxed), 64, "all indices still ran");
        // The pool survives a panicking task.
        let ok = AtomicU64::new(0);
        pool.run_indexed(8, 3, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn shutdown_drains_spawned_tasks_and_joins() {
        let pool = Pool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let d = Arc::clone(&done);
            pool.spawn(move || {
                std::thread::sleep(Duration::from_millis(1));
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 32, "no task left behind");
        assert_eq!(pool.queue_depth(), 0);
        // Idempotent, and spawning after shutdown runs inline.
        pool.shutdown();
        let d = Arc::clone(&done);
        pool.spawn(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 33);
    }

    #[test]
    fn drop_joins_without_hanging() {
        let pool = Pool::new(3);
        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        pool.spawn(move || {
            s.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn queue_depth_returns_to_zero_after_run() {
        let pool = Pool::new(4);
        pool.run_indexed(256, 4, &|_| {});
        // All helper tasks either ran or were claimed-out; either way they
        // have been dequeued by shutdown time.
        pool.shutdown();
        assert_eq!(pool.queue_depth(), 0);
    }

    /// Busy-wait until lingering no-op helper tasks (claimed-out by the
    /// caller before a worker reached them) have been popped, so peak
    /// measurements across calls do not see stale queue entries.
    fn settle(pool: &Pool) {
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
    }

    #[test]
    fn helper_tasks_are_bounded_by_width_and_pool_size() {
        let pool = Pool::new(4);
        settle(&pool);
        pool.reset_peak_depth();
        pool.run_indexed(1000, 2, &|_| {});
        assert!(pool.peak_queue_depth() <= 2, "width clamps helper count");
        settle(&pool);
        pool.reset_peak_depth();
        pool.run_indexed(1000, 64, &|_| {});
        assert!(
            pool.peak_queue_depth() <= pool.threads(),
            "pool size clamps helper count"
        );
    }
}

//! The crate's typed error surface.
//!
//! Durability makes fallibility real: once a table carries a write-ahead
//! log, inserts and merges can fail on I/O and recovery can fail on a
//! corrupt log. Every public mutation/recovery entry point returns
//! [`Result`] with this [`Error`]; in-memory-only tables keep their
//! infallible convenience wrappers (an error is impossible on the
//! zero-I/O path, so they simply unwrap).

use std::path::PathBuf;

/// Alias for `std::result::Result<T, hyrise_core::Error>`.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong in a table operation.
///
/// Marked `#[non_exhaustive]`: future PRs (network front-end, replication)
/// will add variants without a breaking change.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An I/O operation on the WAL, a checkpoint, or a staged merge file
    /// failed.
    Io {
        /// What the engine was doing (e.g. `"append wal record"`).
        context: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A persisted file failed validation during recovery: a CRC mismatch
    /// on a non-final record, an impossible length header, or a gap in the
    /// replayed row space of a sealed segment.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// Byte offset of the bad record (0 when the whole file is bad).
        offset: u64,
        /// Human-readable description of the failed check.
        detail: String,
    },
    /// Recovery found the directory's files mutually inconsistent (e.g. a
    /// merge checkpoint whose frozen row count does not match the sealed
    /// segments on disk).
    Recovery {
        /// Human-readable description.
        detail: String,
    },
    /// The merge observed its cancellation token; the table is left with
    /// uncommitted columns rolled back (see `OnlineTable::merge_with`).
    Cancelled,
    /// A builder was given an invalid configuration.
    Config {
        /// Human-readable description.
        detail: String,
    },
}

impl Error {
    /// Shorthand for an [`Error::Io`].
    pub(crate) fn io(context: &'static str, source: std::io::Error) -> Self {
        Error::Io { context, source }
    }

    /// Shorthand for an [`Error::Corrupt`].
    pub(crate) fn corrupt(
        file: impl Into<PathBuf>,
        offset: u64,
        detail: impl Into<String>,
    ) -> Self {
        Error::Corrupt {
            file: file.into(),
            offset,
            detail: detail.into(),
        }
    }

    /// Shorthand for an [`Error::Recovery`].
    pub(crate) fn recovery(detail: impl Into<String>) -> Self {
        Error::Recovery {
            detail: detail.into(),
        }
    }

    /// Shorthand for an [`Error::Config`].
    pub(crate) fn config(detail: impl Into<String>) -> Self {
        Error::Config {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io { context, source } => {
                write!(f, "i/o error while trying to {context}: {source}")
            }
            Error::Corrupt {
                file,
                offset,
                detail,
            } => write!(
                f,
                "corrupt file {} at byte {offset}: {detail}",
                file.display()
            ),
            Error::Recovery { detail } => write!(f, "recovery failed: {detail}"),
            Error::Cancelled => write!(f, "merge was cancelled; uncommitted columns rolled back"),
            Error::Config { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<crate::manager::MergeCancelled> for Error {
    fn from(_: crate::manager::MergeCancelled) -> Self {
        Error::Cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::io("append wal record", std::io::Error::other("disk on fire"));
        let s = e.to_string();
        assert!(s.contains("append wal record"));
        assert!(s.contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());

        let c = Error::corrupt("/tmp/seg-0.wal", 42, "crc mismatch");
        let s = c.to_string();
        assert!(s.contains("seg-0.wal"));
        assert!(s.contains("42"));
        assert!(s.contains("crc mismatch"));
        assert!(std::error::Error::source(&c).is_none());

        assert!(Error::Cancelled.to_string().contains("cancelled"));
        assert!(Error::recovery("x").to_string().contains("x"));
        assert!(Error::config("y").to_string().contains("y"));
    }
}

//! The online merge (Sections 3 and 4), epoch-published.
//!
//! "The merge process is transactionally safe, as it works on a copy of the
//! table and the merged table is committed atomically at the end. During the
//! merge, incoming updates are stored in a temporary second delta, which
//! becomes the primary delta when the merge result is committed.
//! Interferences with other queries are minimized, as the table has to be
//! locked only for a minimal period at the beginning and end of the merge."
//!
//! [`OnlineTable`] implements that protocol with **no lock on the
//! steady-state paths**. The table's state is an immutable `Generation`
//! behind an [`EpochCell`]: per column a main partition, an optional
//! *frozen* delta (mid-merge), an optional *pending* delta (rolled back by
//! a cancelled merge, absorbed at the next freeze), plus one shared
//! append-only [`TailLog`] the inserts go to. Within each column, global
//! tuple ids run main → frozen → pending → tail.
//!
//! * **Reads** ([`OnlineTable::get`], [`OnlineTable::snapshot`]) pin the
//!   generation (two atomic ops), clone the `Arc`s they need, and go —
//!   no lock, no copy of the active delta.
//! * **Writes** ([`OnlineTable::insert_rows`]) reserve tail slots with one
//!   `fetch_add`, write the values, and publish the batch by advancing the
//!   tail's watermark — readers only see rows below it, so batches are
//!   atomic and writers never block readers (or each other, except the
//!   in-order publish hand-off).
//! * **Merges** hold the merge gate (the one remaining critical section,
//!   excepted by design):
//!   1. **Freeze**: seal the tail, compress pending + tail rows into a
//!      bit-packed [`FrozenDelta`] per column (local dictionary + packed
//!      codes), swap in a generation with it frozen and a fresh tail.
//!   2. **Merge**: workers fold `main + frozen` per column from shared
//!      `Arc` snapshots; reads and writes proceed against the live
//!      generation.
//!   3. **Commit**: swap in a generation with the merged mains; the epoch
//!      advances and the retired generation is freed once its readers
//!      drain. Global tuple ids never change, so the shared
//!      [`AtomicValidity`] carries over untouched.
//!
//! A cancelled merge moves each uncommitted column's frozen delta to
//! `pending` (zero copy) and leaves the table observably unchanged.

use crate::epoch::EpochCell;
use crate::error::{Error, Result};
use crate::governor::GovernorConfig;
use crate::pipeline::{
    MergeBudget, MergeGrant, MergePipeline, MergeScratch, MergeStrategy, SpareBank, StepSink,
};
use crate::stats::TableMergeStats;
use crate::wal::{self, Wal};
use hyrise_storage::{
    AtomicValidity, FrozenDelta, MainPartition, MemoryReport, TailLog, TailRegion, ValidityBitmap,
    Value,
};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// When to merge (Section 4: trigger "when the number of tuples N_D in the
/// delta partition is greater than a certain pre-defined fraction of tuples
/// in the main partition N_M") and with what resources ([`MergeGrant`]:
/// threads, strategy, memory budget).
#[derive(Clone, Copy, Debug)]
pub struct MergePolicy {
    /// Merge once `N_D / N_M` exceeds this (e.g. 0.01 for Figure 9's 1%).
    pub delta_fraction: f64,
    /// Threads granted to the merge ("for the remainder, we assume that the
    /// merge uses all available resources" — but a background scheduler may
    /// grant fewer, Section 9).
    pub threads: usize,
    /// Merge algorithm (default [`MergeStrategy::Parallel`]).
    pub strategy: MergeStrategy,
    /// Peak-extra-memory cap (default [`MergeBudget::UNBOUNDED`]); see
    /// [`OnlineTable::merge_with`].
    pub budget: MergeBudget,
}

impl Default for MergePolicy {
    fn default() -> Self {
        Self {
            delta_fraction: 0.05,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            strategy: MergeStrategy::default(),
            budget: MergeBudget::default(),
        }
    }
}

impl MergePolicy {
    /// The resource grant this policy hands to a merge.
    pub fn grant(&self) -> MergeGrant {
        MergeGrant {
            strategy: self.strategy,
            threads: self.threads,
            budget: self.budget,
        }
    }
}

/// Error returned when a merge observes its cancellation token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeCancelled;

impl std::fmt::Display for MergeCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "merge was cancelled; table left unchanged")
    }
}

impl std::error::Error for MergeCancelled {}

/// One column of a published [`Generation`]. At most one of
/// `frozen`/`pending` is `Some` at a time; per column,
/// `main.len() + frozen.len() + pending.len()` equals the generation
/// tail's base, so tail offsets line up across columns.
struct GenColumn<V: Value> {
    main: Arc<MainPartition<V>>,
    /// The delta being merged, if a merge is in flight — sealed and
    /// bit-packed through its local dictionary. Still readable.
    frozen: Option<Arc<FrozenDelta<V>>>,
    /// A cancelled merge's rolled-back delta, readable and re-frozen (in
    /// front of the tail) by the next merge. Zero-copy rollback, so it
    /// stays bit-packed.
    pending: Option<Arc<FrozenDelta<V>>>,
}

impl<V: Value> GenColumn<V> {
    fn share(&self) -> Self {
        Self {
            main: Arc::clone(&self.main),
            frozen: self.frozen.clone(),
            pending: self.pending.clone(),
        }
    }
}

/// One immutable published state of the table. Swapped atomically; the
/// tail `Arc` is shared across commit swaps (only a freeze replaces it).
struct Generation<V: Value> {
    cols: Vec<GenColumn<V>>,
    tail: Arc<TailLog<V>>,
}

impl<V: Value> Generation<V> {
    /// Value of `(col, row)`; `row` must be below `base + published`.
    fn get(&self, col: usize, row: usize) -> V {
        let gc = &self.cols[col];
        let nm = gc.main.len();
        if row < nm {
            return gc.main.get(row);
        }
        let mut off = row - nm;
        if let Some(f) = &gc.frozen {
            if off < f.len() {
                return f.get(off);
            }
            off -= f.len();
        }
        if let Some(p) = &gc.pending {
            if off < p.len() {
                return p.get(off);
            }
            off -= p.len();
        }
        let published = self.tail.published();
        assert!(
            off < published,
            "row {row} out of range (len {})",
            self.tail.base() + published
        );
        self.tail.read(col, off)
    }

    fn share_cols(&self) -> Vec<GenColumn<V>> {
        self.cols.iter().map(|c| c.share()).collect()
    }
}

/// A homogeneous `N_C`-column table with online merge support and
/// lock-free steady-state reads and writes. For mixed-type offline merges
/// see [`crate::parallel::merge_table_parallel`].
pub struct OnlineTable<V: Value> {
    /// The epoch-published generation; see the module docs.
    gen: EpochCell<Generation<V>>,
    /// Shared validity over global tuple ids; survives merges untouched.
    validity: AtomicValidity,
    /// Rows ever inserted — the governor's per-table write-rate feed.
    inserts: AtomicU64,
    n_cols: usize,
    /// Serializes merges (one in flight at a time) — and with them every
    /// generation swap. The one remaining lock; steady-state reads and
    /// writes never touch it.
    merge_gate: Mutex<()>,
    /// Warm [`MergeScratch`] arenas kept across merges: workers check one
    /// out per column task (the stage intermediates — `U_D`, delta codes,
    /// `X_M`/`X_D` — stay per-arena), so steady-state merges allocate
    /// ~nothing for dictionary/aux/output buffers.
    scratch_pool: Mutex<Vec<MergeScratch<V>>>,
    /// The table-level [`SpareBank`]: every checked-out scratch takes and
    /// recycles its *output* buffers (merged dictionary values, packed
    /// code words) here, and the commit path banks retired main
    /// partitions here. One shared bank — instead of per-arena spares —
    /// is what extends the strict zero-allocation guarantee to
    /// multi-worker merges, where the racing column→worker assignment
    /// used to strand a recycled buffer in the wrong worker's arena
    /// (asserted in `tests/merge_scratch_alloc.rs`). Shards of a
    /// [`crate::shard::ShardedTable`] share a single bank.
    bank: Arc<SpareBank<V>>,
    /// The delta write-ahead log, when the table was built with
    /// [`crate::config::Durability::Wal`]. `None` keeps the zero-I/O
    /// in-memory path byte-for-byte unchanged.
    wal: Option<Wal<V>>,
    /// The governor configuration the table was built with (consumed by
    /// recovery for its resume grant and by callers spawning schedulers).
    governor_cfg: Option<GovernorConfig>,
    /// Closes the flip-vs-checkpoint race on durable tables: a delete's
    /// WAL append + in-memory invalidate run under the read side, and the
    /// merge's checkpoint takes the write side before snapshotting
    /// validity — so every flip already durable in a segment the
    /// checkpoint is about to truncate has its in-memory bit applied and
    /// is captured by the snapshot. Uncontended except at that instant.
    flip_gate: RwLock<()>,
}

impl<V: Value> OnlineTable<V> {
    /// An empty table of `num_columns` columns.
    pub fn new(num_columns: usize) -> Self {
        assert!(num_columns > 0, "a table needs at least one column");
        let cols = (0..num_columns)
            .map(|_| GenColumn {
                main: Arc::new(MainPartition::empty()),
                frozen: None,
                pending: None,
            })
            .collect();
        Self {
            gen: EpochCell::new(Box::new(Generation {
                cols,
                tail: Arc::new(TailLog::new(num_columns, 0)),
            })),
            validity: AtomicValidity::new(),
            inserts: AtomicU64::new(0),
            n_cols: num_columns,
            merge_gate: Mutex::new(()),
            scratch_pool: Mutex::new(Vec::new()),
            bank: Arc::new(SpareBank::new()),
            wal: None,
            governor_cfg: None,
            flip_gate: RwLock::new(()),
        }
    }

    /// The unified construction surface: columns, durability, governor —
    /// see [`crate::config::TableBuilder`]. [`Self::new`] remains the
    /// infallible in-memory shorthand.
    pub fn builder() -> crate::config::TableBuilder<V> {
        crate::config::TableBuilder::new()
    }

    /// Share `bank` as this table's spare-buffer bank (builder-style; call
    /// before first use). A [`crate::shard::ShardedTable`] hands every
    /// shard the same bank so retired buffers are reusable across shards
    /// and workers.
    pub fn with_spare_bank(mut self, bank: Arc<SpareBank<V>>) -> Self {
        self.bank = bank;
        self
    }

    /// The table's spare-buffer bank.
    pub fn spare_bank(&self) -> &Arc<SpareBank<V>> {
        &self.bank
    }

    /// Build from bulk-loaded main partitions (all equal length).
    pub fn from_mains(mains: Vec<MainPartition<V>>) -> Self {
        assert!(!mains.is_empty(), "a table needs at least one column");
        let len = mains[0].len();
        assert!(
            mains.iter().all(|m| m.len() == len),
            "all columns must have equal length"
        );
        let n_cols = mains.len();
        let cols = mains
            .into_iter()
            .map(|m| GenColumn {
                main: Arc::new(m),
                frozen: None,
                pending: None,
            })
            .collect();
        Self {
            gen: EpochCell::new(Box::new(Generation {
                cols,
                tail: Arc::new(TailLog::new(n_cols, len)),
            })),
            validity: AtomicValidity::all_valid(len),
            inserts: AtomicU64::new(0),
            n_cols,
            merge_gate: Mutex::new(()),
            scratch_pool: Mutex::new(Vec::new()),
            bank: Arc::new(SpareBank::new()),
            wal: None,
            governor_cfg: None,
            flip_gate: RwLock::new(()),
        }
    }

    /// Rebuild a table from recovered parts: checkpointed mains plus one
    /// replayed delta per column (from the sealed WAL segments), placed
    /// `frozen` when an in-flight merge is about to be resumed, `pending`
    /// otherwise (absorbed by the next freeze, exactly like a cancelled
    /// merge's rollback). The validity bitmap starts empty — recovery
    /// replays checkpoint bits, insert records, and flips on top. Live-tail
    /// rows are replayed afterwards through the normal
    /// [`Self::insert_rows`] path (before the WAL is attached, so replay
    /// never re-logs).
    pub(crate) fn from_recovered_parts(
        mains: Vec<MainPartition<V>>,
        deltas: Vec<Vec<V>>,
        frozen: bool,
    ) -> Self {
        assert!(!mains.is_empty(), "a table needs at least one column");
        let n_cols = mains.len();
        assert_eq!(deltas.len(), n_cols, "one replayed delta per column");
        let rows = mains[0].len();
        let delta_rows = deltas[0].len();
        debug_assert!(mains.iter().all(|m| m.len() == rows));
        debug_assert!(deltas.iter().all(|d| d.len() == delta_rows));
        let cols = mains
            .into_iter()
            .zip(deltas)
            .map(|(m, d)| {
                let d = (!d.is_empty()).then(|| Arc::new(FrozenDelta::from_values(&d)));
                GenColumn {
                    main: Arc::new(m),
                    frozen: if frozen { d.clone() } else { None },
                    pending: if frozen { None } else { d },
                }
            })
            .collect();
        Self {
            gen: EpochCell::new(Box::new(Generation {
                cols,
                tail: Arc::new(TailLog::new(n_cols, rows + delta_rows)),
            })),
            validity: AtomicValidity::new(),
            inserts: AtomicU64::new(0),
            n_cols,
            merge_gate: Mutex::new(()),
            scratch_pool: Mutex::new(Vec::new()),
            bank: Arc::new(SpareBank::new()),
            wal: None,
            governor_cfg: None,
            flip_gate: RwLock::new(()),
        }
    }

    /// Attach (or detach) the write-ahead log. Crate-internal: the builder
    /// attaches it at construction, recovery after replay.
    pub(crate) fn set_wal(&mut self, wal: Option<Wal<V>>) {
        self.wal = wal;
    }

    /// Is the table durable (WAL-attached)?
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Record the governor configuration the table was built with.
    pub(crate) fn set_governor_config(&mut self, cfg: Option<GovernorConfig>) {
        self.governor_cfg = cfg;
    }

    /// The governor configuration the table was built with (via
    /// [`crate::config::TableBuilder::governor`]), if any — callers
    /// spawning schedulers read it back from here, and recovery derives
    /// its resume grant from it.
    pub fn governor_config(&self) -> Option<&GovernorConfig> {
        self.governor_cfg.as_ref()
    }

    /// Direct handle to the shared validity bitmap (recovery replays
    /// checkpoint bits and flips through it).
    pub(crate) fn validity_handle(&self) -> &AtomicValidity {
        &self.validity
    }

    /// Check a warm scratch arena out of the pool (or start a cold one),
    /// attached to the table's [`SpareBank`].
    fn checkout_scratch(&self) -> MergeScratch<V> {
        let mut scratch = self.scratch_pool.lock().pop().unwrap_or_default();
        scratch.attach_bank(Arc::clone(&self.bank));
        scratch
    }

    /// Return a scratch arena to the pool for the next merge.
    fn checkin_scratch(&self, scratch: MergeScratch<V>) {
        self.scratch_pool.lock().push(scratch);
    }

    /// Feed a retired main partition's buffers back into the table's
    /// [`SpareBank`], where any worker's next merge can take them. A no-op
    /// when a concurrent snapshot still shares the partition — the memory
    /// is then freed when the last snapshot drops.
    fn recycle_retired(&self, retired: Arc<MainPartition<V>>) {
        if let Ok(main) = Arc::try_unwrap(retired) {
            self.bank.recycle_main(main);
        }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.n_cols
    }

    /// The current publish epoch: advanced by every generation swap
    /// (merge freeze and commit). Snapshots carry the epoch they were
    /// pinned at — the sharded consistent cut's tag.
    pub fn epoch(&self) -> u64 {
        self.gen.epoch()
    }

    /// Rows ever inserted into this table. Monotonic; the resource
    /// governor differences it over its poll window for a per-shard
    /// sustained write rate.
    pub fn inserted_rows(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Total rows (valid + history). Lock-free: one pin plus the tail's
    /// published watermark.
    pub fn row_count(&self) -> usize {
        let gen = self.gen.pin();
        gen.tail.base() + gen.tail.published()
    }

    /// Rows currently visible. Exact when writers are quiescent; during
    /// concurrent inserts it may transiently count rows whose batch
    /// publish is still in flight.
    pub fn valid_row_count(&self) -> usize {
        self.validity.valid_count()
    }

    /// Insert a row; returns its tuple id. Lock-free — see
    /// [`Self::insert_rows`]. Infallible convenience for in-memory
    /// tables; a durable table whose WAL append fails panics here — use
    /// [`Self::try_insert_row`] to handle the error.
    pub fn insert_row(&self, values: &[V]) -> usize {
        self.try_insert_row(values)
            .expect("insert failed (durable table: use try_insert_row)")
    }

    /// Fallible single-row insert; see [`Self::insert_rows`].
    pub fn try_insert_row(&self, values: &[V]) -> Result<usize> {
        Ok(self.insert_rows(std::slice::from_ref(&values))?.start)
    }

    /// Batched insert, lock-free: one slot reservation (`fetch_add`) for
    /// the whole batch, value writes into the reserved tail slots, then
    /// one watermark publish — readers see the batch atomically or not at
    /// all. Returns the contiguous range of tuple ids assigned. When a
    /// merge freeze has sealed the tail, writers back off and retry
    /// against the fresh tail of the next generation (the freeze installs
    /// it promptly; the retry loop never holds a generation pin while
    /// waiting).
    ///
    /// On a durable table the batch's WAL record is appended (and, under
    /// the `fsync` policy, synced) **before** the watermark publish, so
    /// every visible row is also logged — durable-before-visible. If the
    /// append itself fails the batch is still published (readers and the
    /// sealed-tail protocol stay consistent) and the error is returned:
    /// the log now has a hole at its tip, so treat the WAL as poisoned —
    /// stop writing and re-open via recovery.
    pub fn insert_rows<R: AsRef<[V]>>(&self, rows: &[R]) -> Result<std::ops::Range<usize>> {
        for values in rows {
            assert_eq!(
                values.as_ref().len(),
                self.n_cols,
                "row arity must match column count"
            );
        }
        if rows.is_empty() {
            let n = self.row_count();
            return Ok(n..n);
        }
        loop {
            // A short pin just to grab the current tail; the Arc keeps it
            // alive on its own, and a freeze that seals it mid-write still
            // waits for our publish (seal spins on the watermark), so no
            // pin is held while writing — swaps never wait on writers.
            let tail = {
                let gen = self.gen.pin();
                Arc::clone(&gen.tail)
            };
            match tail.reserve(rows.len()) {
                Ok(res) => {
                    let start = tail.base() + res.start();
                    for (k, values) in rows.iter().enumerate() {
                        for (c, v) in values.as_ref().iter().enumerate() {
                            res.set(c, k, *v);
                        }
                    }
                    // Valid-before-publish: any row a reader can see has
                    // its validity bit set already.
                    for k in 0..rows.len() {
                        self.validity.set_valid(start + k);
                    }
                    // Log-before-publish: the record lands in the live
                    // segment before the rows become visible, hence
                    // strictly before any freeze can seal this tail and
                    // rotate the segment (seal waits for our publish).
                    let logged = match &self.wal {
                        Some(w) => w.append_insert(start, rows),
                        None => Ok(()),
                    };
                    res.publish();
                    self.inserts.fetch_add(rows.len() as u64, Ordering::Relaxed);
                    logged?;
                    return Ok(start..start + rows.len());
                }
                Err(_) => {
                    // Sealed mid-freeze: retry against the next
                    // generation's fresh tail once the swap lands.
                    std::thread::yield_now();
                }
            };
        }
    }

    /// Insert-only update: insert the new version, invalidate the old row.
    /// Infallible convenience — see [`Self::try_update_row`].
    pub fn update_row(&self, old_row: usize, values: &[V]) -> usize {
        self.try_update_row(old_row, values)
            .expect("update failed (durable table: use try_update_row)")
    }

    /// Fallible insert-only update: insert the new version, then
    /// invalidate the old row (logged as a validity flip).
    pub fn try_update_row(&self, old_row: usize, values: &[V]) -> Result<usize> {
        let new_row = self.try_insert_row(values)?;
        self.try_delete_row(old_row)?;
        Ok(new_row)
    }

    /// Invalidate a row. Infallible convenience — see
    /// [`Self::try_delete_row`].
    pub fn delete_row(&self, row: usize) {
        self.try_delete_row(row)
            .expect("delete failed (durable table: use try_delete_row)")
    }

    /// Fallible delete: the validity flip is appended to the WAL (and
    /// synced under `fsync`) **before** the in-memory bit drops —
    /// durable-before-visible, mirroring the insert path.
    pub fn try_delete_row(&self, row: usize) -> Result<()> {
        let _flip = self.flip_gate.read();
        if let Some(w) = &self.wal {
            w.append_flip(row, false)?;
        }
        self.validity.invalidate(row);
        Ok(())
    }

    /// Read one cell (any region: main, frozen, pending, or the tail).
    /// Lock-free.
    pub fn get(&self, col: usize, row: usize) -> V {
        self.gen.pin().get(col, row)
    }

    /// Is the row visible?
    pub fn is_valid(&self, row: usize) -> bool {
        assert!(
            row < self.row_count(),
            "row {row} out of range (len {})",
            self.row_count()
        );
        self.validity.is_valid(row)
    }

    /// Read a whole row.
    pub fn row(&self, row: usize) -> Vec<V> {
        let gen = self.gen.pin();
        (0..self.n_cols).map(|c| gen.get(c, row)).collect()
    }

    /// Tuples currently awaiting a merge (frozen + pending deltas + the
    /// published tail).
    pub fn delta_len(&self) -> usize {
        let gen = self.gen.pin();
        let c = &gen.cols[0];
        c.frozen.as_ref().map_or(0, |f| f.len())
            + c.pending.as_ref().map_or(0, |p| p.len())
            + gen.tail.published()
    }

    /// Tuples in the main partitions.
    pub fn main_len(&self) -> usize {
        self.gen.pin().cols[0].main.len()
    }

    /// `N_D / max(N_M, 1)` — the merge-trigger ratio, always **finite**.
    ///
    /// With an empty main partition the literal `N_D / N_M` would be
    /// `inf`, which surprises custom [`MergePolicy`] arithmetic (e.g.
    /// `fraction * weight` ordering, or serializing the value). Clamping
    /// `N_M` to 1 keeps the value finite while preserving the trigger
    /// semantics: an empty main with a non-empty delta reads as `N_D`,
    /// which exceeds any sane threshold, so [`Self::should_merge`] still
    /// fires. An empty table reads as `0.0`.
    pub fn delta_fraction(&self) -> f64 {
        let (nd, nm) = {
            let gen = self.gen.pin();
            let c = &gen.cols[0];
            (
                c.frozen.as_ref().map_or(0, |f| f.len())
                    + c.pending.as_ref().map_or(0, |p| p.len())
                    + gen.tail.published(),
                c.main.len(),
            )
        };
        nd as f64 / nm.max(1) as f64
    }

    /// Does `policy` call for a merge now?
    pub fn should_merge(&self, policy: &MergePolicy) -> bool {
        self.delta_fraction() > policy.delta_fraction
    }

    /// Byte-level memory accounting over every column's regions (main
    /// codes + dictionary, frozen/pending deltas, plus the uncompressed
    /// tail values), from one generation pin. This is the governor's
    /// memory-pressure sample: a large `delta_total` is reclaimable by
    /// merging, a large total argues for a tight [`MergeBudget`].
    pub fn memory_report(&self) -> MemoryReport {
        let gen = self.gen.pin();
        let tail_rows = gen.tail.published();
        gen.cols
            .iter()
            .map(|c| {
                let mut r = MemoryReport::of_partitions(&c.main, &[]);
                // Frozen and pending deltas are bit-packed: charge them at
                // their compressed size, which is what they actually cost
                // while a merge is in flight.
                if let Some(f) = c.frozen.as_deref() {
                    r = r + MemoryReport::of_frozen(f);
                }
                if let Some(p) = c.pending.as_deref() {
                    r = r + MemoryReport::of_frozen(p);
                }
                r + MemoryReport {
                    delta_values: tail_rows * V::BYTES,
                    ..MemoryReport::default()
                }
            })
            .fold(MemoryReport::default(), |a, b| a + b)
    }

    /// **Freeze** (merge begin, under the gate): seal the tail, wait for
    /// in-flight batch publishes, compress pending + tail rows into a
    /// bit-packed [`FrozenDelta`] per column (global insert order), and
    /// publish a generation with those deltas frozen and a fresh tail.
    /// Writers that hit the sealed tail retry against the fresh one.
    ///
    /// On a durable table the WAL's live segment is sealed and rotated
    /// between the tail seal and the generation swap: every record for the
    /// sealed tail is already in the segment (log-before-publish, and
    /// `seal` waited for all publishes), and no new-tail record can be
    /// appended until the swap installs the new tail. If the rotation
    /// fails, the swap still happens — writers must not spin forever on a
    /// sealed tail — and the error is returned for the caller to unwind
    /// (roll the frozen deltas back and surface the error).
    fn freeze(&self) -> Result<()> {
        let (cols, tail) = {
            let gen = self.gen.pin();
            (gen.share_cols(), Arc::clone(&gen.tail))
        };
        let n = tail.seal();
        let rotated = match &self.wal {
            Some(w) => w.seal_and_rotate(tail.base() + n),
            None => Ok(()),
        };
        let new_cols = cols
            .into_iter()
            .enumerate()
            .map(|(c, gc)| {
                debug_assert!(gc.frozen.is_none(), "merge_gate serializes merges");
                let pending_rows = gc.pending.as_ref().map_or(0, |p| p.len());
                let mut vals: Vec<V> = Vec::with_capacity(pending_rows + n);
                if let Some(p) = &gc.pending {
                    for i in 0..p.len() {
                        vals.push(p.get(i));
                    }
                }
                for s in tail.col_slices(c, n) {
                    vals.extend_from_slice(s);
                }
                GenColumn {
                    main: gc.main,
                    frozen: Some(Arc::new(FrozenDelta::from_values(&vals))),
                    pending: None,
                }
            })
            .collect();
        let new_tail = Arc::new(TailLog::new(self.n_cols, tail.base() + n));
        drop(tail);
        self.gen.swap(Box::new(Generation {
            cols: new_cols,
            tail: new_tail,
        }));
        rotated
    }

    /// **Commit** some columns (under the gate): publish a generation
    /// where each `(index, merged main)` pair replaces its column's main
    /// and drops its frozen delta; the tail `Arc` carries over unchanged
    /// (its base still equals every column's pre-tail length — new main =
    /// old main + frozen). Returns the retired main partitions, uniquely
    /// owned unless snapshots still share them.
    fn commit_columns(&self, outs: Vec<(usize, MainPartition<V>)>) -> Vec<Arc<MainPartition<V>>> {
        let (mut cols, tail) = {
            let gen = self.gen.pin();
            (gen.share_cols(), Arc::clone(&gen.tail))
        };
        let mut retired = Vec::with_capacity(outs.len());
        for (i, new_main) in outs {
            let gc = &mut cols[i];
            retired.push(std::mem::replace(&mut gc.main, Arc::new(new_main)));
            gc.frozen = None;
        }
        self.gen.swap(Box::new(Generation { cols, tail }));
        retired
    }

    /// **Rollback** (under the gate): move every still-frozen column's
    /// delta to `pending` — zero copy, tuple ids unchanged (pending rows
    /// precede the current tail's base). Already-committed columns stay
    /// merged.
    fn rollback_frozen(&self) {
        let (mut cols, tail) = {
            let gen = self.gen.pin();
            (gen.share_cols(), Arc::clone(&gen.tail))
        };
        let mut any = false;
        for gc in cols.iter_mut() {
            if let Some(f) = gc.frozen.take() {
                debug_assert!(gc.pending.is_none(), "one rollback per freeze");
                gc.pending = Some(f);
                any = true;
            }
        }
        if any {
            self.gen.swap(Box::new(Generation { cols, tail }));
        }
    }

    /// Run one online merge with the default grant ([`MergeStrategy::Parallel`],
    /// unbounded budget). Blocks the calling thread for the duration; the
    /// table stays readable and writable throughout (the freeze and commit
    /// swaps are the only moments writers may briefly retry).
    pub fn merge(&self, threads: usize, cancel: Option<&AtomicBool>) -> Result<TableMergeStats> {
        self.merge_with(MergeGrant::with_threads(threads), cancel)
    }

    /// Run one online merge under an explicit [`MergeGrant`]: strategy,
    /// threads, and a [`MergeBudget`] bounding peak extra memory.
    ///
    /// Unbudgeted, all `N_C` columns are merged before one atomic commit —
    /// at peak the table transiently costs ~2x its memory (every column
    /// exists in its old and new generation at once), the known price of
    /// online reorganization in memory-resident stores. With a budget of
    /// `K` columns, the merge runs the paper's Section 4 partial-column
    /// strategy: freeze all deltas once, then merge **and commit** `K`
    /// columns at a time, so at most the largest `K`-column working set
    /// exists on top of the live table. Results are byte-identical to the
    /// unbudgeted merge (every strategy produces the same partitions).
    ///
    /// Cancellation semantics follow the commit granularity: columns in
    /// chunks already committed stay merged (each column individually holds
    /// all its rows, so the table stays consistent — same contract as
    /// [`MergeSession::abort`]); uncommitted columns roll their frozen
    /// delta back to `pending`. Unbudgeted there is a single chunk, so a
    /// cancelled merge leaves the table exactly untouched (the original
    /// contract of [`Self::merge`]).
    ///
    /// Merge-phase intermediates come from the table's warm scratch pool,
    /// and each chunk's commit recycles the retired main partitions into
    /// that pool, so steady-state merges allocate ~nothing.
    ///
    /// On a durable table the merge is a resumable SAGA: a `merge.ckpt`
    /// record log marks the merge begun (synced before any merge work),
    /// each budgeted chunk's merged columns are staged to disk and logged
    /// before the in-memory commit, and the final commit writes a new
    /// table checkpoint, truncates the absorbed WAL segments, and clears
    /// the merge log. A process killed at any point either left no durable
    /// begin record (recovery replays the frozen rows as a pending delta)
    /// or resumes from the last logged chunk — byte-identical either way.
    /// An I/O error mid-merge rolls the uncommitted columns back, clears
    /// the merge log best-effort, and surfaces the error; already
    /// committed chunks stay merged (each column individually holds all
    /// its rows, so the table stays consistent).
    pub fn merge_with(
        &self,
        grant: MergeGrant,
        cancel: Option<&AtomicBool>,
    ) -> Result<TableMergeStats> {
        assert!(grant.threads >= 1, "need at least one thread");
        let _gate = self.merge_gate.lock();
        let t_wall = std::time::Instant::now();

        // Begin: freeze the tail into per-column frozen deltas (and, when
        // durable, rotate the WAL segment). A failed rotation leaves the
        // table consistent in memory but the merge must not proceed: roll
        // the frozen deltas straight back and surface the error. Snapshot
        // handles are dropped per column at commit so retired mains become
        // uniquely owned and recyclable.
        if let Err(e) = self.freeze() {
            self.rollback_frozen();
            return Err(e);
        }
        type Snapshot<V> = (Arc<MainPartition<V>>, Arc<FrozenDelta<V>>);
        let (mut snapshots, frozen_end): (Vec<Option<Snapshot<V>>>, usize) = {
            let gen = self.gen.pin();
            (
                gen.cols
                    .iter()
                    .map(|c| {
                        Some((
                            Arc::clone(&c.main),
                            Arc::clone(c.frozen.as_ref().expect("freeze froze every column")),
                        ))
                    })
                    .collect(),
                gen.tail.base(),
            )
        };

        // SAGA begin record, synced before any merge work: recovery only
        // ever resumes a merge whose begin made it to disk; a crash before
        // this point replays the frozen rows as a plain pending delta.
        let merge_log = match &self.wal {
            Some(w) => match wal::MergeLog::begin(w.dir(), frozen_end, self.n_cols) {
                Ok(log) => Some(log),
                Err(e) => {
                    drop(snapshots);
                    self.rollback_frozen();
                    return Err(e);
                }
            },
            None => None,
        };
        let sink: Option<&dyn StepSink> = merge_log.as_ref().map(|l| l as &dyn StepSink);

        let n_cols = snapshots.len();
        let chunk_cap = grant.budget.max_columns().min(n_cols).max(1);
        let mut stats = TableMergeStats::default();
        let mut chunk_start = 0usize;
        while chunk_start < n_cols {
            let chunk_end = (chunk_start + chunk_cap).min(n_cols);
            let chunk_len = chunk_end - chunk_start;

            // Merge phase: no swap, no lock. Columns of this chunk are
            // processed task-queue style; each column merges with
            // within-column parallelism when the chunk is narrow, serial
            // otherwise (scheme (i) vs (ii), Section 6.2.1).
            let workers = grant.threads.clamp(1, chunk_len);
            let per_column_threads = (grant.threads / workers).max(1);
            let pipeline = MergePipeline::new(grant.strategy, per_column_threads);
            let next = AtomicUsize::new(chunk_start);
            let cancelled = AtomicBool::new(false);
            type Slot<V> = Mutex<Option<crate::stats::MergeOutput<MainPartition<V>>>>;
            let slots: Vec<Slot<V>> = (0..chunk_len).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        let mut scratch = self.checkout_scratch();
                        loop {
                            if cancelled.load(Ordering::Relaxed)
                                || cancel.is_some_and(|c| c.load(Ordering::Relaxed))
                            {
                                cancelled.store(true, Ordering::Relaxed);
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= chunk_end {
                                break;
                            }
                            let (main, frozen) =
                                snapshots[i].as_ref().expect("chunk column not committed");
                            let out = pipeline.merge_column_frozen_observed(
                                main,
                                frozen,
                                &mut scratch,
                                sink,
                                i,
                            );
                            *slots[i - chunk_start].lock() = Some(out);
                        }
                        self.checkin_scratch(scratch);
                    });
                }
            });

            if cancelled.load(Ordering::Relaxed)
                || cancel.is_some_and(|c| c.load(Ordering::Relaxed))
            {
                // Roll back every *uncommitted* column's frozen delta to
                // `pending`, preserving tuple ids (pending rows are older
                // than the tail's). Committed chunks stay. The merge log
                // is cleared so recovery replays the rows as pending too.
                drop(snapshots);
                self.rollback_frozen();
                if let Some(w) = &self.wal {
                    let _ = wal::clear_merge_log(w.dir());
                }
                return Err(Error::Cancelled);
            }

            // Account the chunk's transient footprint, then commit it:
            // swap in a generation with the merged mains (the epoch
            // advance is the atomic commit), and recycle the retired
            // partitions into the spare bank.
            let chunk_bytes: usize = slots
                .iter()
                .map(|s| s.lock().as_ref().map_or(0, |o| o.main.memory_bytes()))
                .sum();
            stats.peak_extra_bytes = stats.peak_extra_bytes.max(chunk_bytes);
            stats.peak_columns_in_flight = stats.peak_columns_in_flight.max(chunk_len);
            let mut outs = Vec::with_capacity(chunk_len);
            for (k, slot) in slots.into_iter().enumerate() {
                let i = chunk_start + k;
                let out = slot
                    .into_inner()
                    .expect("uncancelled merge fills every slot");
                snapshots[i] = None;
                stats.columns.push(out.stats);
                outs.push((i, out.main));
            }
            // Chunked durable merges stage each chunk's merged columns and
            // log the chunk boundary *before* the in-memory commit, so a
            // crash after this point resumes with these columns loaded
            // from disk instead of re-merged. Single-chunk merges skip the
            // staging I/O — there is no intermediate commit to protect.
            if let (Some(log), true) = (&merge_log, chunk_cap < n_cols) {
                let w = self.wal.as_ref().expect("merge log implies wal");
                let staged: Result<()> = outs
                    .iter()
                    .try_for_each(|(i, main)| wal::write_staged_column(w.dir(), *i, main));
                let staged = staged.and_then(|()| {
                    log.chunk_done(&outs.iter().map(|(i, _)| *i).collect::<Vec<_>>())
                });
                if let Err(e) = staged {
                    drop(snapshots);
                    self.rollback_frozen();
                    let _ = wal::clear_merge_log(w.dir());
                    return Err(e);
                }
            }
            for old in self.commit_columns(outs) {
                self.recycle_retired(old);
            }
            chunk_start = chunk_end;
        }

        // Durable epilogue: persist the merged mains as the new table
        // checkpoint (atomic rename), then drop the absorbed segments and
        // the merge log. Failure here loses the merge's *durability*, not
        // its in-memory result: the log is cleared so recovery falls back
        // to the previous checkpoint plus the still-sealed segments.
        if let Some(w) = &self.wal {
            let finish = (|| {
                {
                    let gen = self.gen.pin();
                    let mains: Vec<&MainPartition<V>> = gen.cols.iter().map(|c| &*c.main).collect();
                    let validity = {
                        let _flips = self.flip_gate.write();
                        self.validity.snapshot_prefix(frozen_end)
                    };
                    wal::write_checkpoint(w.dir(), &mains, &validity)?;
                }
                w.truncate_absorbed(frozen_end)?;
                wal::clear_merge_log(w.dir())
            })();
            if let Err(e) = finish {
                let _ = wal::clear_merge_log(w.dir());
                return Err(e);
            }
        }
        stats.t_wall = t_wall.elapsed();
        Ok(stats)
    }

    /// Resume a half-finished durable merge (recovery only). The table was
    /// rebuilt with every column's delta *frozen* and the WAL re-attached;
    /// `staged` holds the columns whose merged outputs were already
    /// durable (loaded from `staged/`), which are committed as-is — the
    /// SAGA's completed steps are not redone. The remaining columns merge
    /// in one chunk, then the normal durable epilogue runs (checkpoint,
    /// segment truncation, merge-log cleanup). Output is byte-identical to
    /// the merge the crash interrupted: merge output depends only on each
    /// column's row value sequence.
    pub(crate) fn resume_merge_with(
        &self,
        grant: MergeGrant,
        staged: Vec<(usize, MainPartition<V>)>,
    ) -> Result<TableMergeStats> {
        assert!(grant.threads >= 1, "need at least one thread");
        let _gate = self.merge_gate.lock();
        let t_wall = std::time::Instant::now();
        let w = self.wal.as_ref().expect("resume requires an attached wal");

        type Snapshot<V> = (Arc<MainPartition<V>>, Arc<FrozenDelta<V>>);
        let (mut snapshots, frozen_end): (Vec<Option<Snapshot<V>>>, usize) = {
            let gen = self.gen.pin();
            (
                gen.cols
                    .iter()
                    .map(|c| {
                        Some((
                            Arc::clone(&c.main),
                            Arc::clone(c.frozen.as_ref().expect("recovery froze every column")),
                        ))
                    })
                    .collect(),
                gen.tail.base(),
            )
        };
        let mut stats = TableMergeStats::default();

        // Commit the already-staged columns first, exactly as the crashed
        // process would have: no re-merge, no new step records.
        if !staged.is_empty() {
            let mut outs = Vec::with_capacity(staged.len());
            for (i, main) in staged {
                debug_assert_eq!(main.len(), frozen_end, "staged column covers all rows");
                snapshots[i] = None;
                outs.push((i, main));
            }
            for old in self.commit_columns(outs) {
                self.recycle_retired(old);
            }
        }

        // Merge the rest in one chunk (a resumed merge is rare enough
        // that budget chunking buys nothing).
        let remaining: Vec<usize> = (0..self.n_cols)
            .filter(|&i| snapshots[i].is_some())
            .collect();
        if !remaining.is_empty() {
            let workers = grant.threads.clamp(1, remaining.len());
            let per_column_threads = (grant.threads / workers).max(1);
            let pipeline = MergePipeline::new(grant.strategy, per_column_threads);
            let next = AtomicUsize::new(0);
            type Slot<V> = Mutex<Option<crate::stats::MergeOutput<MainPartition<V>>>>;
            let slots: Vec<Slot<V>> = remaining.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        let mut scratch = self.checkout_scratch();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= remaining.len() {
                                break;
                            }
                            let i = remaining[k];
                            let (main, frozen) =
                                snapshots[i].as_ref().expect("remaining column is frozen");
                            let out = pipeline.merge_column_frozen(main, frozen, &mut scratch);
                            *slots[k].lock() = Some(out);
                        }
                        self.checkin_scratch(scratch);
                    });
                }
            });
            let mut outs = Vec::with_capacity(remaining.len());
            for (k, slot) in slots.into_iter().enumerate() {
                let i = remaining[k];
                let out = slot.into_inner().expect("resume fills every slot");
                snapshots[i] = None;
                stats.columns.push(out.stats);
                outs.push((i, out.main));
            }
            for old in self.commit_columns(outs) {
                self.recycle_retired(old);
            }
        }
        drop(snapshots);

        // Same durable epilogue as merge_with.
        let finish = (|| {
            {
                let gen = self.gen.pin();
                let mains: Vec<&MainPartition<V>> = gen.cols.iter().map(|c| &*c.main).collect();
                let validity = {
                    let _flips = self.flip_gate.write();
                    self.validity.snapshot_prefix(frozen_end)
                };
                wal::write_checkpoint(w.dir(), &mains, &validity)?;
            }
            w.truncate_absorbed(frozen_end)?;
            wal::clear_merge_log(w.dir())
        })();
        if let Err(e) = finish {
            let _ = wal::clear_merge_log(w.dir());
            return Err(e);
        }
        stats.t_wall = t_wall.elapsed();
        Ok(stats)
    }

    /// Merge if the policy says so; returns stats when a merge ran.
    pub fn maybe_merge(&self, policy: &MergePolicy) -> Option<TableMergeStats> {
        if self.should_merge(policy) {
            self.merge_with(policy.grant(), None).ok()
        } else {
            None
        }
    }

    /// Begin an **incremental** merge (Section 9 future work: "incremental
    /// processing of the individual attributes for the cost of adding
    /// intermediate data structures to guarantee transactional safety",
    /// combined with "pause and resume the merge process").
    ///
    /// The returned [`MergeSession`] merges and commits one column per
    /// [`MergeSession::step`] call; between steps the table serves reads and
    /// writes normally and holds at most one column's merge output as
    /// intermediate state (instead of all `N_C` columns at once). Pausing is
    /// simply not calling `step`; dropping or [`MergeSession::abort`]ing the
    /// session rolls the *unmerged* columns back (already-committed columns
    /// stay merged — every column individually contains all rows, so the
    /// table remains consistent).
    pub fn begin_incremental_merge(&self, threads: usize) -> MergeSession<'_, V> {
        self.begin_incremental_merge_with(MergeGrant::with_threads(threads))
    }

    /// As [`Self::begin_incremental_merge`], with an explicit strategy and
    /// thread grant (the session is inherently a one-column budget, so the
    /// grant's [`MergeBudget`] is moot). Infallible convenience — see
    /// [`Self::try_begin_incremental_merge_with`].
    pub fn begin_incremental_merge_with(&self, grant: MergeGrant) -> MergeSession<'_, V> {
        self.try_begin_incremental_merge_with(grant)
            .expect("freeze failed (durable table: use try_begin_incremental_merge_with)")
    }

    /// Fallible session begin (the freeze rotates the WAL segment on a
    /// durable table, which can fail).
    ///
    /// Sessions deliberately write **no** merge log and no checkpoint:
    /// their value is bounded intermediate state, and staging every
    /// stepped column would reintroduce exactly the I/O the session
    /// avoids holding in memory. Durability simply lags — a crash during
    /// or after a session recovers the pre-session state from the sealed
    /// WAL segments (as a pending delta; merge output depends only on the
    /// row value sequence, so the next merge reproduces it byte for
    /// byte), and the next full [`Self::merge_with`] re-anchors the
    /// checkpoint.
    pub fn try_begin_incremental_merge_with(
        &self,
        grant: MergeGrant,
    ) -> Result<MergeSession<'_, V>> {
        let gate = self.merge_gate.lock();
        if let Err(e) = self.freeze() {
            self.rollback_frozen();
            return Err(e);
        }
        Ok(MergeSession {
            table: self,
            _gate: gate,
            next_col: 0,
            n_cols: self.n_cols,
            grant,
            stats: TableMergeStats::default(),
            t_start: std::time::Instant::now(),
            finished: false,
        })
    }

    /// A consistent point-in-time snapshot of the whole table — **no
    /// lock, no copy**: one generation pin, `Arc` clones of the main and
    /// frozen/pending partitions, a handle to the shared tail clamped to
    /// its published watermark, and a prefix copy of the validity bits.
    /// Two snapshots of an unchanged table share every partition pointer.
    ///
    /// The snapshot is tagged with the [`Self::epoch`] it was pinned at —
    /// the sharded consistent cut reads the tags.
    ///
    /// Scans and aggregates over the snapshot run entirely without
    /// touching the table again — the sharded fan-out operators in
    /// `hyrise-query` are built on this.
    pub fn snapshot(&self) -> TableSnapshot<V> {
        let gen = self.gen.pin();
        let epoch = gen.epoch();
        let tail_rows = gen.tail.published();
        let total = gen.tail.base() + tail_rows;
        let cols = gen
            .cols
            .iter()
            .enumerate()
            .map(|(col, gc)| ColumnSnapshot {
                main: Arc::clone(&gc.main),
                frozen: gc.frozen.clone(),
                pending: gc.pending.clone(),
                tail: Arc::clone(&gen.tail),
                col,
                tail_rows,
            })
            .collect();
        drop(gen);
        TableSnapshot {
            cols,
            validity: self.validity.snapshot_prefix(total),
            epoch,
        }
    }
}

/// One column of a [`TableSnapshot`]: the four mid-merge regions a row can
/// live in, pinned at snapshot time. Global row ids within the shard run
/// `main`, then `frozen`, then `pending`, then the tail prefix below the
/// snapshot's watermark.
pub struct ColumnSnapshot<V: Value> {
    main: Arc<MainPartition<V>>,
    frozen: Option<Arc<FrozenDelta<V>>>,
    pending: Option<Arc<FrozenDelta<V>>>,
    tail: Arc<TailLog<V>>,
    col: usize,
    tail_rows: usize,
}

impl<V: Value> ColumnSnapshot<V> {
    /// Rows in the snapshot (`N_M + N_F + N_P + N_T`).
    pub fn len(&self) -> usize {
        self.main.len()
            + self.frozen.as_ref().map_or(0, |f| f.len())
            + self.pending.as_ref().map_or(0, |p| p.len())
            + self.tail_rows
    }

    /// True when the column held no rows at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The read-optimized partition (dictionary + packed codes).
    pub fn main(&self) -> &MainPartition<V> {
        &self.main
    }

    /// The delta being merged when the snapshot was taken, if any —
    /// bit-packed through its local dictionary. Its rows follow the main
    /// rows in global id order.
    pub fn frozen(&self) -> Option<&FrozenDelta<V>> {
        self.frozen.as_deref()
    }

    /// Rows in the active delta at snapshot time (pending + published
    /// tail — everything after main and frozen in global id order).
    pub fn active_len(&self) -> usize {
        self.pending.as_ref().map_or(0, |p| p.len()) + self.tail_rows
    }

    /// Every region after the main partition, in global row order: the
    /// frozen delta and a cancelled merge's pending delta as bit-packed
    /// [`TailRegion::Packed`] regions (scanned with the SWAR kernels in
    /// local value-id space), then the published tail prefix as raw
    /// chunks (scanned by value comparison). This is the shape query
    /// executors consume.
    pub fn tails(&self) -> Vec<TailRegion<'_, V>> {
        let mut out = Vec::new();
        if let Some(f) = self.frozen.as_deref() {
            if !f.is_empty() {
                out.push(TailRegion::Packed(f));
            }
        }
        if let Some(p) = self.pending.as_deref() {
            if !p.is_empty() {
                out.push(TailRegion::Packed(p));
            }
        }
        out.extend(
            self.tail
                .col_slices(self.col, self.tail_rows)
                .into_iter()
                .map(TailRegion::Raw),
        );
        out
    }

    /// Value of snapshot row `row` (any of the four regions).
    pub fn get(&self, row: usize) -> V {
        let nm = self.main.len();
        if row < nm {
            return self.main.get(row);
        }
        let mut off = row - nm;
        if let Some(f) = &self.frozen {
            if off < f.len() {
                return f.get(off);
            }
            off -= f.len();
        }
        if let Some(p) = &self.pending {
            if off < p.len() {
                return p.get(off);
            }
            off -= p.len();
        }
        assert!(off < self.tail_rows, "row {row} out of snapshot range");
        self.tail.read(self.col, off)
    }
}

/// A consistent read snapshot of an [`OnlineTable`]; see
/// [`OnlineTable::snapshot`]. Rows published after the snapshot's
/// watermark are not visible through it.
pub struct TableSnapshot<V: Value> {
    cols: Vec<ColumnSnapshot<V>>,
    validity: ValidityBitmap,
    epoch: u64,
}

impl<V: Value> TableSnapshot<V> {
    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.cols.len()
    }

    /// Rows in the snapshot (valid + history).
    pub fn row_count(&self) -> usize {
        self.cols[0].len()
    }

    /// The publish epoch the snapshot was pinned at; see
    /// [`OnlineTable::epoch`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// One column's snapshot.
    pub fn col(&self, col: usize) -> &ColumnSnapshot<V> {
        &self.cols[col]
    }

    /// All column snapshots in schema order (executor fan-in path).
    pub fn cols(&self) -> &[ColumnSnapshot<V>] {
        &self.cols
    }

    /// The validity bitmap as of snapshot time.
    pub fn validity(&self) -> &ValidityBitmap {
        &self.validity
    }

    /// Was `row` visible at snapshot time?
    pub fn is_valid(&self, row: usize) -> bool {
        self.validity.is_valid(row)
    }

    /// Materialize a whole snapshot row.
    pub fn row(&self, row: usize) -> Vec<V> {
        self.cols.iter().map(|c| c.get(row)).collect()
    }
}

/// An in-flight incremental merge; see
/// [`OnlineTable::begin_incremental_merge`]. Holds the merge gate, so plain
/// [`OnlineTable::merge`] calls block until the session finishes or drops.
pub struct MergeSession<'t, V: Value> {
    table: &'t OnlineTable<V>,
    _gate: parking_lot::MutexGuard<'t, ()>,
    next_col: usize,
    n_cols: usize,
    grant: MergeGrant,
    stats: TableMergeStats,
    t_start: std::time::Instant,
    finished: bool,
}

impl<V: Value> MergeSession<'_, V> {
    /// Columns not yet merged.
    pub fn remaining(&self) -> usize {
        self.n_cols - self.next_col
    }

    /// Merge and commit the next column. Returns `false` when every column
    /// has been merged. The table stays readable and writable between and
    /// during steps — the commit swap is the only (lock-free) hand-off.
    pub fn step(&mut self) -> bool {
        if self.next_col >= self.n_cols {
            return false;
        }
        let c = self.next_col;
        let (main, frozen) = {
            let gen = self.table.gen.pin();
            let col = &gen.cols[c];
            (
                Arc::clone(&col.main),
                Arc::clone(col.frozen.as_ref().expect("session froze all columns")),
            )
        };
        let mut scratch = self.table.checkout_scratch();
        let pipeline = MergePipeline::new(self.grant.strategy, self.grant.threads);
        let out = pipeline.merge_column_frozen(&main, &frozen, &mut scratch);
        self.table.checkin_scratch(scratch);
        self.stats.peak_extra_bytes = self.stats.peak_extra_bytes.max(out.main.memory_bytes());
        self.stats.peak_columns_in_flight = 1;
        self.stats.columns.push(out.stats);
        drop((main, frozen)); // release snapshot handles so the retiree can recycle
        for old in self.table.commit_columns(vec![(c, out.main)]) {
            self.table.recycle_retired(old);
        }
        self.next_col += 1;
        true
    }

    /// Run all remaining steps and return the stats.
    pub fn finish(mut self) -> TableMergeStats {
        while self.step() {}
        self.finished = true;
        let mut stats = std::mem::take(&mut self.stats);
        stats.t_wall = self.t_start.elapsed();
        stats
    }

    /// Abort: roll back the columns not yet merged. Already-merged columns
    /// stay merged; the table is consistent either way.
    pub fn abort(mut self) {
        self.rollback_unmerged();
        self.finished = true;
    }

    fn rollback_unmerged(&mut self) {
        if self.next_col >= self.n_cols {
            return;
        }
        self.table.rollback_frozen();
        self.next_col = self.n_cols;
    }
}

impl<V: Value> Drop for MergeSession<'_, V> {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback_unmerged();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    fn table_with_rows(cols: usize, rows: u64) -> OnlineTable<u64> {
        let t = OnlineTable::new(cols);
        for i in 0..rows {
            let row: Vec<u64> = (0..cols as u64).map(|c| i * 10 + c).collect();
            t.insert_row(&row);
        }
        t
    }

    #[test]
    fn insert_read_roundtrip() {
        let t = table_with_rows(3, 50);
        assert_eq!(t.row_count(), 50);
        assert_eq!(t.row(7), vec![70, 71, 72]);
        assert_eq!(t.get(2, 49), 492);
        assert_eq!(t.inserted_rows(), 50);
    }

    #[test]
    fn merge_moves_delta_to_main_and_preserves_reads() {
        let t = table_with_rows(2, 100);
        assert_eq!(t.main_len(), 0);
        assert_eq!(t.delta_len(), 100);
        let stats = t.merge(4, None).unwrap();
        assert_eq!(t.main_len(), 100);
        assert_eq!(t.delta_len(), 0);
        assert_eq!(stats.columns.len(), 2);
        for r in [0usize, 42, 99] {
            assert_eq!(t.row(r), vec![r as u64 * 10, r as u64 * 10 + 1]);
        }
    }

    #[test]
    fn second_delta_survives_merge() {
        let t = table_with_rows(1, 10);
        t.merge(2, None).unwrap();
        // New inserts after the merge...
        t.insert_row(&[777]);
        assert_eq!(t.main_len(), 10);
        assert_eq!(t.delta_len(), 1);
        assert_eq!(t.get(0, 10), 777);
        // ...survive the next merge too.
        t.merge(2, None).unwrap();
        assert_eq!(t.main_len(), 11);
        assert_eq!(t.get(0, 10), 777);
    }

    #[test]
    fn concurrent_inserts_during_merge_land_in_second_delta() {
        // Inserts from another thread interleave with repeated merges:
        // writers hitting the sealed tail must retry against the fresh one
        // and nothing may be lost or reordered.
        let t = std::sync::Arc::new(table_with_rows(2, 2_000));
        let t2 = std::sync::Arc::clone(&t);
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                t2.insert_row(&[1_000_000 + n, 2_000_000 + n]);
                n += 1;
            }
            n
        });
        for _ in 0..5 {
            t.merge(2, None).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let inserted = writer.join().unwrap();
        // Nothing lost: total rows = initial + concurrent inserts.
        assert_eq!(t.row_count() as u64, 2_000 + inserted);
        // And the last concurrent row is readable.
        if inserted > 0 {
            let last = t.row_count() - 1;
            let row = t.row(last);
            assert_eq!(row[1] - row[0], 1_000_000);
        }
    }

    #[test]
    fn cancelled_merge_restores_everything() {
        let t = table_with_rows(2, 500);
        let before: Vec<Vec<u64>> = (0..500).map(|r| t.row(r)).collect();
        let cancel = AtomicBool::new(true); // cancelled before it starts
        let err = t.merge(2, Some(&cancel)).unwrap_err();
        assert!(matches!(err, Error::Cancelled));
        assert_eq!(t.main_len(), 0, "cancelled merge must not commit");
        assert_eq!(t.delta_len(), 500);
        let after: Vec<Vec<u64>> = (0..500).map(|r| t.row(r)).collect();
        assert_eq!(before, after, "table must be observably unchanged");
        // A subsequent merge succeeds normally.
        t.merge(2, None).unwrap();
        assert_eq!(t.main_len(), 500);
    }

    #[test]
    fn cancelled_merge_keeps_second_delta_rows() {
        let t = table_with_rows(1, 100);
        // Start a merge that is cancelled, but insert "during" it by
        // pre-freezing: emulate by cancelling and inserting before retry.
        let cancel = AtomicBool::new(true);
        let _ = t.merge(1, Some(&cancel));
        t.insert_row(&[12345]);
        assert_eq!(t.row_count(), 101);
        assert_eq!(t.get(0, 100), 12345);
        t.merge(1, None).unwrap();
        assert_eq!(t.get(0, 100), 12345);
        assert_eq!(t.main_len(), 101);
    }

    #[test]
    fn validity_carries_across_merges() {
        let t = table_with_rows(1, 10);
        let new_row = t.update_row(3, &[999]);
        t.delete_row(7);
        t.merge(2, None).unwrap();
        assert!(!t.is_valid(3));
        assert!(!t.is_valid(7));
        assert!(t.is_valid(new_row));
        assert_eq!(t.get(0, new_row), 999);
        assert_eq!(t.valid_row_count(), 9); // 10 + 1 inserted - 2 invalidated
    }

    #[test]
    fn policy_trigger() {
        let t = table_with_rows(1, 100);
        t.merge(1, None).unwrap();
        let policy = MergePolicy {
            delta_fraction: 0.05,
            threads: 2,
            ..MergePolicy::default()
        };
        assert!(!t.should_merge(&policy));
        for i in 0..5 {
            t.insert_row(&[i]);
        }
        assert!(
            !t.should_merge(&policy),
            "exactly 5% is not strictly greater"
        );
        t.insert_row(&[6]);
        assert!(t.should_merge(&policy));
        assert!(t.maybe_merge(&policy).is_some());
        assert_eq!(t.delta_len(), 0);
        assert!(t.maybe_merge(&policy).is_none());
    }

    /// Byte-level equality of two tables' merged states: dictionaries and
    /// packed code words of every column, plus validity.
    fn assert_bytes_identical(a: &OnlineTable<u64>, b: &OnlineTable<u64>) {
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.num_columns(), sb.num_columns());
        for c in 0..sa.num_columns() {
            assert_eq!(
                sa.col(c).main().dictionary().values(),
                sb.col(c).main().dictionary().values(),
                "column {c}: dictionaries differ"
            );
            assert_eq!(
                sa.col(c).main().packed_codes().words(),
                sb.col(c).main().packed_codes().words(),
                "column {c}: packed words differ"
            );
        }
        assert_eq!(sa.validity().valid_count(), sb.validity().valid_count());
    }

    #[test]
    fn budgeted_merge_is_byte_identical_and_bounds_in_flight() {
        let a = table_with_rows(6, 1_500);
        let b = table_with_rows(6, 1_500);
        let full = a.merge(2, None).unwrap();
        assert_eq!(
            full.peak_columns_in_flight, 6,
            "unbudgeted merge holds every column's output at once"
        );
        let budgeted = b
            .merge_with(
                MergeGrant::with_threads(2).budget(MergeBudget::columns(2)),
                None,
            )
            .unwrap();
        assert_eq!(
            budgeted.peak_columns_in_flight, 2,
            "budget K caps the uncommitted outputs at K columns"
        );
        assert!(budgeted.peak_extra_bytes > 0);
        assert!(
            budgeted.peak_extra_bytes < full.peak_extra_bytes,
            "2-column chunks of a 6-column table must peak below the full set \
             ({} vs {})",
            budgeted.peak_extra_bytes,
            full.peak_extra_bytes
        );
        assert_eq!(budgeted.columns.len(), 6, "every column still merged");
        assert_bytes_identical(&a, &b);
    }

    #[test]
    fn merge_with_strategies_agree_online() {
        for strategy in [
            MergeStrategy::Naive,
            MergeStrategy::Optimized,
            MergeStrategy::Parallel,
        ] {
            let a = table_with_rows(3, 900);
            let b = table_with_rows(3, 900);
            a.merge(2, None).unwrap();
            b.merge_with(
                MergeGrant::with_threads(2)
                    .strategy(strategy)
                    .budget(MergeBudget::columns(1)),
                None,
            )
            .unwrap();
            assert_bytes_identical(&a, &b);
        }
    }

    #[test]
    fn spare_bank_recycles_retired_mains() {
        // After a merge, the table's bank holds the retired generation's
        // buffers; a second merge of the same shape must neither grow nor
        // shrink the banked capacity.
        let t = table_with_rows(2, 2_000);
        t.merge(1, None).unwrap();
        t.merge(1, None).unwrap(); // empty delta: same-size regeneration
        let warmed = t.spare_bank().spare_capacities();
        assert!(warmed.1 > 0, "retired word buffers must have been recycled");
        for _ in 0..3 {
            t.merge(1, None).unwrap();
            assert_eq!(
                t.spare_bank().spare_capacities(),
                warmed,
                "steady-state merges reuse, not reallocate"
            );
        }
    }

    #[test]
    fn memory_report_tracks_the_merge() {
        // Repeating values: dictionary compression must shrink the
        // footprint once the delta folds into the main.
        let t = OnlineTable::<u64>::new(2);
        for i in 0..1_000u64 {
            t.insert_row(&[i % 50, (i % 50) * 3]);
        }
        let before = t.memory_report();
        assert_eq!(before.main_total(), 0, "everything still in the deltas");
        assert!(before.delta_total() > 0);
        t.merge(1, None).unwrap();
        let after = t.memory_report();
        assert_eq!(after.delta_total(), 0, "merge reclaims the delta bytes");
        assert!(after.main_total() > 0);
        assert!(
            after.total() < before.total(),
            "dictionary compression shrinks the footprint ({} vs {})",
            after.total(),
            before.total()
        );
        // A shared bank is visible through the builder.
        let bank = Arc::new(crate::pipeline::SpareBank::new());
        let t2 = OnlineTable::<u64>::new(1).with_spare_bank(Arc::clone(&bank));
        t2.insert_row(&[1]);
        t2.merge(1, None).unwrap();
        t2.merge(1, None).unwrap();
        assert!(
            Arc::ptr_eq(t2.spare_bank(), &bank),
            "builder shares the given bank"
        );
        assert!(
            bank.spare_counts().1 > 0,
            "recycles land in the shared bank"
        );
    }

    #[test]
    fn frozen_delta_is_reported_compressed_while_merge_is_in_flight() {
        // 20K compressible rows (50 distinct values). Before the freeze
        // they sit raw in the tail at 8 B each; once a merge is in flight
        // the frozen delta must be *observably* bit-packed: 6 bits/row
        // plus a 50-entry local dictionary.
        let t = OnlineTable::<u64>::new(1);
        for i in 0..20_000u64 {
            t.insert_row(&[i % 50]);
        }
        let raw = t.memory_report();
        assert_eq!(raw.delta_values, 20_000 * 8);
        assert_eq!(raw.frozen_codes + raw.frozen_dict, 0);

        // The session holds the merge mid-flight: frozen, nothing stepped.
        let s = t.begin_incremental_merge(1);
        let mid = t.memory_report();
        assert_eq!(mid.delta_values, 0, "sealed rows left the raw tail");
        assert_eq!(
            mid.frozen_codes,
            (20_000usize * 6).div_ceil(64) * 8,
            "frozen codes charged at bit-packed size"
        );
        assert_eq!(mid.frozen_dict, 50 * 8);
        assert!(
            mid.delta_total() < raw.delta_total(),
            "freezing must shrink the write-side footprint ({} vs {})",
            mid.delta_total(),
            raw.delta_total()
        );
        // Reads still span the frozen region.
        assert_eq!(t.get(0, 19_999), 19_999 % 50);
        let snap = t.snapshot();
        let f = snap.col(0).frozen().expect("merge is in flight");
        assert_eq!(f.codes().bits(), 6);
        assert_eq!(f.len(), 20_000);

        // Rollback keeps the (now pending) delta compressed too.
        s.abort();
        let back = t.memory_report();
        assert_eq!(back.frozen_codes, mid.frozen_codes);
        assert_eq!(back.delta_values, 0);

        t.merge(1, None).unwrap();
        assert_eq!(t.memory_report().delta_total(), 0);
        assert_eq!(t.get(0, 19_999), 19_999 % 50);
    }

    #[test]
    fn incremental_merge_equals_full_merge() {
        let a = table_with_rows(4, 2_000);
        let b = table_with_rows(4, 2_000);
        a.merge(2, None).unwrap();
        let stats = {
            let mut s = b.begin_incremental_merge(2);
            assert_eq!(s.remaining(), 4);
            assert!(s.step());
            assert_eq!(s.remaining(), 3);
            s.finish()
        };
        assert_eq!(stats.columns.len(), 4);
        assert_eq!(b.main_len(), a.main_len());
        assert_eq!(b.delta_len(), 0);
        for r in (0..2_000).step_by(137) {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn incremental_merge_serves_reads_and_writes_between_steps() {
        let t = table_with_rows(3, 1_000);
        let mut s = t.begin_incremental_merge(2);
        assert!(s.step()); // one column committed, two still frozen
                           // Reads span merged and unmerged columns.
        assert_eq!(t.row(500), vec![5_000, 5_001, 5_002]);
        // Writes land in the second delta.
        t.insert_row(&[7, 8, 9]);
        assert_eq!(t.row(1_000), vec![7, 8, 9]);
        let stats = s.finish();
        assert_eq!(stats.columns.len(), 3);
        assert_eq!(t.main_len(), 1_000);
        assert_eq!(
            t.delta_len(),
            1,
            "the mid-session insert remains in the delta"
        );
        assert_eq!(t.row(1_000), vec![7, 8, 9]);
    }

    #[test]
    fn dropped_session_rolls_back_unmerged_columns() {
        let t = table_with_rows(3, 800);
        {
            let mut s = t.begin_incremental_merge(2);
            assert!(s.step()); // column 0 commits
                               // dropped here without finish(): columns 1..3 roll back
        }
        // Column 0 merged; the others kept their delta. Table fully readable.
        for r in (0..800).step_by(61) {
            assert_eq!(
                t.row(r),
                vec![r as u64 * 10, r as u64 * 10 + 1, r as u64 * 10 + 2]
            );
        }
        // A fresh full merge still works (no stuck frozen deltas).
        t.merge(2, None).unwrap();
        assert_eq!(t.delta_len(), 0);
        for r in (0..800).step_by(61) {
            assert_eq!(
                t.row(r),
                vec![r as u64 * 10, r as u64 * 10 + 1, r as u64 * 10 + 2]
            );
        }
    }

    #[test]
    fn aborted_session_is_consistent_with_concurrent_inserts() {
        let t = table_with_rows(2, 500);
        let mut s = t.begin_incremental_merge(1);
        assert!(s.step());
        t.insert_row(&[111, 222]);
        s.abort();
        assert_eq!(t.row_count(), 501);
        assert_eq!(t.row(500), vec![111, 222]);
        for r in (0..500).step_by(43) {
            assert_eq!(t.row(r), vec![r as u64 * 10, r as u64 * 10 + 1]);
        }
        t.merge(2, None).unwrap();
        assert_eq!(t.main_len(), 501);
    }

    #[test]
    fn session_holds_the_merge_gate() {
        let t = std::sync::Arc::new(table_with_rows(2, 300));
        let mut s = t.begin_incremental_merge(1);
        s.step();
        // A full merge from another thread must wait for the session.
        let t2 = std::sync::Arc::clone(&t);
        let h = std::thread::spawn(move || t2.merge(1, None).map(|s| s.columns.len()));
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !h.is_finished(),
            "merge must block while the session is alive"
        );
        let _ = s.finish();
        assert_eq!(h.join().unwrap().unwrap(), 2);
    }

    #[test]
    fn delta_fraction_is_finite_on_empty_main() {
        let t = OnlineTable::<u64>::new(1);
        assert_eq!(t.delta_fraction(), 0.0, "empty table");
        let policy = MergePolicy {
            delta_fraction: 0.05,
            threads: 1,
            ..MergePolicy::default()
        };
        assert!(!t.should_merge(&policy), "empty table never triggers");
        t.insert_row(&[1]);
        t.insert_row(&[2]);
        let f = t.delta_fraction();
        assert!(f.is_finite(), "no inf for custom-policy arithmetic");
        assert_eq!(f, 2.0, "empty main reads as N_D / 1");
        assert!(
            t.should_merge(&policy),
            "non-empty delta over empty main still triggers"
        );
        // Custom-policy arithmetic that inf would poison stays sane.
        assert!((f * 0.5).is_finite());
        t.merge(1, None).unwrap();
        assert_eq!(t.delta_fraction(), 0.0);
    }

    #[test]
    fn batched_insert_matches_row_at_a_time() {
        let a = OnlineTable::<u64>::new(2);
        let b = OnlineTable::<u64>::new(2);
        let rows: Vec<Vec<u64>> = (0..100u64).map(|i| vec![i, i * 3]).collect();
        let range = a.insert_rows(&rows).unwrap();
        assert_eq!(range, 0..100);
        for r in &rows {
            b.insert_row(r);
        }
        assert_eq!(a.row_count(), b.row_count());
        for r in 0..100 {
            assert_eq!(a.row(r), b.row(r));
        }
        // Batches interleave with merges and single inserts coherently.
        a.merge(2, None).unwrap();
        let range = a.insert_rows(&rows[..7]).unwrap();
        assert_eq!(range, 100..107);
        assert_eq!(a.row(100), rows[0]);
        assert_eq!(a.valid_row_count(), 107);
    }

    #[test]
    fn snapshot_is_a_stable_point_in_time_view() {
        let t = table_with_rows(2, 300);
        t.merge(1, None).unwrap();
        for i in 0..50u64 {
            t.insert_row(&[9_000 + i, 9_100 + i]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.row_count(), 350);
        assert_eq!(snap.num_columns(), 2);
        // Later writes are invisible to the snapshot.
        t.insert_row(&[1, 2]);
        t.delete_row(0);
        assert_eq!(snap.row_count(), 350);
        assert!(snap.is_valid(0), "snapshot validity is frozen");
        assert_eq!(snap.row(7), vec![70, 71]);
        assert_eq!(snap.row(320), vec![9_020, 9_120]);
        assert_eq!(snap.col(0).main().len(), 300);
        assert_eq!(snap.col(0).active_len(), 50);
        assert!(snap.col(0).frozen().is_none());
        assert_eq!(snap.cols().len(), 2);
        assert_eq!(snap.cols()[1].get(320), 9_120);
        let tails = snap.col(1).tails();
        assert_eq!(tails.iter().map(|s| s.len()).sum::<usize>(), 50);
        assert_eq!(tails[0].get(0), 9_100);
    }

    #[test]
    fn snapshots_share_generation_without_copying() {
        // The satellite fix: snapshots of an unchanged table reuse the
        // published generation — same partition pointers, same epoch, no
        // active-delta copy.
        let t = table_with_rows(2, 1_000);
        t.merge(1, None).unwrap();
        t.insert_row(&[5, 6]);
        let a = t.snapshot();
        let b = t.snapshot();
        assert_eq!(a.epoch(), b.epoch());
        for c in 0..2 {
            assert!(
                std::ptr::eq(a.col(c).main(), b.col(c).main()) || {
                    // Arc pointers, not reference identity:
                    Arc::ptr_eq(&a.cols[c].main, &b.cols[c].main)
                },
                "column {c}: snapshots must share the main partition"
            );
            assert!(Arc::ptr_eq(&a.cols[c].tail, &b.cols[c].tail));
        }
        // A merge publishes a new generation: the epoch moves on.
        t.merge(1, None).unwrap();
        let c = t.snapshot();
        assert!(c.epoch() > a.epoch());
        assert!(!Arc::ptr_eq(&a.cols[0].main, &c.cols[0].main));
    }

    #[test]
    fn snapshot_spans_frozen_delta_mid_merge() {
        // Take snapshots while a merge is in flight: rows must be readable
        // from all regions.
        let t = std::sync::Arc::new(table_with_rows(1, 4_000));
        t.merge(1, None).unwrap();
        for i in 0..400u64 {
            t.insert_row(&[50_000 + i]);
        }
        let t2 = std::sync::Arc::clone(&t);
        let h = std::thread::spawn(move || t2.merge(1, None).unwrap());
        let snap = t.snapshot();
        assert_eq!(snap.row_count(), 4_400);
        for r in (0..4_000).step_by(611) {
            assert_eq!(snap.get_row0(r), r as u64 * 10);
        }
        assert_eq!(snap.get_row0(4_399), 50_399);
        h.join().unwrap();
    }

    impl TableSnapshot<u64> {
        /// Test helper: column-0 value of `row`.
        fn get_row0(&self, row: usize) -> u64 {
            self.col(0).get(row)
        }
    }

    #[test]
    fn reads_see_frozen_rows_mid_protocol() {
        // get() must read rows in all regions; simulate the mid-merge
        // layout by merging from another thread while reading.
        let t = std::sync::Arc::new(table_with_rows(1, 5_000));
        let t2 = std::sync::Arc::clone(&t);
        let h = std::thread::spawn(move || t2.merge(1, None).unwrap());
        for r in (0..5_000).step_by(97) {
            assert_eq!(t.get(0, r), r as u64 * 10);
        }
        h.join().unwrap();
        for r in (0..5_000).step_by(97) {
            assert_eq!(t.get(0, r), r as u64 * 10);
        }
    }
}

//! Horizontal sharding: N [`OnlineTable`] shards behind one facade, with a
//! scheduler that grants merge threads *across* shards.
//!
//! The paper engineers a single table that absorbs writes while staying
//! read-optimized (Sections 3 and 9) and argues the merge should be granted
//! resources by a scheduler rather than take the machine (Section 6.2). At
//! production scale the natural next step is horizontal: partition rows
//! across independent tables so that (a) merges are per-shard and touch
//! `1/N`-th of the data, (b) writes to different shards never contend on a
//! table lock, and (c) scans fan out and stitch. Each shard keeps the exact
//! online-merge protocol of [`crate::manager`]; nothing about the paper's
//! merge changes — this layer only routes and coordinates.
//!
//! * [`ShardedTable`] — hash- or range-partitions rows by a key column;
//!   batched [`ShardedTable::insert_rows`], per-shard
//!   [`TableSnapshot`]s for lock-free scans (the fan-out operators live in
//!   `hyrise-query`).
//! * [`ShardedScheduler`] — generalizes the single-table scheduler: at most
//!   `max_concurrent` merges in flight, shards picked by highest delta
//!   fraction first, pause/resume globally.
//! * [`ShardedTable`] also implements [`MergeSource`] (merge the worst
//!   shard), so the plain [`crate::scheduler::SourceScheduler`] can drive a
//!   sharded table one merge at a time when concurrency is not wanted.

use crate::error::Result;
use crate::governor::{GovernorConfig, GrantRecord, LoadView, ResourceGovernor};
use crate::manager::{MergePolicy, OnlineTable, TableSnapshot};
use crate::pipeline::{MergeGrant, SpareBank};
use crate::scheduler::{MergeOutcome, MergeSource};
use crate::stats::TableMergeStats;
use hyrise_storage::{MemoryReport, Value};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The process-wide consistent-cut clock: a pair of monotonic write
/// counters (`started`, `finished`) that bracket every sharded write
/// operation, plus a `paused` flag for the fallback path.
///
/// A multi-shard write batch is *torn* when a fan-out read observes some
/// of its per-shard groups but not others. Each shard's own batch publish
/// is atomic (the tail watermark), so tearing can only happen *across*
/// shards — and the clock makes it detectable: a cut taken while
/// `started == finished` and over which `started` does not move cannot
/// overlap any write operation, hence sees every batch fully or not at
/// all. See [`ShardedTable::consistent_snapshots`].
///
/// Writers never block readers on the happy path: `begin_write` is one
/// `fetch_add` plus one load. Only the (rare) paused fallback makes a
/// writer wait, and a writer that raced the pause *retracts* its start —
/// it has not touched any shard yet — so the drain always terminates.
struct CutClock {
    started: AtomicU64,
    finished: AtomicU64,
    paused: AtomicBool,
}

static CUT_CLOCK: CutClock = CutClock {
    started: AtomicU64::new(0),
    finished: AtomicU64::new(0),
    paused: AtomicBool::new(false),
};

/// Serializes the paused fallback in [`ShardedTable::consistent_snapshots`]
/// so concurrent cutters cannot clear each other's pause.
static CUT_PAUSE: Mutex<()> = Mutex::new(());

impl CutClock {
    /// Enter a write operation; the returned guard marks it finished on
    /// drop. Increment-first, check-paused, retract-on-conflict: the
    /// increment is visible before the paused check in the `SeqCst` order,
    /// so a cutter that drained `started == finished` afterwards cannot
    /// have missed us.
    fn begin_write(&'static self) -> WriteTicket {
        loop {
            self.started.fetch_add(1, Ordering::SeqCst);
            if !self.paused.load(Ordering::SeqCst) {
                return WriteTicket { clock: self };
            }
            // A cut is draining writers: retract (we have not written
            // anything yet) and wait it out.
            self.finished.fetch_add(1, Ordering::SeqCst);
            while self.paused.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        }
    }
}

/// RAII marker of an in-flight sharded write operation.
struct WriteTicket {
    clock: &'static CutClock,
}

impl Drop for WriteTicket {
    fn drop(&mut self) {
        self.clock.finished.fetch_add(1, Ordering::SeqCst);
    }
}

/// Global address of a row in a [`ShardedTable`]: which shard, and the
/// tuple id within that shard. Tuple ids are shard-local (each shard's
/// merge keeps its own ids stable), so the pair is the stable global key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardRowId {
    /// Index of the shard holding the row.
    pub shard: usize,
    /// Tuple id within that shard.
    pub row: usize,
}

/// How rows are routed to shards (always on one key column's value).
#[derive(Clone, Debug)]
pub enum ShardBy<V> {
    /// Hash of the key value modulo the shard count — uniform spread, no
    /// ordering guarantees across shards.
    Hash,
    /// Range partitioning over `bounds` (sorted, ascending): shard `i`
    /// holds keys below `bounds[i]`; the last shard holds the rest. With
    /// `k` bounds there are `k + 1` shards. Range sharding keeps key
    /// locality, so range scans touch few shards.
    Range(Vec<V>),
}

/// N [`OnlineTable`] shards behind one facade: rows are routed by a key
/// column, reads fan out, and every shard merges independently.
pub struct ShardedTable<V: Value> {
    shards: Vec<Arc<OnlineTable<V>>>,
    by: ShardBy<V>,
    key_col: usize,
}

impl<V: Value> ShardedTable<V> {
    /// The unified construction surface: shard count or range bounds, key
    /// column, columns, durability, governor — see
    /// [`crate::config::ShardedTableBuilder`].
    pub fn builder() -> crate::config::ShardedTableBuilder<V> {
        crate::config::ShardedTableBuilder::new()
    }

    /// Assemble a validated sharded table (builder/recovery back door).
    /// All shards already share one [`SpareBank`] when built by the
    /// builder, so a merge on any shard can reuse buffers retired by any
    /// other.
    pub(crate) fn from_parts(shards: Vec<OnlineTable<V>>, by: ShardBy<V>, key_col: usize) -> Self {
        Self {
            shards: shards.into_iter().map(Arc::new).collect(),
            by,
            key_col,
        }
    }

    /// The spare-buffer bank shared by every shard.
    pub fn spare_bank(&self) -> &Arc<SpareBank<V>> {
        self.shards[0].spare_bank()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of columns (same for every shard).
    pub fn num_columns(&self) -> usize {
        self.shards[0].num_columns()
    }

    /// The routing key column.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// All shards (for fan-out drivers and schedulers).
    pub fn shards(&self) -> &[Arc<OnlineTable<V>>] {
        &self.shards
    }

    /// One shard.
    pub fn shard(&self, i: usize) -> &Arc<OnlineTable<V>> {
        &self.shards[i]
    }

    /// The shard a key value routes to.
    pub fn shard_of_key(&self, key: &V) -> usize {
        match &self.by {
            ShardBy::Hash => {
                // DefaultHasher with `new()` uses fixed keys, so routing is
                // deterministic across processes and runs.
                let mut h = std::collections::hash_map::DefaultHasher::new();
                key.hash(&mut h);
                (h.finish() % self.shards.len() as u64) as usize
            }
            ShardBy::Range(bounds) => bounds.partition_point(|b| key >= b),
        }
    }

    /// The shard a full row routes to (its key column's value).
    pub fn shard_of(&self, values: &[V]) -> usize {
        self.shard_of_key(&values[self.key_col])
    }

    /// Insert one row, routed by its key; returns its global address.
    /// Infallible convenience — see [`Self::try_insert_row`].
    pub fn insert_row(&self, values: &[V]) -> ShardRowId {
        self.try_insert_row(values)
            .expect("insert failed (durable table: use try_insert_row)")
    }

    /// Fallible single-row insert (the shard's WAL append can fail).
    pub fn try_insert_row(&self, values: &[V]) -> Result<ShardRowId> {
        let _write = CUT_CLOCK.begin_write();
        let shard = self.shard_of(values);
        Ok(ShardRowId {
            shard,
            row: self.shards[shard].try_insert_row(values)?,
        })
    }

    /// Batched insert: rows are grouped by target shard and each group is
    /// appended as one lock-free reservation + publish
    /// ([`OnlineTable::insert_rows`]), so a large batch costs `O(shards)`
    /// watermark publishes instead of `O(rows)`. The whole operation runs
    /// under one `CutClock` ticket, so a
    /// [`Self::consistent_snapshots`] cut sees all of the batch's shard
    /// groups or none of them. Returns each row's global address, in
    /// input order.
    ///
    /// Durability is per shard: each shard group's WAL record is durable
    /// before that group becomes visible, and an error aborts the
    /// remaining groups. A crash (or error) part-way can therefore leave
    /// a multi-shard batch *torn across shards* on disk — already-logged
    /// groups replay, the rest don't. Cross-shard batch atomicity would
    /// need a two-phase commit across the per-shard logs, which this
    /// engine deliberately does not do; the `CutClock` consistency
    /// guarantee applies to in-memory reads, not to crash recovery.
    pub fn insert_rows<R: AsRef<[V]>>(&self, rows: &[R]) -> Result<Vec<ShardRowId>> {
        let _write = CUT_CLOCK.begin_write();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, r) in rows.iter().enumerate() {
            groups[self.shard_of(r.as_ref())].push(i);
        }
        let mut ids = vec![ShardRowId { shard: 0, row: 0 }; rows.len()];
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let batch: Vec<&[V]> = group.iter().map(|&i| rows[i].as_ref()).collect();
            let range = self.shards[shard].insert_rows(&batch)?;
            for (&i, row) in group.iter().zip(range) {
                ids[i] = ShardRowId { shard, row };
            }
        }
        Ok(ids)
    }

    /// Read one cell.
    pub fn get(&self, id: ShardRowId, col: usize) -> V {
        self.shards[id.shard].get(col, id.row)
    }

    /// Read a whole row.
    pub fn row(&self, id: ShardRowId) -> Vec<V> {
        self.shards[id.shard].row(id.row)
    }

    /// Is the row visible?
    pub fn is_valid(&self, id: ShardRowId) -> bool {
        self.shards[id.shard].is_valid(id.row)
    }

    /// Insert-only update: the new version is routed by its *new* key (it
    /// may land on a different shard than `old`), then the old row is
    /// invalidated. Returns the new version's address. Infallible
    /// convenience — see [`Self::try_update_row`].
    pub fn update_row(&self, old: ShardRowId, values: &[V]) -> ShardRowId {
        self.try_update_row(old, values)
            .expect("update failed (durable table: use try_update_row)")
    }

    /// Fallible insert-only update.
    pub fn try_update_row(&self, old: ShardRowId, values: &[V]) -> Result<ShardRowId> {
        // One ticket across both shards: a cut never sees the new version
        // without the old one's invalidation (or vice versa).
        let _write = CUT_CLOCK.begin_write();
        let shard = self.shard_of(values);
        let new_id = ShardRowId {
            shard,
            row: self.shards[shard].try_insert_row(values)?,
        };
        self.shards[old.shard].try_delete_row(old.row)?;
        Ok(new_id)
    }

    /// Invalidate a row. Infallible convenience — see
    /// [`Self::try_delete_row`].
    pub fn delete_row(&self, id: ShardRowId) {
        self.try_delete_row(id)
            .expect("delete failed (durable table: use try_delete_row)")
    }

    /// Fallible delete: the validity flip is logged on the owning shard
    /// before the in-memory bit drops.
    pub fn try_delete_row(&self, id: ShardRowId) -> Result<()> {
        let _write = CUT_CLOCK.begin_write();
        self.shards[id.shard].try_delete_row(id.row)
    }

    /// Total rows across shards (valid + history).
    pub fn row_count(&self) -> usize {
        self.shards.iter().map(|s| s.row_count()).sum()
    }

    /// Visible rows across shards.
    pub fn valid_row_count(&self) -> usize {
        self.shards.iter().map(|s| s.valid_row_count()).sum()
    }

    /// Tuples awaiting a merge, across shards.
    pub fn delta_len(&self) -> usize {
        self.shards.iter().map(|s| s.delta_len()).sum()
    }

    /// Tuples in main partitions, across shards.
    pub fn main_len(&self) -> usize {
        self.shards.iter().map(|s| s.main_len()).sum()
    }

    /// Every shard's merge-trigger ratio (finite; see
    /// [`OnlineTable::delta_fraction`]).
    pub fn delta_fractions(&self) -> Vec<f64> {
        self.shards.iter().map(|s| s.delta_fraction()).collect()
    }

    /// The worst shard's trigger ratio — what a global back-pressure check
    /// should look at.
    pub fn max_delta_fraction(&self) -> f64 {
        self.delta_fractions().into_iter().fold(0.0, f64::max)
    }

    /// Byte-level memory accounting summed over every shard — the
    /// governor's memory-pressure sample for the whole sharded table.
    pub fn memory_report(&self) -> MemoryReport {
        self.shards
            .iter()
            .map(|s| s.memory_report())
            .fold(MemoryReport::default(), |a, b| a + b)
    }

    /// A per-shard snapshot set for lock-free fan-out scans. Each snapshot
    /// is internally consistent (per-shard snapshot isolation), but the
    /// snapshots are taken in sequence, so a write operation spanning
    /// shards may be half-visible across them. Use
    /// [`Self::consistent_snapshots`] when the fan-out result must not
    /// observe torn multi-shard batches.
    pub fn snapshots(&self) -> Vec<TableSnapshot<V>> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// A **globally consistent cut**: a per-shard snapshot set that no
    /// multi-shard write operation straddles — every batched insert (and
    /// cross-shard update) is fully visible or fully invisible. This is
    /// what the sharded query executor fans out over, so cross-shard
    /// `count()` / `sum()` aggregates never observe a torn batch.
    ///
    /// Optimistic first: read the `CutClock`, require no write in
    /// flight, snapshot every shard (each snapshot is one epoch pin — no
    /// lock), and verify no write *started* meanwhile; retry on conflict.
    /// Under sustained write pressure the fallback briefly pauses writers
    /// (they retract and wait before touching any shard), drains the
    /// in-flight ones, and cuts — bounded work, no reader/writer lock
    /// anywhere.
    pub fn consistent_snapshots(&self) -> Vec<TableSnapshot<V>> {
        const OPTIMISTIC_TRIES: usize = 8;
        for _ in 0..OPTIMISTIC_TRIES {
            let finished = CUT_CLOCK.finished.load(Ordering::SeqCst);
            let started = CUT_CLOCK.started.load(Ordering::SeqCst);
            if started != finished {
                // A write is mid-flight; snapshotting now could tear it.
                std::thread::yield_now();
                continue;
            }
            let snaps = self.snapshots();
            if CUT_CLOCK.started.load(Ordering::SeqCst) == started {
                return snaps;
            }
        }
        // Contended: pause writers for the duration of one snapshot pass.
        // The lock only serializes concurrent *cutters* (so one cannot
        // clear another's pause); writers never take it.
        let _cut = CUT_PAUSE.lock();
        CUT_CLOCK.paused.store(true, Ordering::SeqCst);
        while CUT_CLOCK.started.load(Ordering::SeqCst) != CUT_CLOCK.finished.load(Ordering::SeqCst)
        {
            std::thread::yield_now();
        }
        let snaps = self.snapshots();
        CUT_CLOCK.paused.store(false, Ordering::SeqCst);
        snaps
    }

    /// Cumulative rows inserted per shard (monotonic counters). The
    /// sharded scheduler's governor differences these over its poll
    /// window to rank shards by sustained write rate.
    pub fn inserted_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.inserted_rows()).collect()
    }

    /// Merge every shard that has delta tuples, one after the other (the
    /// quiesce path; the scheduler is the concurrent path). Returns the
    /// per-shard stats of the merges that ran.
    pub fn merge_all(&self, threads: usize) -> Result<Vec<TableMergeStats>> {
        self.merge_all_with(MergeGrant::with_threads(threads))
    }

    /// As [`Self::merge_all`] with an explicit [`MergeGrant`] — strategy
    /// and [`crate::pipeline::MergeBudget`] apply per shard, so a budget of
    /// `K` columns caps every shard merge's peak extra memory. The first
    /// shard merge to fail aborts the sweep (each shard merge is
    /// individually atomic, so earlier shards stay merged and the failing
    /// shard rolled back).
    pub fn merge_all_with(&self, grant: MergeGrant) -> Result<Vec<TableMergeStats>> {
        self.shards
            .iter()
            .filter(|s| s.delta_len() > 0)
            .map(|s| s.merge_with(grant, None))
            .collect()
    }
}

/// Merging a sharded table as a single [`MergeSource`] means: report the
/// worst shard's ratio, merge the worst shard. This lets the plain
/// [`crate::scheduler::SourceScheduler`] keep a sharded table bounded one
/// merge at a time; [`ShardedScheduler`] is the concurrent upgrade.
impl<V: Value> MergeSource for ShardedTable<V> {
    fn delta_fraction(&self) -> f64 {
        self.max_delta_fraction()
    }

    fn delta_tuples(&self) -> usize {
        self.delta_len()
    }

    fn memory_report(&self) -> MemoryReport {
        ShardedTable::memory_report(self)
    }

    fn inserted_rows(&self) -> u64 {
        self.shards.iter().map(|s| s.inserted_rows()).sum()
    }

    fn run_merge(&self, grant: MergeGrant) -> Option<MergeOutcome> {
        let fractions = self.delta_fractions();
        let worst = fractions
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?
            .0;
        self.shards[worst].run_merge(grant)
    }
}

/// One shard's cumulative merge accounting, with the per-stage breakdown
/// ([`crate::stats::ColumnMergeStats`] summed over columns and merges) that
/// the figure binaries need to reproduce the paper's stage-level plots
/// (Figures 7/8 stack Step 1 and Step 2 per configuration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardMergeStats {
    /// Merges completed on this shard.
    pub merges: u64,
    /// Microseconds in Stage 1a (delta dictionary + re-coding).
    pub step1a_micros: u64,
    /// Microseconds in Stage 1b (dictionary union + aux tables).
    pub step1b_micros: u64,
    /// Microseconds in Stage 2 (re-encode).
    pub step2_micros: u64,
}

impl ShardMergeStats {
    /// Total microseconds across all stages.
    pub fn total_micros(&self) -> u64 {
        self.step1a_micros + self.step1b_micros + self.step2_micros
    }
}

/// Cumulative [`ShardedScheduler`] statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardedSchedulerStats {
    /// Merges completed across all shards.
    pub merges: u64,
    /// Tuples moved from delta to main, across all shards and columns.
    pub tuples_merged: u64,
    /// Total milliseconds spent inside merges (sums across concurrent
    /// merges, so it can exceed wall time).
    pub merge_millis: u64,
    /// Per-shard merge counts with per-stage timing breakdown.
    pub per_shard: Vec<ShardMergeStats>,
    /// Bounded trace of the governor's recent grant decisions (strategy,
    /// threads, budget K, triggering signal), oldest first — one entry per
    /// poll round that selected at least one shard.
    pub grants: Vec<GrantRecord>,
}

/// Background merge scheduler over a [`ShardedTable`]: each poll round its
/// [`ResourceGovernor`] samples read/write/memory pressure, ranks the
/// eligible shards by `delta fraction × pressure` (worst first), grants at
/// most `max_concurrent` of them the round's adaptive [`MergeGrant`], and
/// runs those merges concurrently — the multi-table realization of the
/// paper's "scheduling algorithm \[that\] could constantly analyze the
/// available bandwidth and thus adjust the degree of parallelization"
/// (Section 9). The decision core is the same [`ResourceGovernor::plan`]
/// the single-table [`crate::scheduler::SourceScheduler`] polls.
/// Pause/resume apply globally across all shards.
pub struct ShardedScheduler<V: Value> {
    table: Arc<ShardedTable<V>>,
    governor: Arc<ResourceGovernor>,
    max_concurrent: usize,
    stop: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    merges: Arc<AtomicU64>,
    tuples: Arc<AtomicU64>,
    millis: Arc<AtomicU64>,
    per_shard: Arc<Vec<ShardCells>>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Lock-free accumulation cells behind one [`ShardMergeStats`] entry.
#[derive(Default)]
struct ShardCells {
    merges: AtomicU64,
    step1a_micros: AtomicU64,
    step1b_micros: AtomicU64,
    step2_micros: AtomicU64,
}

impl ShardCells {
    fn record(&self, out: &MergeOutcome) {
        self.merges.fetch_add(1, Ordering::Relaxed);
        self.step1a_micros
            .fetch_add(out.stages.step1a.as_micros() as u64, Ordering::Relaxed);
        self.step1b_micros
            .fetch_add(out.stages.step1b.as_micros() as u64, Ordering::Relaxed);
        self.step2_micros
            .fetch_add(out.stages.step2.as_micros() as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ShardMergeStats {
        ShardMergeStats {
            merges: self.merges.load(Ordering::Relaxed),
            step1a_micros: self.step1a_micros.load(Ordering::Relaxed),
            step1b_micros: self.step1b_micros.load(Ordering::Relaxed),
            step2_micros: self.step2_micros.load(Ordering::Relaxed),
        }
    }
}

impl<V: Value> ShardedScheduler<V> {
    /// Spawn the scheduler daemon: check triggers every `poll`, run at most
    /// `max_concurrent` shard merges at a time. The policy is wrapped in a
    /// default [`ResourceGovernor`] ([`GovernorConfig::from_policy`]), so
    /// at baseline each chosen shard gets `policy.threads` threads exactly
    /// as before; use [`Self::spawn_governed`] to tune the adaptive
    /// behavior.
    pub fn spawn(
        table: Arc<ShardedTable<V>>,
        policy: MergePolicy,
        max_concurrent: usize,
        poll: Duration,
    ) -> Self {
        Self::spawn_governed(
            table,
            ResourceGovernor::new(GovernorConfig::from_policy(policy)),
            max_concurrent,
            poll,
        )
    }

    /// Spawn the scheduler daemon with per-round grants from `governor`.
    pub fn spawn_governed(
        table: Arc<ShardedTable<V>>,
        governor: ResourceGovernor,
        max_concurrent: usize,
        poll: Duration,
    ) -> Self {
        let governor = Arc::new(governor);
        let max_concurrent = max_concurrent.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(false));
        let merges = Arc::new(AtomicU64::new(0));
        let tuples = Arc::new(AtomicU64::new(0));
        let millis = Arc::new(AtomicU64::new(0));
        let per_shard: Arc<Vec<ShardCells>> = Arc::new(
            (0..table.num_shards())
                .map(|_| ShardCells::default())
                .collect(),
        );

        let handle = {
            let table = Arc::clone(&table);
            let governor = Arc::clone(&governor);
            let stop = Arc::clone(&stop);
            let paused = Arc::clone(&paused);
            let merges = Arc::clone(&merges);
            let tuples = Arc::clone(&tuples);
            let millis = Arc::clone(&millis);
            let per_shard = Arc::clone(&per_shard);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if !paused.load(Ordering::Relaxed) {
                        // One governor round: sample pressure, rank shards
                        // by delta fraction × pressure, emit the adaptive
                        // grant for the chosen few.
                        let view = LoadView {
                            fractions: table.delta_fractions(),
                            inserted: table.inserted_per_shard(),
                            delta_tuples: table.delta_len(),
                            memory: table.memory_report(),
                            max_concurrent,
                        };
                        let plan = governor.plan(&view);
                        if !plan.selected.is_empty() {
                            // Grant merge threads to the chosen shards; the
                            // scope is the at-most-K concurrency bound.
                            std::thread::scope(|s| {
                                for &i in &plan.selected {
                                    let shard = Arc::clone(table.shard(i));
                                    let grant = plan.grant;
                                    let (merges, tuples, millis, per_shard, governor) =
                                        (&merges, &tuples, &millis, &per_shard, &governor);
                                    s.spawn(move || {
                                        if let Some(out) = shard.run_merge(grant) {
                                            merges.fetch_add(1, Ordering::Relaxed);
                                            tuples.fetch_add(out.tuples_moved, Ordering::Relaxed);
                                            millis.fetch_add(
                                                out.wall.as_millis() as u64,
                                                Ordering::Relaxed,
                                            );
                                            per_shard[i].record(&out);
                                            governor.record_outcome(&out);
                                        }
                                    });
                                }
                            });
                        }
                    }
                    std::thread::sleep(poll);
                }
            })
        };
        Self {
            table,
            governor,
            max_concurrent,
            stop,
            paused,
            merges,
            tuples,
            millis,
            per_shard,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// The sharded table being managed.
    pub fn table(&self) -> &Arc<ShardedTable<V>> {
        &self.table
    }

    /// The governor granting this scheduler's merges.
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.governor
    }

    /// The concurrency bound (merge slots per poll round).
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// Pause scheduling globally: no shard starts a new merge until
    /// [`Self::resume`]; in-flight merges complete.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Relaxed);
    }

    /// Resume scheduling after [`Self::pause`].
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Relaxed);
    }

    /// Is the scheduler currently paused?
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Relaxed)
    }

    /// Snapshot of cumulative statistics (including the governor's recent
    /// grant trace).
    pub fn stats(&self) -> ShardedSchedulerStats {
        ShardedSchedulerStats {
            merges: self.merges.load(Ordering::Relaxed),
            tuples_merged: self.tuples.load(Ordering::Relaxed),
            merge_millis: self.millis.load(Ordering::Relaxed),
            per_shard: self.per_shard.iter().map(|c| c.snapshot()).collect(),
            grants: self.governor.recent_grants(),
        }
    }

    /// Stop the daemon and wait for it (and any in-flight merges) to
    /// finish. Called automatically on drop.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl<V: Value> Drop for ShardedScheduler<V> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SourceScheduler;

    fn row(i: u64, cols: usize) -> Vec<u64> {
        (0..cols as u64).map(|c| i * 10 + c).collect()
    }

    #[test]
    fn hash_routing_is_deterministic_and_covers_shards() {
        let t = ShardedTable::<u64>::builder()
            .shards(4)
            .columns(2)
            .build()
            .unwrap();
        let mut seen = [false; 4];
        for i in 0..1_000u64 {
            let a = t.shard_of(&row(i, 2));
            let b = t.shard_of(&row(i, 2));
            assert_eq!(a, b, "routing must be deterministic");
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 keys must hit all 4 shards");
    }

    #[test]
    fn range_routing_respects_bounds() {
        let t = ShardedTable::<u64>::builder()
            .partitioning(ShardBy::Range(vec![100, 200]))
            .columns(1)
            .build()
            .unwrap();
        assert_eq!(t.num_shards(), 3);
        assert_eq!(t.shard_of_key(&0), 0);
        assert_eq!(t.shard_of_key(&99), 0);
        assert_eq!(t.shard_of_key(&100), 1, "bounds are inclusive lower ends");
        assert_eq!(t.shard_of_key(&199), 1);
        assert_eq!(t.shard_of_key(&200), 2);
        assert_eq!(t.shard_of_key(&u64::MAX), 2);
    }

    #[test]
    fn unsorted_range_bounds_rejected_by_builder() {
        let r = ShardedTable::<u64>::builder()
            .partitioning(ShardBy::Range(vec![200, 100]))
            .columns(1)
            .build();
        assert!(matches!(r, Err(crate::Error::Config { .. })));
    }

    #[test]
    fn insert_read_roundtrip_across_shards() {
        let t = ShardedTable::<u64>::builder()
            .shards(3)
            .columns(2)
            .build()
            .unwrap();
        let ids: Vec<ShardRowId> = (0..300u64).map(|i| t.insert_row(&row(i, 2))).collect();
        assert_eq!(t.row_count(), 300);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.row(*id), row(i as u64, 2), "row {i}");
            assert!(t.is_valid(*id));
        }
    }

    #[test]
    fn batched_insert_matches_single_inserts() {
        let a = ShardedTable::<u64>::builder()
            .shards(4)
            .columns(3)
            .build()
            .unwrap();
        let b = ShardedTable::<u64>::builder()
            .shards(4)
            .columns(3)
            .build()
            .unwrap();
        let rows: Vec<Vec<u64>> = (0..500u64).map(|i| row(i, 3)).collect();
        let batch_ids = a.insert_rows(&rows).unwrap();
        let single_ids: Vec<ShardRowId> = rows.iter().map(|r| b.insert_row(r)).collect();
        assert_eq!(batch_ids, single_ids, "same routing, same local ids");
        for (r, id) in rows.iter().zip(&batch_ids) {
            assert_eq!(&a.row(*id), r);
        }
        assert_eq!(a.row_count(), 500);
        assert_eq!(a.valid_row_count(), 500);
    }

    #[test]
    fn update_may_move_rows_across_shards() {
        let t = ShardedTable::<u64>::builder()
            .partitioning(ShardBy::Range(vec![1_000]))
            .columns(2)
            .key_col(0)
            .build()
            .unwrap();
        let old = t.insert_row(&[5, 50]);
        assert_eq!(old.shard, 0);
        let new = t.update_row(old, &[2_000, 50]);
        assert_eq!(new.shard, 1, "new key routes to the other shard");
        assert!(!t.is_valid(old), "old version invalidated");
        assert!(t.is_valid(new));
        assert_eq!(t.valid_row_count(), 1);
        assert_eq!(t.row_count(), 2, "insert-only model keeps history");
    }

    #[test]
    fn merges_are_per_shard_and_preserve_reads() {
        let t = ShardedTable::<u64>::builder()
            .shards(4)
            .columns(2)
            .build()
            .unwrap();
        let rows: Vec<Vec<u64>> = (0..2_000u64).map(|i| row(i, 2)).collect();
        let ids = t.insert_rows(&rows).unwrap();
        assert_eq!(t.main_len(), 0);
        let stats = t.merge_all(2).unwrap();
        assert_eq!(stats.len(), 4, "every shard had delta tuples");
        assert_eq!(t.main_len(), 2_000);
        assert_eq!(t.delta_len(), 0);
        for (r, id) in rows.iter().zip(&ids).step_by(97) {
            assert_eq!(&t.row(*id), r, "ids stable across per-shard merges");
        }
    }

    #[test]
    fn worst_shard_first_via_merge_source() {
        let t = ShardedTable::<u64>::builder()
            .partitioning(ShardBy::Range(vec![10_000]))
            .columns(1)
            .build()
            .unwrap();
        // Shard 0: big main, small delta. Shard 1: small main, big delta.
        t.insert_rows(&(0..1_000u64).map(|i| vec![i]).collect::<Vec<_>>())
            .unwrap();
        t.merge_all(1).unwrap();
        t.insert_rows(&(0..10u64).map(|i| vec![i]).collect::<Vec<_>>())
            .unwrap();
        t.insert_rows(&(0..500u64).map(|i| vec![20_000 + i]).collect::<Vec<_>>())
            .unwrap();
        let f = t.delta_fractions();
        assert!(f[1] > f[0]);
        assert_eq!(t.max_delta_fraction(), f[1]);
        // One MergeSource merge hits the worst shard (1) only.
        let out = t.run_merge(MergeGrant::with_threads(1)).unwrap();
        assert_eq!(out.tuples_moved, 500);
        assert_eq!(t.shard(1).delta_len(), 0);
        assert_eq!(t.shard(0).delta_len(), 10, "shard 0 untouched");
        // And the generic single-source scheduler can drain the rest.
        let policy = MergePolicy {
            delta_fraction: 0.001,
            threads: 1,
            ..MergePolicy::default()
        };
        let sched = SourceScheduler::spawn(Arc::new(t), policy, Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sched.table().delta_len() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.shutdown();
        assert_eq!(
            sched.table().delta_len(),
            0,
            "generic scheduler drains shards"
        );
    }

    #[test]
    fn sharded_scheduler_keeps_all_shards_bounded() {
        let t = Arc::new(
            ShardedTable::<u64>::builder()
                .shards(4)
                .columns(2)
                .build()
                .unwrap(),
        );
        t.insert_rows(&(0..8_000u64).map(|i| row(i, 2)).collect::<Vec<_>>())
            .unwrap();
        t.merge_all(2).unwrap();
        let policy = MergePolicy {
            delta_fraction: 0.02,
            threads: 1,
            ..MergePolicy::default()
        };
        let sched = ShardedScheduler::spawn(Arc::clone(&t), policy, 2, Duration::from_millis(1));
        // Write through the facade from two threads.
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        t.insert_row(&row(1_000_000 * (w + 1) + i, 2));
                    }
                });
            }
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while t.max_delta_fraction() > policy.delta_fraction && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.shutdown();
        let stats = sched.stats();
        assert_eq!(t.row_count(), 28_000, "no rows lost");
        assert!(stats.merges >= 4, "sustained writes force many merges");
        assert_eq!(stats.per_shard.len(), 4);
        assert_eq!(
            stats.per_shard.iter().map(|s| s.merges).sum::<u64>(),
            stats.merges
        );
        assert!(
            stats.per_shard.iter().all(|s| s.merges > 0),
            "hash routing loads every shard, so every shard must merge: {:?}",
            stats.per_shard
        );
        assert!(
            t.max_delta_fraction() <= policy.delta_fraction,
            "every shard's delta bounded after drain"
        );
    }

    #[test]
    fn sharded_scheduler_pause_resume_is_global() {
        let t = Arc::new(
            ShardedTable::<u64>::builder()
                .shards(3)
                .columns(1)
                .build()
                .unwrap(),
        );
        t.insert_rows(&(0..900u64).map(|i| vec![i]).collect::<Vec<_>>())
            .unwrap();
        let policy = MergePolicy {
            delta_fraction: 0.01,
            threads: 1,
            ..MergePolicy::default()
        };
        let sched = ShardedScheduler::spawn(Arc::clone(&t), policy, 3, Duration::from_millis(2));
        sched.pause();
        assert!(sched.is_paused());
        std::thread::sleep(Duration::from_millis(80));
        let before = sched.stats().merges;
        assert!(
            before <= 3,
            "at most one in-flight round may finish after pause, ran {before}"
        );
        // Refill every shard while paused (the daemon may have won the race).
        t.insert_rows(&(0..900u64).map(|i| vec![7_000 + i]).collect::<Vec<_>>())
            .unwrap();
        sched.resume();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sched.stats().merges == before && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.shutdown();
        assert!(sched.stats().merges > before, "resume re-enables merging");
    }

    #[test]
    fn snapshots_cover_every_shard_consistently() {
        let t = ShardedTable::<u64>::builder()
            .shards(3)
            .columns(2)
            .build()
            .unwrap();
        let ids = t
            .insert_rows(&(0..600u64).map(|i| row(i, 2)).collect::<Vec<_>>())
            .unwrap();
        t.delete_row(ids[5]);
        let snaps = t.snapshots();
        assert_eq!(snaps.len(), 3);
        let total: usize = snaps.iter().map(|s| s.row_count()).sum();
        assert_eq!(total, 600);
        let valid: usize = snaps.iter().map(|s| s.validity().valid_count()).sum();
        assert_eq!(valid, 599);
        // Writes after the snapshot are invisible.
        t.insert_row(&row(9_999, 2));
        assert_eq!(snaps.iter().map(|s| s.row_count()).sum::<usize>(), 600);
        // Every inserted row is present in exactly its shard's snapshot.
        for (i, id) in ids.iter().enumerate().step_by(83) {
            assert_eq!(snaps[id.shard].row(id.row), row(i as u64, 2));
        }
    }

    #[test]
    fn consistent_cut_never_tears_a_batch() {
        // One writer inserts multi-shard batches of a fixed size; cutters
        // must always observe a multiple of the batch size.
        const BATCH: usize = 32;
        let t = Arc::new(
            ShardedTable::<u64>::builder()
                .shards(4)
                .columns(1)
                .build()
                .unwrap(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let (tw, stop_w) = (Arc::clone(&t), Arc::clone(&stop));
            s.spawn(move || {
                let mut next = 0u64;
                while !stop_w.load(Ordering::Relaxed) {
                    let rows: Vec<Vec<u64>> = (0..BATCH as u64).map(|k| vec![next + k]).collect();
                    tw.insert_rows(&rows).unwrap();
                    next += BATCH as u64;
                }
            });
            for _ in 0..3 {
                let (tr, stop_r) = (Arc::clone(&t), Arc::clone(&stop));
                s.spawn(move || {
                    while !stop_r.load(Ordering::Relaxed) {
                        let snaps = tr.consistent_snapshots();
                        let total: usize = snaps.iter().map(|s| s.row_count()).sum();
                        assert_eq!(total % BATCH, 0, "cut observed a torn batch: {total} rows");
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(200));
            stop.store(true, Ordering::Relaxed);
        });
        assert!(t.row_count() > 0, "writer made progress");
    }
}

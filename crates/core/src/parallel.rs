//! The multi-core merge (Section 6.2).
//!
//! * **Step 1(a)** has two parallelization schemes. Scheme (i) — used by
//!   [`merge_table_parallel`] — treats each *column* as a task in a shared
//!   task queue ("we use a task queue based parallelization scheme and
//!   enqueue each column as a separate task"). Scheme (ii) — used by
//!   [`merge_column_parallel`] for few-column tables — builds the delta
//!   dictionary on one thread and parallelizes the scatter of the new codes
//!   over the delta tuples.
//! * **Step 1(b)** merges the two sorted dictionaries with duplicate removal
//!   in the paper's three phases: (1) each thread merge-counts its merge-path
//!   quantile, suppressing the one possible boundary duplicate; (2) a prefix
//!   sum over the counter array; (3) each thread re-merges its range, writing
//!   dictionary values and auxiliary entries at its final offsets.
//! * **Step 2** evenly divides the `N'_M` tuples over threads; ranges are cut
//!   on 64-tuple boundaries so every thread owns whole words of the
//!   bit-packed output ("each thread reads/writes from/to independent chunks
//!   of tables").

use crate::partition::quantile_boundaries;
use crate::pipeline::{
    effective_threads, MergeScratch, MergeStrategy, MIN_DICT_PER_THREAD, MIN_TUPLES_PER_THREAD,
};
use crate::stats::{ColumnMergeStats, MergeOutput, TableMergeStats};
use crate::step1::{merge_dictionaries_into, DictMerge};
use hyrise_storage::{Column, CompressedDelta, DeltaPartition, MainPartition, Table, Value, V16};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Step 1(a), scheme (ii): serial dictionary build + parallel code scatter.
// ---------------------------------------------------------------------------

/// Parallel modified Step 1(a): extract `U_D` on one thread while recording
/// per-value tuple counts, then scatter the new fixed-width codes to the
/// delta positions with all threads ("these tuples are evenly divided
/// amongst the threads and each thread scatters the compressed values to the
/// delta partition").
pub fn compress_delta_parallel<V: Value>(
    delta: &DeltaPartition<V>,
    threads: usize,
) -> CompressedDelta<V> {
    compress_delta_parallel_exact(
        delta,
        effective_threads(threads, delta.len(), MIN_TUPLES_PER_THREAD),
    )
}

/// As [`compress_delta_parallel`] but with exactly `threads` workers, no
/// team-sizing heuristic. Exposed for tests and ablations.
#[doc(hidden)]
pub fn compress_delta_parallel_exact<V: Value>(
    delta: &DeltaPartition<V>,
    threads: usize,
) -> CompressedDelta<V> {
    let mut scratch = MergeScratch::new();
    compress_delta_exact_into(delta, threads, &mut scratch);
    CompressedDelta {
        dict: std::mem::take(&mut scratch.u_d),
        codes: std::mem::take(&mut scratch.delta_codes),
    }
}

/// Pipeline Stage 1a, parallel strategy: fill `scratch.u_d` and
/// `scratch.delta_codes`, using the team-sizing heuristic.
pub(crate) fn compress_delta_parallel_into<V: Value>(
    delta: &DeltaPartition<V>,
    threads: usize,
    scratch: &mut MergeScratch<V>,
) {
    compress_delta_exact_into(
        delta,
        effective_threads(threads, delta.len(), MIN_TUPLES_PER_THREAD),
        scratch,
    )
}

pub(crate) fn compress_delta_exact_into<V: Value>(
    delta: &DeltaPartition<V>,
    threads: usize,
    scratch: &mut MergeScratch<V>,
) {
    if threads <= 1 || delta.is_empty() {
        delta.compress_into(&mut scratch.u_d, &mut scratch.delta_codes);
        return;
    }
    // Single-threaded phase: sorted dictionary + cumulative tuple counts.
    let tree = delta.index();
    let dict = &mut scratch.u_d;
    dict.clear();
    dict.reserve(delta.unique_len());
    let mut cum = Vec::with_capacity(delta.unique_len() + 1);
    cum.push(0usize);
    for (value, _) in tree.iter() {
        dict.push(value);
        cum.push(cum.last().unwrap() + tree.postings_len(&value));
    }

    // Parallel phase: value ranges balanced by tuple count; each thread
    // re-seeks its range in the tree and scatters codes. Stores are disjoint
    // by construction (each tuple id belongs to exactly one value), expressed
    // through relaxed atomic stores into the scratch's reusable buffer.
    let codes = &mut scratch.atomic_codes;
    codes.clear();
    codes.resize_with(delta.len(), || AtomicU32::new(0));
    let per_thread = delta.len().div_ceil(threads);
    std::thread::scope(|s| {
        let mut v0 = 0usize;
        for t in 0..threads {
            // First value index whose cumulative count reaches the target.
            let target = ((t + 1) * per_thread).min(delta.len());
            let mut v1 = v0;
            while v1 < dict.len() && cum[v1] < target {
                v1 += 1;
            }
            if v0 == v1 {
                continue;
            }
            let (dict, codes) = (&*dict, &*codes);
            s.spawn(move || {
                let mut code = v0 as u32;
                for (value, postings) in tree.iter_from(&dict[v0]) {
                    if code as usize >= v1 {
                        break;
                    }
                    debug_assert_eq!(value, dict[code as usize]);
                    for tid in postings {
                        codes[tid as usize].store(code, Ordering::Relaxed);
                    }
                    code += 1;
                }
                debug_assert_eq!(code as usize, v1);
            });
            v0 = v1;
        }
    });
    scratch.delta_codes.clear();
    scratch.delta_codes.extend(
        scratch
            .atomic_codes
            .iter()
            .map(|a| a.load(Ordering::Relaxed)),
    );
}

// ---------------------------------------------------------------------------
// Step 1(b): three-phase parallel dictionary merge with duplicate removal.
// ---------------------------------------------------------------------------

/// Count the unique values produced by merging `a[i0..i1]` with `b[j0..j1]`,
/// applying the paper's boundary rule: if this range's first element of one
/// dictionary equals the *previous* element of the other dictionary, it was
/// already produced by the previous thread and is skipped.
fn merge_range_count<V: Value>(
    a: &[V],
    b: &[V],
    (i0, j0): (usize, usize),
    (i1, j1): (usize, usize),
) -> usize {
    let mut i = i0;
    let mut j = j0;
    if i > 0 && j < j1 && b[j] == a[i - 1] {
        j += 1;
    } else if j > 0 && i < i1 && a[i] == b[j - 1] {
        i += 1;
    }
    let mut n = 0usize;
    while i < i1 && j < j1 {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
        n += 1;
    }
    n + (i1 - i) + (j1 - j)
}

/// Phase 3 worker: re-merge the range, writing dictionary values into `out`
/// (this thread's disjoint slice of `U'_M`, starting at global offset `base`)
/// and auxiliary entries into `xa`/`xb` (slices covering `a[i0..i1]` /
/// `b[j0..j1]`). A boundary-skipped element still gets its auxiliary entry:
/// it maps to the last element the previous thread wrote, `base - 1`.
#[allow(clippy::too_many_arguments)]
fn merge_range_write<V: Value>(
    a: &[V],
    b: &[V],
    (i0, j0): (usize, usize),
    (i1, j1): (usize, usize),
    base: usize,
    out: &mut [V],
    xa: &mut [u32],
    xb: &mut [u32],
) {
    let mut i = i0;
    let mut j = j0;
    if i > 0 && j < j1 && b[j] == a[i - 1] {
        xb[j - j0] = (base - 1) as u32;
        j += 1;
    } else if j > 0 && i < i1 && a[i] == b[j - 1] {
        xa[i - i0] = (base - 1) as u32;
        i += 1;
    }
    let mut pos = 0usize;
    while i < i1 && j < j1 {
        let out_idx = (base + pos) as u32;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                xa[i - i0] = out_idx;
                out[pos] = a[i];
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                xb[j - j0] = out_idx;
                out[pos] = b[j];
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                xa[i - i0] = out_idx;
                xb[j - j0] = out_idx;
                out[pos] = a[i];
                i += 1;
                j += 1;
            }
        }
        pos += 1;
    }
    while i < i1 {
        xa[i - i0] = (base + pos) as u32;
        out[pos] = a[i];
        i += 1;
        pos += 1;
    }
    while j < j1 {
        xb[j - j0] = (base + pos) as u32;
        out[pos] = b[j];
        j += 1;
        pos += 1;
    }
    debug_assert_eq!(pos, out.len(), "phase-1 count and phase-3 output disagree");
}

/// Parallel modified Step 1(b): merge two sorted duplicate-free dictionaries
/// into `U'_M` with the auxiliary tables, using the three-phase scheme of
/// Section 6.2.1. Falls back to the serial merge for small inputs, one
/// thread, or when the host has fewer cores than requested (see
/// [`crate::pipeline`]'s team-sizing heuristic — oversubscribing a
/// compute-bound merge measured slower than serial). Produces output
/// identical to [`crate::step1::merge_dictionaries`].
pub fn merge_dictionaries_parallel<V: Value>(u_m: &[V], u_d: &[V], threads: usize) -> DictMerge<V> {
    let total = u_m.len() + u_d.len();
    merge_dictionaries_parallel_exact(
        u_m,
        u_d,
        effective_threads(threads, total, MIN_DICT_PER_THREAD),
    )
}

/// As [`merge_dictionaries_parallel`] but with exactly `threads` workers, no
/// team-sizing heuristic. Exposed for tests and ablations.
#[doc(hidden)]
pub fn merge_dictionaries_parallel_exact<V: Value>(
    u_m: &[V],
    u_d: &[V],
    threads: usize,
) -> DictMerge<V> {
    let mut merged = Vec::new();
    let mut x_m = Vec::new();
    let mut x_d = Vec::new();
    merge_dictionaries_parallel_exact_into(u_m, u_d, threads, &mut merged, &mut x_m, &mut x_d);
    DictMerge { merged, x_m, x_d }
}

pub(crate) fn merge_dictionaries_parallel_exact_into<V: Value>(
    u_m: &[V],
    u_d: &[V],
    threads: usize,
    merged: &mut Vec<V>,
    x_m: &mut Vec<u32>,
    x_d: &mut Vec<u32>,
) {
    if threads <= 1 {
        return merge_dictionaries_into(u_m, u_d, merged, x_m, x_d);
    }
    let bounds = quantile_boundaries(u_m, u_d, threads);

    // Phase 1: per-thread unique counts, with an explicit barrier at the end
    // (the scope join).
    let mut counter = vec![0usize; threads + 1];
    std::thread::scope(|s| {
        let bounds = &bounds;
        let handles: Vec<_> = (0..threads)
            .map(|t| s.spawn(move || merge_range_count(u_m, u_d, bounds[t], bounds[t + 1])))
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            counter[t + 1] = h.join().expect("phase-1 worker panicked");
        }
    });

    // Phase 2: prefix sum of the counter array. The paper parallelizes this
    // with Hillis-Steele; over N_T + 1 entries the serial sum is equivalent
    // and cheaper.
    for t in 0..threads {
        counter[t + 1] += counter[t];
    }
    let total_unique = counter[threads];

    // Phase 3: carve disjoint output slices and re-merge at final offsets.
    merged.clear();
    merged.resize(total_unique, V::default());
    x_m.clear();
    x_m.resize(u_m.len(), 0);
    x_d.clear();
    x_d.resize(u_d.len(), 0);
    {
        let mut m_rest: &mut [V] = merged;
        let mut xm_rest: &mut [u32] = x_m;
        let mut xd_rest: &mut [u32] = x_d;
        let mut tasks = Vec::with_capacity(threads);
        for t in 0..threads {
            let (i0, j0) = bounds[t];
            let (i1, j1) = bounds[t + 1];
            let out_len = counter[t + 1] - counter[t];
            let (m_slice, rest) = std::mem::take(&mut m_rest).split_at_mut(out_len);
            m_rest = rest;
            let (xm_slice, rest) = std::mem::take(&mut xm_rest).split_at_mut(i1 - i0);
            xm_rest = rest;
            let (xd_slice, rest) = std::mem::take(&mut xd_rest).split_at_mut(j1 - j0);
            xd_rest = rest;
            tasks.push(((i0, j0), (i1, j1), counter[t], m_slice, xm_slice, xd_slice));
        }
        std::thread::scope(|s| {
            for (start, end, base, m_slice, xm_slice, xd_slice) in tasks {
                s.spawn(move || {
                    merge_range_write(u_m, u_d, start, end, base, m_slice, xm_slice, xd_slice)
                });
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Step 2 + whole column: delegated to the unified pipeline.
// ---------------------------------------------------------------------------

/// Merge one column with all steps parallelized *within* the column
/// (Step 1(a) scheme (ii), three-phase Step 1(b), partitioned Step 2).
///
/// Equivalent to running the [`crate::pipeline::MergePipeline`] with
/// [`MergeStrategy::Parallel`] and a cold scratch; long-lived callers
/// should hold a [`MergeScratch`] and use the pipeline directly.
pub fn merge_column_parallel<V: Value>(
    main: &MainPartition<V>,
    delta: &DeltaPartition<V>,
    threads: usize,
) -> MergeOutput<MainPartition<V>> {
    crate::pipeline::merge_column_with(
        main,
        delta,
        MergeStrategy::Parallel,
        threads,
        &mut MergeScratch::new(),
    )
}

// ---------------------------------------------------------------------------
// Whole-table merge: scheme (i), task queue over columns.
// ---------------------------------------------------------------------------

enum PendingMain {
    U32(MainPartition<u32>),
    U64(MainPartition<u64>),
    V16(MainPartition<V16>),
}

fn merge_column_any(col: &Column) -> (PendingMain, ColumnMergeStats) {
    match col {
        Column::U32(a) => {
            let out = crate::optimized::merge_column_optimized(a.main(), a.delta());
            (PendingMain::U32(out.main), out.stats)
        }
        Column::U64(a) => {
            let out = crate::optimized::merge_column_optimized(a.main(), a.delta());
            (PendingMain::U64(out.main), out.stats)
        }
        Column::V16(a) => {
            let out = crate::optimized::merge_column_optimized(a.main(), a.delta());
            (PendingMain::V16(out.main), out.stats)
        }
    }
}

/// Merge every column of `table`, parallelizing *across* columns with a task
/// queue (scheme (i): "enqueue each column as a separate task. If the number
/// of tasks is much larger than the number of threads ... the task queue
/// mechanism ... works well in practice to achieve a good load balance").
/// Each column task runs the optimized serial merge.
///
/// This is the offline path (exclusive `&mut Table`); the online,
/// concurrent-update variant is [`crate::manager::OnlineTable::merge`].
pub fn merge_table_parallel(table: &mut Table, threads: usize) -> TableMergeStats {
    assert!(threads >= 1, "need at least one thread");
    let t_wall = Instant::now();
    let n_cols = table.num_columns();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<(PendingMain, ColumnMergeStats)>> =
        (0..n_cols).map(|_| None).collect();

    {
        // Collect results through per-column slots; each slot is written by
        // exactly one task.
        let slots: Vec<parking_lot::Mutex<Option<(PendingMain, ColumnMergeStats)>>> =
            (0..n_cols).map(|_| parking_lot::Mutex::new(None)).collect();
        let table_ref: &Table = table;
        std::thread::scope(|s| {
            for _ in 0..threads.min(n_cols.max(1)) {
                s.spawn(|| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_cols {
                        break;
                    }
                    let out = merge_column_any(table_ref.column(c));
                    *slots[c].lock() = Some(out);
                });
            }
        });
        for (c, slot) in slots.into_iter().enumerate() {
            results[c] = slot.into_inner();
        }
    }

    let mut stats = TableMergeStats::default();
    for (c, result) in results.into_iter().enumerate() {
        let (pending, col_stats) = result.expect("every column task must complete");
        stats.columns.push(col_stats);
        match (table.column_mut(c), pending) {
            (Column::U32(a), PendingMain::U32(m)) => a.replace(m, DeltaPartition::new()),
            (Column::U64(a), PendingMain::U64(m)) => a.replace(m, DeltaPartition::new()),
            (Column::V16(a), PendingMain::V16(m)) => a.replace(m, DeltaPartition::new()),
            _ => unreachable!("pending main type matches its column"),
        }
    }
    stats.t_wall = t_wall.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step1::merge_dictionaries;
    use hyrise_storage::{AnyValue, ColumnType, Schema};

    fn delta_from(values: &[u64]) -> DeltaPartition<u64> {
        let mut d = DeltaPartition::new();
        for &v in values {
            d.insert(v);
        }
        d
    }

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed | 1;
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    #[test]
    fn parallel_dict_merge_equals_serial_small_and_large() {
        let mut next = xorshift(42);
        for (na, nb) in [
            (0usize, 10usize),
            (10, 0),
            (100, 77),
            (5000, 4000),
            (9000, 12000),
        ] {
            let mut a: Vec<u64> = (0..na).map(|_| next() % 50_000).collect();
            a.sort_unstable();
            a.dedup();
            let mut b: Vec<u64> = (0..nb).map(|_| next() % 50_000).collect();
            b.sort_unstable();
            b.dedup();
            let serial = merge_dictionaries(&a, &b);
            for threads in [2usize, 3, 6, 12] {
                let par = merge_dictionaries_parallel_exact(&a, &b, threads);
                assert_eq!(par, serial, "na={na} nb={nb} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_dict_merge_heavy_duplicates_across_boundaries() {
        // Force many shared values so boundary skips trigger: every value of
        // b also in a.
        let a: Vec<u64> = (0..20_000).collect();
        let b: Vec<u64> = (0..20_000).step_by(2).collect();
        let serial = merge_dictionaries(&a, &b);
        for threads in [2usize, 5, 8, 16, 24] {
            let par = merge_dictionaries_parallel_exact(&a, &b, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn compress_parallel_equals_serial() {
        let mut next = xorshift(7);
        let values: Vec<u64> = (0..30_000).map(|_| next() % 3_000).collect();
        let delta = delta_from(&values);
        let serial = delta.compress();
        for threads in [2usize, 4, 11] {
            let par = compress_delta_parallel_exact(&delta, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_column_merge_equals_optimized() {
        let mut next = xorshift(99);
        let main_vals: Vec<u64> = (0..40_000).map(|_| next() % 9_000).collect();
        let delta_vals: Vec<u64> = (0..9_000).map(|_| next() % 12_000).collect();
        let main = MainPartition::from_values(&main_vals);
        let delta = delta_from(&delta_vals);
        let serial = crate::optimized::merge_column_optimized(&main, &delta);
        for threads in [1usize, 2, 6, 16] {
            let par = merge_column_parallel(&main, &delta, threads);
            assert_eq!(
                par.main.dictionary().values(),
                serial.main.dictionary().values(),
                "threads={threads}"
            );
            assert_eq!(
                par.main.codes().collect::<Vec<_>>(),
                serial.main.codes().collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn figure5_parallel() {
        let main = MainPartition::from_values(&[8u64, 4, 6, 4, 1, 3, 9]);
        let delta = delta_from(&[2, 3, 7, 3, 25]);
        let out = merge_column_parallel(&main, &delta, 4);
        assert_eq!(out.main.code_bits(), 4);
        assert_eq!(out.main.code(0), 6);
        assert_eq!(out.main.get(11), 25);
    }

    #[test]
    fn table_merge_moves_delta_into_main() {
        let schema = Schema::new(vec![("a", ColumnType::U64), ("b", ColumnType::U32)]);
        let mut t = Table::new("t", schema);
        for i in 0..500u64 {
            t.insert_row(&[AnyValue::U64(i % 40), AnyValue::U32((i % 7) as u32)])
                .unwrap();
        }
        assert_eq!(t.delta_len(), 500);
        let stats = merge_table_parallel(&mut t, 4);
        assert_eq!(t.delta_len(), 0);
        assert_eq!(t.main_len(), 500);
        assert_eq!(t.row_count(), 500);
        assert_eq!(stats.columns.len(), 2);
        assert_eq!(stats.total_tuples(), 1000);
        // Data survives the merge.
        assert_eq!(
            t.row(123).unwrap(),
            vec![AnyValue::U64(123 % 40), AnyValue::U32((123 % 7) as u32)]
        );
    }

    #[test]
    fn table_merge_preserves_validity_and_history() {
        let schema = Schema::new(vec![("a", ColumnType::U64)]);
        let mut t = Table::new("t", schema);
        let r0 = t.insert_row(&[AnyValue::U64(1)]).unwrap();
        let r1 = t.update_row(r0, &[AnyValue::U64(2)]).unwrap();
        merge_table_parallel(&mut t, 2);
        assert!(!t.is_valid(r0));
        assert!(t.is_valid(r1));
        assert_eq!(
            t.row(r0).unwrap(),
            vec![AnyValue::U64(1)],
            "history survives merge"
        );
        assert_eq!(t.row(r1).unwrap(), vec![AnyValue::U64(2)]);
    }

    #[test]
    fn repeated_table_merges() {
        let schema = Schema::new(vec![("a", ColumnType::U64)]);
        let mut t = Table::new("t", schema);
        let mut expected = Vec::new();
        for wave in 0..4u64 {
            for i in 0..200u64 {
                let v = wave * 131 + i % 97;
                t.insert_row(&[AnyValue::U64(v)]).unwrap();
                expected.push(v);
            }
            merge_table_parallel(&mut t, 3);
            assert_eq!(t.delta_len(), 0);
            let got: Vec<u64> = (0..t.row_count())
                .map(|r| match t.row(r).unwrap()[0] {
                    AnyValue::U64(v) => v,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(got, expected, "after wave {wave}");
        }
    }
}

//! The unified merge pipeline: every merge path in the system — naive,
//! optimized, multi-core, online, incremental, sharded — runs through the
//! three explicit stages of this module.
//!
//! * **Stage 1a** — delta-dictionary extraction: the sorted `U_D` (all
//!   strategies), plus the compressed-delta rewrite (fixed-width codes into
//!   `U_D`) for the optimized/parallel strategies (Section 5.3's "Modified
//!   Step 1(a)").
//! * **Stage 1b** — dictionary union: the merged `U'_M`, plus the auxiliary
//!   translation tables `X_M`/`X_D` for the optimized/parallel strategies.
//! * **Stage 2** — bit-packed re-encode: **one** kernel
//!   ([`MergePipeline::merge_column`]'s `reencode`) writes the new code
//!   column for every strategy; the strategies differ only in the per-tuple
//!   code map (binary search in `U'_M` for [`MergeStrategy::Naive`], an
//!   `X_M`/`X_D` table lookup for the others) and in how many threads fill
//!   word-aligned output regions.
//!
//! The pipeline is allocation-aware: a [`MergeScratch`] arena owns every
//! intermediate buffer (`U_D`, delta codes, `X_M`, `X_D`) and a stack of
//! spare buffers for the two outputs that outlive the merge (the merged
//! dictionary's value vector and the packed code words). Callers that
//! recycle retired main partitions back into the scratch
//! ([`MergeScratch::recycle_main`]) reach a steady state where a merge
//! performs **no heap allocation** for dictionary/aux/output buffers —
//! directly attacking the ~2x peak-memory cost of online reorganization
//! that Section 4 (and the Cambridge Report) charge the merge with.
//!
//! [`MergeBudget`] bounds the other half of that cost at the table level:
//! instead of materializing all `N_C` merged columns before one atomic
//! commit, a budget of `K` columns merges and commits `K` columns at a time
//! (the paper's Section 4 partial-column strategy), capping peak extra
//! memory at the largest `K`-column working set. See
//! [`crate::manager::OnlineTable::merge_with`].

use crate::stats::{ColumnMergeStats, MergeAlgo, MergeOutput};
use hyrise_bitpack::{bits_for, BitPackedVec, BitRegion};
use hyrise_storage::{DeltaPartition, Dictionary, FrozenDelta, MainPartition, Value};
use std::sync::atomic::AtomicU32;
use std::time::Instant;

/// The two delta representations a merge can consume: the CSB-indexed
/// write-optimized delta (an [`Attribute`](hyrise_storage::Attribute)'s
/// active partition, the offline paths) or a sealed, bit-packed
/// [`FrozenDelta`] (the online table's mid-merge snapshot). For a frozen
/// delta Stage 1a is free — its local dictionary *is* the sorted `U_D` and
/// its packed codes *are* the compressed-delta rewrite — and Stage 2
/// streams the codes with a sequential cursor instead of indexing a raw
/// value array. Both views produce byte-identical merged partitions for
/// the same row sequence.
enum DeltaView<'a, V: Value> {
    /// CSB-indexed delta partition.
    Csb(&'a DeltaPartition<V>),
    /// Sealed bit-packed delta.
    Frozen(&'a FrozenDelta<V>),
}

impl<V: Value> DeltaView<'_, V> {
    fn len(&self) -> usize {
        match self {
            DeltaView::Csb(d) => d.len(),
            DeltaView::Frozen(f) => f.len(),
        }
    }
}

/// Minimum work items per spawned thread. Scoped threads cost tens of
/// microseconds to spawn; granting a thread fewer elements than this loses
/// more to spawn overhead than parallelism gains. (The paper's pthread pool
/// amortizes this; we size the team instead.)
pub(crate) const MIN_DICT_PER_THREAD: usize = 128 * 1024;
pub(crate) const MIN_TUPLES_PER_THREAD: usize = 64 * 1024;

/// Threads actually worth using for `work` items.
///
/// Two clamps compose here:
/// * **Crossover** — below `min_per_thread` items per thread, spawn
///   overhead exceeds the parallel gain, so the team shrinks (possibly to
///   1 = serial).
/// * **Host cores** — the requested count is capped at
///   `available_parallelism()`. Requesting 8 threads on a 2-core host
///   time-slices the three-phase dictionary merge and the partitioned
///   Step 2 without any extra hardware parallelism, which measured *slower
///   than serial* (`dict_merge/parallel/N` vs `dict_merge/serial`);
///   oversubscription never helps a compute-bound merge.
///
/// The `_exact` entry points in [`crate::parallel`] bypass both clamps for
/// tests and ablations.
#[inline]
pub(crate) fn effective_threads(requested: usize, work: usize, min_per_thread: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    requested
        .min(cores)
        .clamp(1, (work / min_per_thread).max(1))
}

/// Which merge algorithm the pipeline runs the stages with.
///
/// All strategies produce **byte-identical** merged main partitions (the
/// cross-strategy proptests assert this); they differ only in cost:
/// [`Naive`](Self::Naive) is the Equation 5 baseline with a per-tuple
/// binary search, [`Optimized`](Self::Optimized) the linear single-threaded
/// Equation 6 algorithm, [`Parallel`](Self::Parallel) the Section 6.2
/// multi-core version of the same.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MergeStrategy {
    /// Sections 5.1–5.2: no delta re-coding, no aux tables, binary-search
    /// re-encode. The baseline the paper beats by ~30x.
    Naive,
    /// Section 5.3: compressed delta + `X_M`/`X_D` lookups, single-threaded.
    Optimized,
    /// Section 6.2: all stages parallelized (three-phase dictionary merge,
    /// word-aligned partitioned re-encode). The default.
    #[default]
    Parallel,
}

impl MergeStrategy {
    /// The [`MergeAlgo`] tag recorded in [`ColumnMergeStats`].
    pub fn algo(&self) -> MergeAlgo {
        match self {
            MergeStrategy::Naive => MergeAlgo::Naive,
            MergeStrategy::Optimized => MergeAlgo::Optimized,
            MergeStrategy::Parallel => MergeAlgo::Parallel,
        }
    }
}

/// Cap on how many merged-but-uncommitted columns a table merge may hold at
/// once — the knob that bounds the merge's peak extra memory (Section 4's
/// partial-column strategy).
///
/// Unbudgeted, a table merge materializes all `N_C` new main partitions
/// before one atomic commit: ~2x the table's memory at peak. With a budget
/// of `K`, columns are merged and committed `K` at a time, so at most the
/// largest `K`-column working set exists in addition to the live table.
/// Results are byte-identical either way; the trade is commit granularity
/// on cancellation (columns committed before a cancel stay merged — every
/// column individually contains all rows, so the table stays consistent,
/// exactly as with [`crate::manager::MergeSession`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MergeBudget {
    columns: usize,
}

impl MergeBudget {
    /// No cap: merge all columns, then commit once (all-or-nothing under
    /// cancellation). The default.
    pub const UNBOUNDED: MergeBudget = MergeBudget {
        columns: usize::MAX,
    };

    /// At most `k >= 1` columns merged-but-uncommitted at a time.
    pub fn columns(k: usize) -> Self {
        assert!(k >= 1, "a merge budget needs at least one column");
        Self { columns: k }
    }

    /// The cap (`usize::MAX` when unbounded).
    pub fn max_columns(&self) -> usize {
        self.columns
    }

    /// True for [`Self::UNBOUNDED`].
    pub fn is_unbounded(&self) -> bool {
        self.columns == usize::MAX
    }
}

impl Default for MergeBudget {
    fn default() -> Self {
        Self::UNBOUNDED
    }
}

/// Everything a merge run is granted: which algorithm, how many threads,
/// and how much extra memory (as a column budget). This is what schedulers
/// hand to [`crate::scheduler::MergeSource::run_merge`] and what
/// [`crate::manager::OnlineTable::merge_with`] consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeGrant {
    /// Merge algorithm (default [`MergeStrategy::Parallel`]).
    pub strategy: MergeStrategy,
    /// Threads granted to the merge.
    pub threads: usize,
    /// Peak-memory cap (default [`MergeBudget::UNBOUNDED`]).
    pub budget: MergeBudget,
}

impl Default for MergeGrant {
    fn default() -> Self {
        Self {
            strategy: MergeStrategy::default(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            budget: MergeBudget::default(),
        }
    }
}

impl MergeGrant {
    /// The default strategy and budget with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Builder-style strategy override.
    pub fn strategy(mut self, strategy: MergeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style budget override.
    pub fn budget(mut self, budget: MergeBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// The reusable merge arena: owns every intermediate buffer of the three
/// stages plus stacks of spare buffers for the two outputs that leave the
/// pipeline inside the new [`MainPartition`].
///
/// Lifetimes of the buffers across one merge:
///
/// * `u_d`, `delta_codes`, `atomic_codes`, `x_m`, `x_d` — filled by Stages
///   1a/1b, read by Stage 2, **retained** (cleared, capacity kept) for the
///   next merge.
/// * one spare `Vec<V>` and one spare `Vec<u64>` are **donated** to the
///   output (they become the merged dictionary's storage and the packed
///   code words). [`Self::recycle_main`] returns a retired partition's
///   buffers to the spare stacks, closing the loop: a warmed scratch whose
///   caller recycles retires allocates nothing per merge.
///
/// A scratch is cheap when empty (`MergeScratch::new()` allocates nothing),
/// so cold paths can create one ad hoc; the win is keeping it.
pub struct MergeScratch<V> {
    /// `U_D` (Stage 1a output).
    pub(crate) u_d: Vec<V>,
    /// Compressed delta codes into `U_D` (Stage 1a, optimized/parallel).
    pub(crate) delta_codes: Vec<u32>,
    /// Scatter target for the parallel Stage 1a (disjoint relaxed stores).
    pub(crate) atomic_codes: Vec<AtomicU32>,
    /// `X_M` (Stage 1b, optimized/parallel).
    pub(crate) x_m: Vec<u32>,
    /// `X_D` (Stage 1b, optimized/parallel).
    pub(crate) x_d: Vec<u32>,
    /// Local spare merged-dictionary buffers (donated to outputs, refilled
    /// by [`Self::recycle_main`]) — used only when no [`SpareBank`] is
    /// attached. Standalone scratches (ad-hoc column merges, benches)
    /// bank spares here; table-owned scratches route every take/recycle to
    /// the shared bank instead, so multi-worker merges never strand a
    /// buffer in the wrong worker's arena.
    dict_spares: std::collections::VecDeque<Vec<V>>,
    /// Local spare packed-word buffers (same lifecycle).
    word_spares: std::collections::VecDeque<Vec<u64>>,
    /// The shared table-level bank, when this scratch belongs to a table
    /// ([`crate::manager::OnlineTable`] attaches it at checkout).
    bank: Option<std::sync::Arc<SpareBank<V>>>,
}

/// A spare handed out may exceed the request by at most this factor; any
/// larger and it is trimmed to `SPARE_TRIM_FACTOR * want` before reuse.
/// Without the trim, the "else the largest" fallback below could hand a
/// hugely over-sized buffer to a small merge, whose retired output would
/// then re-bank the same giant capacity — an over-retention loop that pins
/// the worst-case buffer forever.
pub const SPARE_TRIM_FACTOR: usize = 2;

/// Pick a spare from `q`: the **smallest** whose capacity covers `want`
/// (best fit — under concurrent takes the first-fit rule could give a
/// small request the only buffer a big request needs), else the largest
/// available (minimizing the regrow), else a fresh empty `Vec`. Callers
/// pass the result through [`trim_spare`] — *after* releasing any lock
/// guarding `q`, since the trim may reallocate.
fn take_spare<T>(q: &mut std::collections::VecDeque<Vec<T>>, want: usize) -> Vec<T> {
    let pos = q
        .iter()
        .enumerate()
        .filter(|(_, b)| b.capacity() >= want)
        .min_by_key(|(_, b)| b.capacity())
        .or_else(|| q.iter().enumerate().max_by_key(|(_, b)| b.capacity()))
        .map(|(i, _)| i);
    match pos {
        Some(i) => q.remove(i).expect("position came from the queue"),
        None => Vec::new(),
    }
}

/// Enforce the [`SPARE_TRIM_FACTOR`] bound on a spare handed out for a
/// `want`-sized request (the over-retention fix). Runs outside any spare
/// queue lock: shrinking is an allocator round-trip.
fn trim_spare<T>(mut buf: Vec<T>, want: usize) -> Vec<T> {
    let cap = SPARE_TRIM_FACTOR * want.max(1);
    if buf.capacity() > cap {
        buf.shrink_to(cap);
    }
    buf
}

/// Bound on the spare stacks so a scratch that receives more retired
/// partitions than it donates (e.g. a shrinking pool) cannot hoard memory.
const MAX_SPARES: usize = 32;

/// The table-level spare-buffer bank: one shared home for the two output
/// buffers that outlive a merge (merged-dictionary values and packed code
/// words), taken with size hints under a short lock.
///
/// Per-arena spares break down with several merge workers: the racing
/// column→worker assignment can retire a column's buffer into one worker's
/// arena while the next generation of that column is merged by another
/// worker, stranding the recycled capacity and forcing a fresh allocation.
/// A single bank shared by every worker (and, for a
/// [`crate::shard::ShardedTable`], every shard) makes the spare pool one
/// multiset: as long as each request has an exact-size match banked —
/// which steady-state regeneration guarantees — best-fit takes keep
/// multi-worker merges allocation-free. The lock is held only for the
/// queue scan (capacities, no data), never across an allocation or copy.
pub struct SpareBank<V> {
    dicts: parking_lot::Mutex<std::collections::VecDeque<Vec<V>>>,
    words: parking_lot::Mutex<std::collections::VecDeque<Vec<u64>>>,
}

impl<V: Value> Default for SpareBank<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> SpareBank<V> {
    /// An empty bank (no allocations until the first recycle).
    pub fn new() -> Self {
        Self {
            dicts: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            words: parking_lot::Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Take a spare dictionary buffer, best-fit for `want` values (empty
    /// `Vec` if none is banked; over-sized spares are trimmed to
    /// [`SPARE_TRIM_FACTOR`]× the request, after the lock is released).
    pub fn take_dict(&self, want: usize) -> Vec<V> {
        let buf = take_spare(&mut self.dicts.lock(), want);
        trim_spare(buf, want)
    }

    /// Take a spare packed-word buffer (same contract as
    /// [`Self::take_dict`]).
    pub fn take_words(&self, want: usize) -> Vec<u64> {
        let buf = take_spare(&mut self.words.lock(), want);
        trim_spare(buf, want)
    }

    /// Recycle a retired main partition: its sorted value vector and
    /// packed word buffer join the bank for the next merge's output, from
    /// any worker on any column.
    pub fn recycle_main(&self, main: MainPartition<V>) {
        let (dict, codes) = main.into_parts();
        {
            let mut q = self.dicts.lock();
            if q.len() < MAX_SPARES {
                let mut d = dict.into_values();
                d.clear();
                q.push_back(d);
            }
        }
        let mut q = self.words.lock();
        if q.len() < MAX_SPARES {
            let mut w = codes.into_words();
            w.clear();
            q.push_back(w);
        }
    }

    /// Capacities currently banked, `(dictionary values, code words)` —
    /// exposed so tests can assert capacity stability across merges.
    pub fn spare_capacities(&self) -> (usize, usize) {
        (
            self.dicts.lock().iter().map(|d| d.capacity()).sum(),
            self.words.lock().iter().map(|w| w.capacity()).sum(),
        )
    }

    /// Number of banked buffers, `(dictionaries, word buffers)`.
    pub fn spare_counts(&self) -> (usize, usize) {
        (self.dicts.lock().len(), self.words.lock().len())
    }
}

impl<V: Value> Default for MergeScratch<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> MergeScratch<V> {
    /// An empty arena (no allocations until first use).
    pub fn new() -> Self {
        Self {
            u_d: Vec::new(),
            delta_codes: Vec::new(),
            atomic_codes: Vec::new(),
            x_m: Vec::new(),
            x_d: Vec::new(),
            dict_spares: std::collections::VecDeque::new(),
            word_spares: std::collections::VecDeque::new(),
            bank: None,
        }
    }

    /// Route this scratch's output-buffer takes and recycles through a
    /// shared table-level [`SpareBank`] instead of the local queues. Any
    /// locally banked spares move to the bank, so attaching never strands
    /// capacity.
    pub fn attach_bank(&mut self, bank: std::sync::Arc<SpareBank<V>>) {
        if self
            .bank
            .as_ref()
            .is_some_and(|b| std::sync::Arc::ptr_eq(b, &bank))
        {
            return;
        }
        for d in self.dict_spares.drain(..) {
            let mut q = bank.dicts.lock();
            if q.len() < MAX_SPARES {
                q.push_back(d);
            }
        }
        for w in self.word_spares.drain(..) {
            let mut q = bank.words.lock();
            if q.len() < MAX_SPARES {
                q.push_back(w);
            }
        }
        self.bank = Some(bank);
    }

    /// Take a spare dictionary buffer, best-fit for `want` values (empty
    /// `Vec` if none is banked).
    pub(crate) fn take_dict(&mut self, want: usize) -> Vec<V> {
        match &self.bank {
            Some(b) => b.take_dict(want),
            None => trim_spare(take_spare(&mut self.dict_spares, want), want),
        }
    }

    /// Take a spare word buffer, best-fit for `want` words (empty `Vec`
    /// if none is banked).
    pub(crate) fn take_words(&mut self, want: usize) -> Vec<u64> {
        match &self.bank {
            Some(b) => b.take_words(want),
            None => trim_spare(take_spare(&mut self.word_spares, want), want),
        }
    }

    /// Recycle a retired main partition: its sorted value vector and packed
    /// word buffer join the spare queues (the attached [`SpareBank`]'s, if
    /// any, else this arena's own) for the next merge's output. This is how
    /// steady-state merges reach zero allocation — the old generation's
    /// memory becomes the new generation's buffers.
    pub fn recycle_main(&mut self, main: MainPartition<V>) {
        if let Some(b) = &self.bank {
            b.recycle_main(main);
            return;
        }
        let (dict, codes) = main.into_parts();
        if self.dict_spares.len() < MAX_SPARES {
            let mut d = dict.into_values();
            d.clear();
            self.dict_spares.push_back(d);
        }
        if self.word_spares.len() < MAX_SPARES {
            let mut w = codes.into_words();
            w.clear();
            self.word_spares.push_back(w);
        }
    }

    /// Capacities currently banked in this arena's **local** queues,
    /// `(dictionary values, code words)` — zero for bank-attached
    /// scratches (ask the [`SpareBank`] instead); exposed so tests can
    /// assert capacity stability across merges.
    pub fn spare_capacities(&self) -> (usize, usize) {
        (
            self.dict_spares.iter().map(|d| d.capacity()).sum(),
            self.word_spares.iter().map(|w| w.capacity()).sum(),
        )
    }
}

/// One enumerated step of a column merge, in pipeline order — the unit the
/// merge recovery log serializes so a restarted process knows how far a
/// crashed merge got. Stage boundaries follow the paper's three-phase
/// decomposition; within Stage 2 a progress record fires at every completed
/// word-aligned output region, giving sub-column granularity without any
/// synchronization inside the kernel's hot loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeStep {
    /// Stage 1a finished for `col`: delta dictionary extracted.
    Stage1a {
        /// Column index.
        col: usize,
    },
    /// Stage 1b finished for `col`: dictionaries unioned.
    Stage1b {
        /// Column index.
        col: usize,
    },
    /// Stage 2 re-encode progress for `col`: `done` of `total`
    /// word-aligned output regions are filled.
    Stage2Progress {
        /// Column index.
        col: usize,
        /// Completed regions.
        done: u64,
        /// Total regions in this re-encode.
        total: u64,
    },
    /// The column's merged output is fully materialized in memory.
    ColumnDone {
        /// Column index.
        col: usize,
    },
}

impl MergeStep {
    /// Flatten to `(kind, col, progress, total)` for serialization.
    pub fn encode(self) -> (u8, usize, u64, u64) {
        match self {
            MergeStep::Stage1a { col } => (1, col, 0, 0),
            MergeStep::Stage1b { col } => (2, col, 0, 0),
            MergeStep::Stage2Progress { col, done, total } => (3, col, done, total),
            MergeStep::ColumnDone { col } => (4, col, 0, 0),
        }
    }
}

/// An observer the pipeline streams [`MergeStep`]s into (the WAL's merge
/// recovery log in production; any collector in tests). Called from worker
/// threads, hence `Sync`; implementations must be cheap and non-blocking —
/// a step record is advisory narration, never a commit point.
pub trait StepSink: Sync {
    /// Observe one step. Must not panic.
    fn record(&self, step: MergeStep);
}

/// A configured merge pipeline: strategy + thread grant, applied column by
/// column through a [`MergeScratch`]. Stateless apart from configuration —
/// the scratch carries all reuse.
#[derive(Clone, Copy, Debug)]
pub struct MergePipeline {
    strategy: MergeStrategy,
    threads: usize,
    exact: bool,
}

impl MergePipeline {
    /// A pipeline running `strategy` with up to `threads` threads (clamped
    /// per stage to the host core count and the work size; see the
    /// team-sizing notes in the module docs).
    pub fn new(strategy: MergeStrategy, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        Self {
            strategy,
            threads,
            exact: false,
        }
    }

    /// As [`Self::new`] but with **exactly** `threads` workers per parallel
    /// stage — no host-core or work-size clamping. This is the whole-column
    /// counterpart of the `_exact` stage entry points: use it to measure
    /// what oversubscription actually costs (ablations) or to reproduce a
    /// configuration on different hardware. Production paths should prefer
    /// [`Self::new`].
    pub fn exact(strategy: MergeStrategy, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        Self {
            strategy,
            threads,
            exact: true,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> MergeStrategy {
        self.strategy
    }

    /// The configured thread grant.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Merge one column's delta into its main partition: Stage 1a, Stage
    /// 1b, Stage 2, with all intermediates in `scratch`.
    pub fn merge_column<V: Value>(
        &self,
        main: &MainPartition<V>,
        delta: &DeltaPartition<V>,
        scratch: &mut MergeScratch<V>,
    ) -> MergeOutput<MainPartition<V>> {
        self.merge_column_observed(main, delta, scratch, None, 0)
    }

    /// As [`Self::merge_column`], but narrating every enumerated
    /// [`MergeStep`] of column `col` into `sink` (stage boundaries plus a
    /// progress record per completed word-aligned Stage-2 region). The
    /// un-observed path pays nothing: `sink = None` compiles down to the
    /// plain merge.
    pub fn merge_column_observed<V: Value>(
        &self,
        main: &MainPartition<V>,
        delta: &DeltaPartition<V>,
        scratch: &mut MergeScratch<V>,
        sink: Option<&dyn StepSink>,
        col: usize,
    ) -> MergeOutput<MainPartition<V>> {
        self.merge_view_observed(main, DeltaView::Csb(delta), scratch, sink, col)
    }

    /// Merge a sealed, bit-packed [`FrozenDelta`] into a main partition —
    /// the online table's merge input. Byte-identical to merging the same
    /// row sequence through a [`DeltaPartition`], but Stage 1a costs
    /// nothing (the frozen local dictionary is already the sorted `U_D`)
    /// and Stage 2 streams the packed codes with a sequential cursor.
    pub fn merge_column_frozen<V: Value>(
        &self,
        main: &MainPartition<V>,
        frozen: &FrozenDelta<V>,
        scratch: &mut MergeScratch<V>,
    ) -> MergeOutput<MainPartition<V>> {
        self.merge_view_observed(main, DeltaView::Frozen(frozen), scratch, None, 0)
    }

    /// As [`Self::merge_column_frozen`] with step narration (see
    /// [`Self::merge_column_observed`]).
    pub fn merge_column_frozen_observed<V: Value>(
        &self,
        main: &MainPartition<V>,
        frozen: &FrozenDelta<V>,
        scratch: &mut MergeScratch<V>,
        sink: Option<&dyn StepSink>,
        col: usize,
    ) -> MergeOutput<MainPartition<V>> {
        self.merge_view_observed(main, DeltaView::Frozen(frozen), scratch, sink, col)
    }

    fn merge_view_observed<V: Value>(
        &self,
        main: &MainPartition<V>,
        view: DeltaView<'_, V>,
        scratch: &mut MergeScratch<V>,
        sink: Option<&dyn StepSink>,
        col: usize,
    ) -> MergeOutput<MainPartition<V>> {
        let n_m = main.len();
        let n_d = view.len();

        // Stage 1a: delta dictionary extraction (+ compressed-delta rewrite
        // for the table-lookup strategies). A frozen delta skips the stage
        // entirely: it arrives already compressed, so its local dictionary
        // is `U_D` and its packed codes are the rewrite.
        let t0 = Instant::now();
        if let DeltaView::Csb(delta) = view {
            match self.strategy {
                MergeStrategy::Naive => delta.sorted_unique_into(&mut scratch.u_d),
                MergeStrategy::Optimized => {
                    delta.compress_into(&mut scratch.u_d, &mut scratch.delta_codes)
                }
                MergeStrategy::Parallel if self.exact => {
                    crate::parallel::compress_delta_exact_into(delta, self.threads, scratch)
                }
                MergeStrategy::Parallel => {
                    crate::parallel::compress_delta_parallel_into(delta, self.threads, scratch)
                }
            }
        }
        let t_step1a = t0.elapsed();
        if let Some(sink) = sink {
            sink.record(MergeStep::Stage1a { col });
        }

        // Stage 1b: dictionary union (+ aux tables for the table-lookup
        // strategies). The merged dictionary is built in a donated buffer —
        // it leaves the pipeline inside the output partition.
        let t0 = Instant::now();
        let u_m = main.dictionary().values();
        let u_d_len = match &view {
            DeltaView::Csb(_) => scratch.u_d.len(),
            DeltaView::Frozen(f) => f.dict().len(),
        };
        // |U'_M| <= |U_M| + |U_D| is exactly what the union reserves.
        let mut merged = scratch.take_dict(u_m.len() + u_d_len);
        let u_d: &[V] = match &view {
            DeltaView::Csb(_) => &scratch.u_d,
            DeltaView::Frozen(f) => f.dict().values(),
        };
        match self.strategy {
            MergeStrategy::Naive => {
                union_into(u_m, u_d, &mut merged);
            }
            MergeStrategy::Optimized => {
                crate::step1::merge_dictionaries_into(
                    u_m,
                    u_d,
                    &mut merged,
                    &mut scratch.x_m,
                    &mut scratch.x_d,
                );
            }
            MergeStrategy::Parallel => {
                let threads = if self.exact {
                    self.threads
                } else {
                    effective_threads(self.threads, u_m.len() + u_d_len, MIN_DICT_PER_THREAD)
                };
                crate::parallel::merge_dictionaries_parallel_exact_into(
                    u_m,
                    u_d,
                    threads,
                    &mut merged,
                    &mut scratch.x_m,
                    &mut scratch.x_d,
                );
            }
        }
        let t_step1b = t0.elapsed();
        if let Some(sink) = sink {
            sink.record(MergeStep::Stage1b { col });
        }

        // Stage 2(a): E'_C = ceil(log2 |U'_M|) (Equation 4), O(1).
        let bits_after = bits_for(merged.len());

        // Stage 2(b): the one re-encode kernel, parameterized by the
        // strategy's per-tuple code maps. The delta-side map is a stream
        // factory: given a delta-local start row, it yields successive
        // re-encoded codes — indexing the raw value array for a CSB delta,
        // or decoding the packed codes through a sequential cursor for a
        // frozen one.
        let t0 = Instant::now();
        let words = scratch.take_words(((n_m + n_d) * bits_after as usize).div_ceil(64));
        let step2_threads = |requested: usize| {
            if self.exact {
                requested
            } else {
                effective_threads(requested, n_m + n_d, MIN_TUPLES_PER_THREAD)
            }
        };
        let codes = match self.strategy {
            MergeStrategy::Naive => {
                // Materialize each tuple's value, then binary-search U'_M
                // (Equation 5's log factor). Figure 7 parallelizes the
                // unoptimized merge too, so the naive map still fans out.
                let old_dict = main.dictionary();
                let merged_ref: &[V] = &merged;
                let search = move |value: V| -> u64 {
                    merged_ref
                        .binary_search(&value)
                        .expect("merged dictionary must contain value") as u64
                };
                let threads = step2_threads(self.threads);
                let observer = sink.map(|s| (s, col));
                let map_main = |old_code: u64| search(old_dict.value_at(old_code as u32));
                match &view {
                    DeltaView::Csb(delta) => {
                        let delta_values = delta.values();
                        reencode(
                            main,
                            n_d,
                            bits_after,
                            threads,
                            words,
                            observer,
                            map_main,
                            |k0| {
                                let mut k = k0;
                                move || {
                                    let code = search(delta_values[k]);
                                    k += 1;
                                    code
                                }
                            },
                        )
                    }
                    DeltaView::Frozen(f) => reencode(
                        main,
                        n_d,
                        bits_after,
                        threads,
                        words,
                        observer,
                        map_main,
                        |k0| {
                            let mut cur = f.codes().cursor_at(k0);
                            move || search(f.dict().value_at(cur.next_value() as u32))
                        },
                    ),
                }
            }
            MergeStrategy::Optimized | MergeStrategy::Parallel => {
                // Pure table lookups, Equation 11: "a lookup and binary
                // search in the original algorithm description is replaced
                // by a lookup".
                let threads = match self.strategy {
                    MergeStrategy::Optimized => 1,
                    _ => step2_threads(self.threads),
                };
                let (x_m, x_d) = (&scratch.x_m, &scratch.x_d);
                let observer = sink.map(|s| (s, col));
                let map_main = |old_code: u64| x_m[old_code as usize] as u64;
                match &view {
                    DeltaView::Csb(_) => {
                        let delta_codes = &scratch.delta_codes;
                        reencode(
                            main,
                            n_d,
                            bits_after,
                            threads,
                            words,
                            observer,
                            map_main,
                            |k0| {
                                let mut k = k0;
                                move || {
                                    let code = x_d[delta_codes[k] as usize] as u64;
                                    k += 1;
                                    code
                                }
                            },
                        )
                    }
                    DeltaView::Frozen(f) => reencode(
                        main,
                        n_d,
                        bits_after,
                        threads,
                        words,
                        observer,
                        map_main,
                        |k0| {
                            let mut cur = f.codes().cursor_at(k0);
                            move || x_d[cur.next_value() as usize] as u64
                        },
                    ),
                }
            }
        };
        let t_step2 = t0.elapsed();
        if let Some(sink) = sink {
            sink.record(MergeStep::ColumnDone { col });
        }

        let stats = ColumnMergeStats {
            algo: self.strategy.algo(),
            threads: self.threads,
            n_m,
            n_d,
            u_m: u_m.len(),
            u_d: u_d_len,
            u_merged: merged.len(),
            bits_before: main.code_bits(),
            bits_after,
            t_step1a,
            t_step1b,
            t_step2,
        };
        let dict = Dictionary::from_sorted_unique(merged);
        MergeOutput {
            main: MainPartition::from_parts(dict, codes),
            stats,
        }
    }
}

/// Merge one column with `strategy` and `threads` through `scratch` — the
/// free-function spelling of [`MergePipeline::merge_column`].
pub fn merge_column_with<V: Value>(
    main: &MainPartition<V>,
    delta: &DeltaPartition<V>,
    strategy: MergeStrategy,
    threads: usize,
    scratch: &mut MergeScratch<V>,
) -> MergeOutput<MainPartition<V>> {
    MergePipeline::new(strategy, threads).merge_column(main, delta, scratch)
}

/// Stage 1b without aux tables (the naive strategy): two-pointer union of
/// two sorted duplicate-free dictionaries into a reused buffer.
fn union_into<V: Value>(u_m: &[V], u_d: &[V], merged: &mut Vec<V>) {
    merged.clear();
    merged.reserve(u_m.len() + u_d.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < u_m.len() && j < u_d.len() {
        match u_m[i].cmp(&u_d[j]) {
            std::cmp::Ordering::Less => {
                merged.push(u_m[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(u_d[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(u_m[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&u_m[i..]);
    merged.extend_from_slice(&u_d[j..]);
}

/// **The** Step 2 kernel: append `n_d` delta tuples to the `n_m` main
/// tuples, re-encoding every tuple at `bits_after` bits via the two code
/// maps. The old main codes stream through a sequential cursor; output
/// regions are cut on 64-tuple boundaries so every thread owns whole words
/// of the bit-packed output and writes are OR-only into zeroed storage
/// ("each thread reads/writes from/to independent chunks of tables",
/// Section 6.2.2). `words` is the (possibly recycled) output buffer;
/// `threads` is the final team size (the caller applies any clamping).
#[allow(clippy::too_many_arguments)]
fn reencode<V: Value, DC: FnMut() -> u64>(
    main: &MainPartition<V>,
    n_d: usize,
    bits_after: u8,
    threads: usize,
    words: Vec<u64>,
    observer: Option<(&dyn StepSink, usize)>,
    map_main: impl Fn(u64) -> u64 + Sync,
    mk_delta: impl Fn(usize) -> DC + Sync,
) -> BitPackedVec {
    let n_m = main.len();
    let n_total = n_m + n_d;
    let mut codes = BitPackedVec::zeroed_in(bits_after, n_total, words);
    // Region-completion narration: one relaxed counter bump per region (not
    // per tuple), so the observed path stays off the kernel's hot loop.
    let regions_done = std::sync::atomic::AtomicU64::new(0);
    let fill = |mut region: BitRegion<'_>, total_regions: u64| {
        let mut old = main.packed_codes().cursor_at(region.start_index().min(n_m));
        // Each region gets its own delta stream, positioned at the region's
        // first delta-local row (zero if the region starts in the main).
        let mut next_delta = mk_delta(region.start_index().saturating_sub(n_m));
        region.fill_sequential(|idx| {
            if idx < n_m {
                map_main(old.next_value())
            } else {
                next_delta()
            }
        });
        if let Some((sink, col)) = observer {
            let done = regions_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            sink.record(MergeStep::Stage2Progress {
                col,
                done,
                total: total_regions,
            });
        }
    };
    if threads <= 1 {
        // Serial: fill in place, no thread spawn (this is the path the
        // zero-allocation steady state runs on).
        let regions = codes.split_mut(1).into_regions();
        let total = regions.len() as u64;
        for region in regions {
            fill(region, total);
        }
    } else {
        let regions = codes.split_mut(threads).into_regions();
        let total = regions.len() as u64;
        std::thread::scope(|s| {
            for region in regions {
                let fill = &fill;
                s.spawn(move || fill(region, total));
            }
        });
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_from(values: &[u64]) -> DeltaPartition<u64> {
        let mut d = DeltaPartition::new();
        for &v in values {
            d.insert(v);
        }
        d
    }

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed | 1;
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    #[test]
    fn all_strategies_agree_bytewise() {
        let mut next = xorshift(77);
        let main_vals: Vec<u64> = (0..30_000).map(|_| next() % 4_000).collect();
        let delta_vals: Vec<u64> = (0..6_000).map(|_| next() % 6_000).collect();
        let main = MainPartition::from_values(&main_vals);
        let delta = delta_from(&delta_vals);
        let mut scratch = MergeScratch::new();
        let reference = merge_column_with(&main, &delta, MergeStrategy::Optimized, 1, &mut scratch);
        for strategy in [
            MergeStrategy::Naive,
            MergeStrategy::Optimized,
            MergeStrategy::Parallel,
        ] {
            for threads in [1usize, 2, 4] {
                let out = merge_column_with(&main, &delta, strategy, threads, &mut scratch);
                assert_eq!(
                    out.main.dictionary().values(),
                    reference.main.dictionary().values(),
                    "{strategy:?}/{threads}: dictionaries differ"
                );
                assert_eq!(
                    out.main.packed_codes().words(),
                    reference.main.packed_codes().words(),
                    "{strategy:?}/{threads}: packed words differ"
                );
                assert_eq!(out.stats.algo, strategy.algo());
            }
        }
    }

    #[test]
    fn frozen_delta_merge_is_byte_identical_to_csb() {
        // Merging the same row sequence through a bit-packed FrozenDelta
        // must produce the exact partition bytes the CSB path produces —
        // for every strategy and thread fan-out, including shapes that hit
        // the thread clamps and region splits.
        use hyrise_storage::FrozenDelta;
        let mut next = xorshift(41);
        for (n_m, n_d, spread) in [(30_000, 6_000, 4_000u64), (100, 7, 5), (0, 4_096, 900)] {
            let main_vals: Vec<u64> = (0..n_m).map(|_| next() % spread).collect();
            let delta_vals: Vec<u64> = (0..n_d)
                .map(|_| next() % (spread + spread / 2 + 1))
                .collect();
            let main = MainPartition::from_values(&main_vals);
            let delta = delta_from(&delta_vals);
            let frozen = FrozenDelta::from_values(&delta_vals);
            let mut scratch = MergeScratch::new();
            for strategy in [
                MergeStrategy::Naive,
                MergeStrategy::Optimized,
                MergeStrategy::Parallel,
            ] {
                for threads in [1usize, 2, 4] {
                    let pipeline = MergePipeline::new(strategy, threads);
                    let via_csb = pipeline.merge_column(&main, &delta, &mut scratch);
                    let via_frozen = pipeline.merge_column_frozen(&main, &frozen, &mut scratch);
                    assert_eq!(
                        via_frozen.main.dictionary().values(),
                        via_csb.main.dictionary().values(),
                        "{strategy:?}/{threads}/{n_m}+{n_d}: dictionaries differ"
                    );
                    assert_eq!(
                        via_frozen.main.packed_codes().words(),
                        via_csb.main.packed_codes().words(),
                        "{strategy:?}/{threads}/{n_m}+{n_d}: packed words differ"
                    );
                    assert_eq!(via_frozen.stats.u_d, via_csb.stats.u_d);
                    assert_eq!(via_frozen.stats.n_d, n_d);
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_capacity_stable() {
        // After a warm-up merge with recycling, repeated same-shape merges
        // must neither grow the scratch's retained buffers nor bank new
        // spare capacity — i.e. the arena has reached its fixed point.
        let mut next = xorshift(3);
        let main_vals: Vec<u64> = (0..50_000).map(|_| next() % 9_000).collect();
        let delta_vals: Vec<u64> = (0..8_000).map(|_| next() % 12_000).collect();
        let main = MainPartition::from_values(&main_vals);
        let delta = delta_from(&delta_vals);
        let mut scratch = MergeScratch::new();
        for _ in 0..2 {
            let out = merge_column_with(&main, &delta, MergeStrategy::Optimized, 1, &mut scratch);
            scratch.recycle_main(out.main);
        }
        let warmed = (
            scratch.u_d.capacity(),
            scratch.delta_codes.capacity(),
            scratch.x_m.capacity(),
            scratch.x_d.capacity(),
            scratch.spare_capacities(),
        );
        for round in 0..5 {
            let out = merge_column_with(&main, &delta, MergeStrategy::Optimized, 1, &mut scratch);
            scratch.recycle_main(out.main);
            let now = (
                scratch.u_d.capacity(),
                scratch.delta_codes.capacity(),
                scratch.x_m.capacity(),
                scratch.x_d.capacity(),
                scratch.spare_capacities(),
            );
            assert_eq!(now, warmed, "round {round}: scratch capacities moved");
        }
    }

    #[test]
    fn exact_pipeline_bypasses_the_clamp_and_agrees() {
        let mut next = xorshift(11);
        let main_vals: Vec<u64> = (0..20_000).map(|_| next() % 3_000).collect();
        let delta_vals: Vec<u64> = (0..4_000).map(|_| next() % 5_000).collect();
        let main = MainPartition::from_values(&main_vals);
        let delta = delta_from(&delta_vals);
        let mut scratch = MergeScratch::new();
        let clamped = MergePipeline::new(MergeStrategy::Parallel, 4).merge_column(
            &main,
            &delta,
            &mut scratch,
        );
        // Exact mode spawns 4 workers per stage even on a 1-core host (the
        // work is far below the crossover too) — output is still identical.
        let exact = MergePipeline::exact(MergeStrategy::Parallel, 4).merge_column(
            &main,
            &delta,
            &mut scratch,
        );
        assert_eq!(
            clamped.main.dictionary().values(),
            exact.main.dictionary().values()
        );
        assert_eq!(
            clamped.main.packed_codes().words(),
            exact.main.packed_codes().words()
        );
        assert_eq!(exact.stats.threads, 4);
    }

    #[test]
    fn spare_take_is_best_fit() {
        // Bank two spares of very different capacities, then request the
        // large one second: best-fit must not hand the small buffer to the
        // large request just because it was recycled first.
        let mut scratch: MergeScratch<u64> = MergeScratch::new();
        let small = MainPartition::from_values(&(0..100u64).collect::<Vec<_>>());
        let large = MainPartition::from_values(&(0..50_000u64).collect::<Vec<_>>());
        let (small_cap, large_cap) = (
            small.dictionary().values().len(),
            large.dictionary().values().len(),
        );
        scratch.recycle_main(small);
        scratch.recycle_main(large);
        let got_small = scratch.take_dict(small_cap);
        assert!(
            got_small.capacity() >= small_cap && got_small.capacity() < large_cap,
            "small request gets the small spare (cap {})",
            got_small.capacity()
        );
        let got_large = scratch.take_dict(large_cap);
        assert!(
            got_large.capacity() >= large_cap,
            "large request gets the large spare (cap {})",
            got_large.capacity()
        );
        // Oversized request with only small spares: take the largest rather
        // than allocating from zero.
        scratch.recycle_main(MainPartition::from_values(&(0..64u64).collect::<Vec<_>>()));
        let fallback = scratch.take_dict(1 << 20);
        assert!(fallback.capacity() >= 64);
        // Empty bank yields a fresh Vec.
        assert_eq!(scratch.take_dict(10).capacity(), 0);
    }

    #[test]
    fn oversized_spares_are_trimmed_on_take() {
        // The over-retention loop this guards against: a giant buffer banked
        // once used to be handed to every smaller request via the
        // "else the largest" fallback, and the retired output re-banked the
        // giant capacity forever.
        let mut scratch: MergeScratch<u64> = MergeScratch::new();
        scratch.recycle_main(MainPartition::from_values(
            &(0..100_000u64).collect::<Vec<_>>(),
        ));
        let want = 500usize;
        let buf = scratch.take_dict(want);
        assert!(
            buf.capacity() >= want && buf.capacity() <= SPARE_TRIM_FACTOR * want,
            "oversized spare must be trimmed to at most {}x the request, got {}",
            SPARE_TRIM_FACTOR,
            buf.capacity()
        );
        // Same bound through a shared bank, for the word queue.
        let bank: SpareBank<u64> = SpareBank::new();
        bank.recycle_main(MainPartition::from_values(
            &(0..100_000u64).collect::<Vec<_>>(),
        ));
        let words = bank.take_words(64);
        assert!(
            words.capacity() <= SPARE_TRIM_FACTOR * 64,
            "bank takes trim too, got {}",
            words.capacity()
        );
        // Steady state is untouched: an exact-fit request is not trimmed
        // (no realloc on the zero-allocation path).
        let mut scratch: MergeScratch<u64> = MergeScratch::new();
        scratch.recycle_main(MainPartition::from_values(
            &(0..1_000u64).collect::<Vec<_>>(),
        ));
        let before = scratch.spare_capacities().0;
        let buf = scratch.take_dict(before);
        assert_eq!(buf.capacity(), before, "exact fit passes through as-is");
        // A zero-size request cannot keep a giant alive either.
        let mut scratch: MergeScratch<u64> = MergeScratch::new();
        scratch.recycle_main(MainPartition::from_values(
            &(0..100_000u64).collect::<Vec<_>>(),
        ));
        assert!(scratch.take_dict(0).capacity() <= SPARE_TRIM_FACTOR);
    }

    #[test]
    fn bank_attached_scratches_share_spares() {
        use std::sync::Arc;
        let bank = Arc::new(SpareBank::<u64>::new());
        // Two workers' arenas attached to one bank: what worker A retires,
        // worker B can take — the multi-worker stranding fix.
        let mut a = MergeScratch::new();
        let mut b = MergeScratch::new();
        a.attach_bank(Arc::clone(&bank));
        b.attach_bank(Arc::clone(&bank));
        let main = MainPartition::from_values(&(0..10_000u64).collect::<Vec<_>>());
        let want = main.dictionary().values().len();
        a.recycle_main(main);
        assert_eq!(a.spare_capacities(), (0, 0), "locals bypassed");
        assert_eq!(bank.spare_counts(), (1, 1));
        let got = b.take_dict(want);
        assert!(got.capacity() >= want, "B reuses what A retired");
        assert_eq!(bank.spare_counts(), (0, 1));
        // Attaching moves locally banked spares into the bank.
        let mut c = MergeScratch::new();
        c.recycle_main(MainPartition::from_values(&(0..50u64).collect::<Vec<_>>()));
        assert!(c.spare_capacities().0 > 0);
        c.attach_bank(Arc::clone(&bank));
        assert_eq!(c.spare_capacities(), (0, 0));
        assert_eq!(bank.spare_counts(), (1, 2));
    }

    #[test]
    fn budget_constructors() {
        assert!(MergeBudget::UNBOUNDED.is_unbounded());
        assert!(MergeBudget::default().is_unbounded());
        let b = MergeBudget::columns(2);
        assert!(!b.is_unbounded());
        assert_eq!(b.max_columns(), 2);
        let g = MergeGrant::with_threads(3)
            .strategy(MergeStrategy::Naive)
            .budget(b);
        assert_eq!(g.threads, 3);
        assert_eq!(g.strategy, MergeStrategy::Naive);
        assert_eq!(g.budget, b);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_column_budget_rejected() {
        let _ = MergeBudget::columns(0);
    }

    #[test]
    fn empty_shapes() {
        let mut scratch = MergeScratch::new();
        for strategy in [
            MergeStrategy::Naive,
            MergeStrategy::Optimized,
            MergeStrategy::Parallel,
        ] {
            let out = merge_column_with(
                &MainPartition::<u64>::empty(),
                &delta_from(&[]),
                strategy,
                2,
                &mut scratch,
            );
            assert_eq!(out.main.len(), 0, "{strategy:?}");

            let out = merge_column_with(
                &MainPartition::from_values(&[7u64, 7, 1]),
                &delta_from(&[]),
                strategy,
                2,
                &mut scratch,
            );
            assert_eq!(out.main.len(), 3, "{strategy:?}");
            assert_eq!(out.main.get(0), 7, "{strategy:?}");

            let out = merge_column_with(
                &MainPartition::<u64>::empty(),
                &delta_from(&[4, 4, 2]),
                strategy,
                2,
                &mut scratch,
            );
            assert_eq!(out.main.len(), 3, "{strategy:?}");
            assert_eq!(out.main.get(2), 2, "{strategy:?}");
        }
    }

    #[test]
    fn effective_threads_clamps_to_host_and_work() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Never more than the host offers.
        assert!(effective_threads(1024, usize::MAX / 2, 1) <= cores);
        // Never below one; tiny work collapses to serial.
        assert_eq!(effective_threads(8, 10, MIN_DICT_PER_THREAD), 1);
        assert_eq!(effective_threads(1, 0, 1), 1);
    }
}

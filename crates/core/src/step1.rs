//! Serial Step 1(b): merging the two sorted dictionaries with duplicate
//! removal while building the auxiliary translation tables (Section 5.3,
//! "Modified Step 1(b)").

use hyrise_storage::Value;

/// Output of the dictionary merge: the merged sorted dictionary `U'_M` plus
/// the auxiliary structures `X_M` and `X_D`.
///
/// "At the end of Step 1(b), each entry in `X_M` corresponds to the location
/// of the corresponding uncompressed value of `U_M` in the updated `U'_M`.
/// Similar observations hold true for `X_D`."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DictMerge<V> {
    /// `U'_M`: sorted union of the two dictionaries, no duplicates.
    pub merged: Vec<V>,
    /// `X_M`: old main code -> new code. `len == |U_M|`.
    pub x_m: Vec<u32>,
    /// `X_D`: delta code -> new code. `len == |U_D|`.
    pub x_d: Vec<u32>,
}

/// Merge two sorted, duplicate-free dictionaries (the classic sort-merge-join
/// two-pointer walk of Section 5.1, extended with the mapping tables of
/// Section 5.3). `O(|U_M| + |U_D|)`.
///
/// When both pointers see the same value, it is "appended to the dictionary
/// once and ... the same index will be added to the two mapping tables".
pub fn merge_dictionaries<V: Value>(u_m: &[V], u_d: &[V]) -> DictMerge<V> {
    let mut merged = Vec::new();
    let mut x_m = Vec::new();
    let mut x_d = Vec::new();
    merge_dictionaries_into(u_m, u_d, &mut merged, &mut x_m, &mut x_d);
    DictMerge { merged, x_m, x_d }
}

/// As [`merge_dictionaries`], writing into caller-provided buffers (cleared
/// first). With warm capacities this performs no heap allocation — the
/// merge pipeline's serial Stage 1b.
pub fn merge_dictionaries_into<V: Value>(
    u_m: &[V],
    u_d: &[V],
    merged: &mut Vec<V>,
    x_m: &mut Vec<u32>,
    x_d: &mut Vec<u32>,
) {
    debug_assert!(
        u_m.windows(2).all(|w| w[0] < w[1]),
        "U_M must be sorted unique"
    );
    debug_assert!(
        u_d.windows(2).all(|w| w[0] < w[1]),
        "U_D must be sorted unique"
    );

    merged.clear();
    merged.reserve(u_m.len() + u_d.len());
    x_m.clear();
    x_m.resize(u_m.len(), 0);
    x_d.clear();
    x_d.resize(u_d.len(), 0);
    let (mut i, mut j) = (0usize, 0usize);
    while i < u_m.len() && j < u_d.len() {
        let out = merged.len() as u32;
        match u_m[i].cmp(&u_d[j]) {
            std::cmp::Ordering::Less => {
                x_m[i] = out;
                merged.push(u_m[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                x_d[j] = out;
                merged.push(u_d[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                x_m[i] = out;
                x_d[j] = out;
                merged.push(u_m[i]);
                i += 1;
                j += 1;
            }
        }
    }
    while i < u_m.len() {
        x_m[i] = merged.len() as u32;
        merged.push(u_m[i]);
        i += 1;
    }
    while j < u_d.len() {
        x_d[j] = merged.len() as u32;
        merged.push(u_d[j]);
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 6 example, as integers:
    /// U_M = apple charlie delta frank hotel inbox = 1 3 4 6 8 9
    /// U_D = bravo charlie golf young             = 2 3 7 25
    #[test]
    fn figure6_auxiliary_structures() {
        let u_m = vec![1u64, 3, 4, 6, 8, 9];
        let u_d = vec![2u64, 3, 7, 25];
        let r = merge_dictionaries(&u_m, &u_d);
        // merged: apple bravo charlie delta frank golf hotel inbox young
        assert_eq!(r.merged, vec![1, 2, 3, 4, 6, 7, 8, 9, 25]);
        // Figure 6 main auxiliary: 0000 0010 0011 0100 0110 0111
        assert_eq!(r.x_m, vec![0, 2, 3, 4, 6, 7]);
        // Figure 6 delta auxiliary: 0001 0010 0101 1000
        assert_eq!(r.x_d, vec![1, 2, 5, 8]);
    }

    #[test]
    fn disjoint_dictionaries_interleave() {
        let r = merge_dictionaries(&[1u64, 3, 5], &[2u64, 4, 6]);
        assert_eq!(r.merged, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(r.x_m, vec![0, 2, 4]);
        assert_eq!(r.x_d, vec![1, 3, 5]);
    }

    #[test]
    fn identical_dictionaries_collapse() {
        let d = vec![10u64, 20, 30];
        let r = merge_dictionaries(&d, &d);
        assert_eq!(r.merged, d);
        assert_eq!(r.x_m, vec![0, 1, 2]);
        assert_eq!(r.x_d, vec![0, 1, 2]);
    }

    #[test]
    fn empty_sides() {
        let r = merge_dictionaries::<u64>(&[], &[1, 2]);
        assert_eq!(r.merged, vec![1, 2]);
        assert!(r.x_m.is_empty());
        assert_eq!(r.x_d, vec![0, 1]);

        let r = merge_dictionaries::<u64>(&[1, 2], &[]);
        assert_eq!(r.merged, vec![1, 2]);
        assert_eq!(r.x_m, vec![0, 1]);
        assert!(r.x_d.is_empty());

        let r = merge_dictionaries::<u64>(&[], &[]);
        assert!(r.merged.is_empty());
    }

    #[test]
    fn mapping_tables_point_at_values() {
        // Generic invariant: merged[x_m[i]] == u_m[i] and likewise for delta.
        let u_m: Vec<u64> = (0..200).map(|i| i * 3).collect();
        let u_d: Vec<u64> = (0..150).map(|i| i * 4 + 1).collect();
        let r = merge_dictionaries(&u_m, &u_d);
        for (i, v) in u_m.iter().enumerate() {
            assert_eq!(r.merged[r.x_m[i] as usize], *v);
        }
        for (j, v) in u_d.iter().enumerate() {
            assert_eq!(r.merged[r.x_d[j] as usize], *v);
        }
        assert!(r.merged.windows(2).all(|w| w[0] < w[1]));
    }
}

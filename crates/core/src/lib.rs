//! The paper's contribution: the delta-merge algorithms and their
//! surroundings.
//!
//! * [`naive`] — the unoptimized merge of Sections 5.1–5.2: Step 1 extracts
//!   and merges dictionaries, Step 2(b) re-encodes every tuple with a binary
//!   search into the merged dictionary, `O((N_M + N_D) log |U'_M|)`
//!   (Equation 5). This is the baseline the paper beats by ~30x.
//! * [`optimized`] — Section 5.3: auxiliary translation tables `X_M`/`X_D`
//!   built during the dictionary merge turn Step 2(b) into a table lookup,
//!   making the whole merge linear (Equation 6).
//! * [`parallel`] — Section 6.2: the multi-core version. Step 1(b) merges the
//!   two sorted dictionaries with duplicate removal in three phases
//!   (merge-path partitioning, counter array + prefix sum, re-merge at final
//!   offsets); Step 2 partitions tuples over threads on 64-tuple boundaries
//!   so each thread writes its own words of the bit-packed output.
//! * [`model`] — Section 6.1/7.4: the analytical compute & memory-traffic
//!   model (Equations 8–15) with machine calibration micro-benchmarks.
//! * [`pipeline`] — the unified merge pipeline every path above runs
//!   through: explicit Stages 1a/1b/2 behind a [`pipeline::MergeStrategy`],
//!   one shared Step 2 re-encode kernel, a reusable
//!   [`pipeline::MergeScratch`] arena (steady-state merges allocate
//!   nothing), and a [`pipeline::MergeBudget`] that bounds peak extra
//!   memory by merging/committing K columns at a time (Section 4's
//!   partial-column strategy).
//! * [`manager`] — Section 3/4: the online merge — second delta during the
//!   merge, brief table locks only at the beginning and end, atomic commit,
//!   cancellation that leaves the table untouched, and the merge trigger
//!   policy (`N_D > fraction * N_M`).
//! * [`shard`] — the scale-out layer beyond the paper's single-table
//!   evaluation: [`shard::ShardedTable`] hash- or range-partitions rows
//!   across N online tables, and [`shard::ShardedScheduler`] grants merge
//!   threads across shards (at most K concurrent merges, worst delta
//!   fraction first).
//! * [`governor`] — Section 9's scheduling hook as a feedback loop: the
//!   [`governor::ResourceGovernor`] samples read pressure (process-wide
//!   query counters), write pressure (delta growth vs the Section 4
//!   targets) and memory pressure ([`hyrise_storage::MemoryReport`]) and
//!   emits the adaptive [`pipeline::MergeGrant`] both schedulers run
//!   merges under.
//! * [`rate`] — Equations 1 and 16: update-rate accounting, plus the
//!   write-load classification the governor feeds from.
//! * `wal` (private)/[`recovery`]/[`config`]/[`error`] — crash durability beyond
//!   the paper's in-memory evaluation (its Section 3 design assumes a
//!   recoverable differential buffer): an append-only, CRC-checked
//!   per-shard delta WAL, SAGA-style resumable merge checkpoints, and
//!   [`recovery::recover`], behind the [`config::TableBuilder`] /
//!   [`config::Durability`] construction surface and the typed
//!   [`error::Error`] that makes the mutation paths honestly fallible.
//!
//! All three algorithms produce bit-identical merged main partitions; the
//! property tests assert this equivalence.

pub mod config;
pub mod epoch;
pub mod error;
pub mod governor;
pub mod manager;
pub mod model;
pub mod naive;
pub mod optimized;
pub mod parallel;
pub mod partition;
pub mod pipeline;
pub mod pool;
pub mod rate;
pub mod recovery;
pub mod scheduler;
pub mod shard;
pub mod stats;
mod step1;
mod wal;

pub use config::{Durability, ShardedTableBuilder, TableBuilder, TableConfig};
pub use epoch::{EpochCell, EpochGuard};
pub use error::{Error, Result};
pub use governor::{
    begin_read, read_load, GovernorConfig, GrantRecord, GrantSignal, LoadSignals, LoadView,
    ResourceGovernor, RoundPlan,
};
pub use manager::{
    ColumnSnapshot, MergeCancelled, MergePolicy, MergeSession, OnlineTable, TableSnapshot,
};
pub use model::{calibrate, MachineProfile, MergeScenario, ModelPrediction};
pub use naive::merge_column_naive;
pub use optimized::merge_column_optimized;
pub use parallel::{merge_column_parallel, merge_table_parallel};
pub use pipeline::{
    merge_column_with, MergeBudget, MergeGrant, MergePipeline, MergeScratch, MergeStep,
    MergeStrategy, SpareBank, StepSink,
};
pub use pool::Pool;
pub use rate::{classify_update_rate, update_rate, updates_per_second, WriteLoad};
pub use recovery::{recover, recover_sharded, recover_with};
pub use scheduler::{MergeOutcome, MergeScheduler, MergeSource, SchedulerStats, SourceScheduler};
pub use shard::{
    ShardBy, ShardMergeStats, ShardRowId, ShardedScheduler, ShardedSchedulerStats, ShardedTable,
};
pub use stats::{ColumnMergeStats, MergeAlgo, MergeOutput, StageTimings, TableMergeStats};
pub use step1::{merge_dictionaries, merge_dictionaries_into, DictMerge};

//! Merge-path (co-rank) partitioning of two sorted sequences.
//!
//! Section 6.2.1: "In order to evenly distribute the work among the `N_T`
//! threads it is required to partition both dictionaries into
//! `N_T`-quantiles. Since both dictionaries are sorted this can be achieved
//! in `N_T log(|U_M| + |U_D|)` steps" — the classic co-rank binary search
//! (Francis & Mathieson \[8\]; also used by Chhugani et al. \[5\]).

/// Find `(i, j)` with `i + j == k` such that every element of
/// `a[..i]` and `b[..j]` is `<=` every element of `a[i..]` and `b[j..]`;
/// i.e. the first `k` elements of the merged sequence are exactly
/// `merge(a[..i], b[..j])`.
///
/// `O(log(min(k, a.len())))`.
///
/// # Panics
/// If `k > a.len() + b.len()`.
pub fn corank<V: Ord>(k: usize, a: &[V], b: &[V]) -> (usize, usize) {
    assert!(k <= a.len() + b.len(), "k out of range");
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = k - i;
        if i < a.len() && j > 0 && b[j - 1] > a[i] {
            // a[i] sorts before b[j-1]: take more from a.
            lo = i + 1;
        } else if i > 0 && j < b.len() && a[i - 1] > b[j] {
            // a[i-1] sorts after b[j]: take fewer from a.
            hi = i;
        } else {
            return (i, j);
        }
    }
    (lo, k - lo)
}

/// Split the merge of `a` and `b` into `pieces` contiguous ranges of (nearly)
/// equal combined size. Returns `pieces + 1` boundary pairs; piece `t` covers
/// `a[i_t..i_{t+1}]` and `b[j_t..j_{t+1}]`.
pub fn quantile_boundaries<V: Ord>(a: &[V], b: &[V], pieces: usize) -> Vec<(usize, usize)> {
    assert!(pieces > 0, "need at least one piece");
    let total = a.len() + b.len();
    (0..=pieces)
        .map(|t| {
            let k = (total * t) / pieces;
            corank(k, a, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_split<V: Ord + std::fmt::Debug>(a: &[V], b: &[V], i: usize, j: usize) {
        // All of a[..i], b[..j] <= all of a[i..], b[j..].
        if i > 0 && j < b.len() {
            assert!(a[i - 1] <= b[j], "a[{}..] crosses b[{}..]", i, j);
        }
        if j > 0 && i < a.len() {
            assert!(b[j - 1] <= a[i], "b[{}..] crosses a[{}..]", j, i);
        }
    }

    #[test]
    fn corank_endpoints() {
        let a = [1u64, 3, 5];
        let b = [2u64, 4, 6];
        assert_eq!(corank(0, &a, &b), (0, 0));
        assert_eq!(corank(6, &a, &b), (3, 3));
    }

    #[test]
    fn corank_every_k_is_valid() {
        let a: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..80).map(|i| i * 2 + 1).collect();
        for k in 0..=(a.len() + b.len()) {
            let (i, j) = corank(k, &a, &b);
            assert_eq!(i + j, k);
            check_split(&a, &b, i, j);
        }
    }

    #[test]
    fn corank_with_cross_duplicates() {
        // Shared values between the two sorted-unique arrays.
        let a = [1u64, 2, 5, 7, 9];
        let b = [2u64, 5, 6, 9, 11];
        for k in 0..=(a.len() + b.len()) {
            let (i, j) = corank(k, &a, &b);
            assert_eq!(i + j, k);
            check_split(&a, &b, i, j);
        }
    }

    #[test]
    fn corank_empty_sides() {
        let a: [u64; 0] = [];
        let b = [1u64, 2, 3];
        assert_eq!(corank(2, &a, &b), (0, 2));
        assert_eq!(corank(0, &a, &b), (0, 0));
        let a2 = [1u64, 2];
        let b2: [u64; 0] = [];
        assert_eq!(corank(1, &a2, &b2), (1, 0));
    }

    #[test]
    fn boundaries_are_monotone_and_cover() {
        let a: Vec<u64> = (0..301).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..200).map(|i| i * 3 + 1).collect();
        for pieces in [1usize, 2, 3, 6, 7, 16] {
            let bounds = quantile_boundaries(&a, &b, pieces);
            assert_eq!(bounds.len(), pieces + 1);
            assert_eq!(bounds[0], (0, 0));
            assert_eq!(*bounds.last().unwrap(), (a.len(), b.len()));
            for w in bounds.windows(2) {
                assert!(
                    w[0].0 <= w[1].0 && w[0].1 <= w[1].1,
                    "boundaries must be monotone"
                );
            }
            // Pieces are near-equal in combined size.
            for w in bounds.windows(2) {
                let size = (w[1].0 - w[0].0) + (w[1].1 - w[0].1);
                let target = (a.len() + b.len()).div_ceil(pieces);
                assert!(
                    size <= target + 1,
                    "piece of {size} exceeds target {target}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn corank_rejects_oversized_k() {
        corank(4, &[1u64], &[2u64]);
    }
}

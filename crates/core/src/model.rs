//! The analytical compute / memory-traffic model (Sections 6.1 and 7.4).
//!
//! The paper models each merge step's cost as memory traffic divided by the
//! achievable bandwidth (streaming or random, measured "using separate
//! micro-benchmarks"), or by instruction throughput where a step is compute
//! bound, and shows the implementation lands within 1–10% of the lower of
//! those bounds. This module implements the equations, the machine
//! calibration micro-benchmarks, and the per-step predictions used by the
//! `sec74_model_validation` harness.
//!
//! Equation map (all byte counts; `L` = cache line size):
//!
//! * Eq. 8  — Step 1(a): `4·E_j·|U_D|` streaming + `(2L+4)·N_D` random.
//! * Eq. 9  — Step 1(b) reads: `E_j·(|U_M|+|U_D|+|U'_M|) + E'_C·(|X_M|+|X_D|)/8`.
//! * Eq. 10 — Step 1(b) writes: `E_j·|U'_M| + E'_C·(|X_M|+|X_D|)/8`.
//! * Eq. 12 — Step 2 auxiliary gathers: `L·(N_M+N_D)` when `X` misses cache.
//! * Eq. 13 — Step 2 input streams: `E_C·(N_M+N_D)/8`.
//! * Eq. 14 — Step 2 output stream: `2·E'_C·(N_M+N_D)/8` (read-for-write).
//! * Eq. 15 — parallel Step 1(b) overhead: `E_j·(|U_M|+|U_D|) + 2·E_j·|U'_M|`.

use crate::stats::ColumnMergeStats;
use std::hint::black_box;
use std::time::Instant;

/// Calibrated machine constants feeding the model.
#[derive(Clone, Debug)]
pub struct MachineProfile {
    /// Core clock in Hz (cycles per second).
    pub hz: f64,
    /// Aggregate streaming bandwidth in bytes per cycle (all threads).
    pub streaming_bytes_per_cycle: f64,
    /// Aggregate random-access bandwidth in bytes per cycle, counting a full
    /// cache line per access as the paper does.
    pub random_bytes_per_cycle: f64,
    /// Last-level cache size in bytes (decides whether `X_M`/`X_D` gathers
    /// are cache-resident).
    pub llc_bytes: usize,
    /// Cache line size `L` in bytes.
    pub cache_line: usize,
    /// Instructions per merged dictionary element in Step 1(b) ("each element
    /// appended to the output dictionary involves around 12 ops" \[5\]).
    pub dict_merge_ops_per_element: f64,
    /// Instructions per tuple for the cache-resident Step 2 gather (the "4"
    /// in the paper's Equation 18 evaluation).
    pub step2_cache_ops_per_tuple: f64,
    /// Threads the bandwidth numbers were measured with.
    pub threads: usize,
    /// Charge the zero-initialization write passes this safe-Rust
    /// implementation performs on its outputs (merged dictionary, auxiliary
    /// tables, packed output). The paper's C code writes into uninitialized
    /// buffers and its model does not include these; `false` reproduces the
    /// paper's Section 7.4 arithmetic, `true` models this implementation.
    pub charge_zero_init: bool,
}

impl MachineProfile {
    /// The paper's dual-socket Xeon X5680 seen as one socket (Section 7.4):
    /// 3.3 GHz, 23 GB/s streaming (~7 B/cycle), ~5 B/cycle random, 12 MB LLC
    /// per socket (the paper cites 24 MB across two sockets).
    pub fn paper_single_socket() -> Self {
        Self {
            hz: 3.3e9,
            streaming_bytes_per_cycle: 7.0,
            random_bytes_per_cycle: 5.0,
            llc_bytes: 12 * 1024 * 1024,
            cache_line: 64,
            dict_merge_ops_per_element: 12.0,
            step2_cache_ops_per_tuple: 4.0,
            threads: 6,
            charge_zero_init: false,
        }
    }
}

/// One merge configuration, in the model's terms. Build from real measured
/// stats via [`MergeScenario::from_stats`] or construct directly for
/// projections ("our model can be used to project performance with varying
/// input scenarios").
#[derive(Clone, Copy, Debug)]
pub struct MergeScenario {
    /// Tuples in main (`N_M`).
    pub n_m: usize,
    /// Tuples in delta (`N_D`).
    pub n_d: usize,
    /// Uncompressed value-length `E_j` in bytes.
    pub e_j: usize,
    /// `|U_M|`.
    pub u_m: usize,
    /// `|U_D|`.
    pub u_d: usize,
    /// `|U'_M|`.
    pub u_merged: usize,
    /// Compressed value-length before the merge, bits.
    pub bits_before: u8,
    /// Compressed value-length after the merge, bits.
    pub bits_after: u8,
    /// Threads used.
    pub threads: usize,
    /// Bytes per auxiliary-table entry as implemented (the paper packs them
    /// at `E'_C` bits; this implementation uses 4-byte entries).
    pub aux_entry_bytes: usize,
}

impl MergeScenario {
    /// Capture the scenario of a measured merge.
    pub fn from_stats(s: &ColumnMergeStats, e_j: usize) -> Self {
        Self {
            n_m: s.n_m,
            n_d: s.n_d,
            e_j,
            u_m: s.u_m,
            u_d: s.u_d,
            u_merged: s.u_merged,
            bits_before: s.bits_before,
            bits_after: s.bits_after,
            threads: s.threads,
            aux_entry_bytes: 4,
        }
    }

    /// Total tuples `N_M + N_D`.
    pub fn total_tuples(&self) -> usize {
        self.n_m + self.n_d
    }

    /// Bytes occupied by both auxiliary tables as implemented.
    pub fn aux_bytes(&self) -> usize {
        (self.u_m + self.u_d) * self.aux_entry_bytes
    }
}

/// Per-step model outputs, in cycles per tuple (normalized by `N_M + N_D`,
/// like every number in Section 7).
#[derive(Clone, Copy, Debug)]
pub struct ModelPrediction {
    /// Step 1(a) prediction.
    pub step1a_cpt: f64,
    /// Step 1(b) prediction.
    pub step1b_cpt: f64,
    /// Step 2 prediction.
    pub step2_cpt: f64,
    /// Whether the auxiliary tables were assumed cache-resident for Step 2.
    pub aux_fits_cache: bool,
    /// Whether Step 1(b) was predicted compute-bound (vs bandwidth-bound).
    pub step1b_compute_bound: bool,
}

impl ModelPrediction {
    /// Total predicted merge cost in cycles per tuple.
    pub fn total_cpt(&self) -> f64 {
        self.step1a_cpt + self.step1b_cpt + self.step2_cpt
    }
}

impl MachineProfile {
    /// Predict per-step merge costs for a scenario.
    pub fn predict(&self, s: &MergeScenario) -> ModelPrediction {
        let n = s.total_tuples() as f64;
        if n == 0.0 {
            return ModelPrediction {
                step1a_cpt: 0.0,
                step1b_cpt: 0.0,
                step2_cpt: 0.0,
                aux_fits_cache: true,
                step1b_compute_bound: false,
            };
        }
        let l = self.cache_line as f64;
        let ej = s.e_j as f64;
        let ec = s.bits_before as f64;
        let ec_after = s.bits_after as f64;
        let aux_traffic = (s.u_m + s.u_d) as f64 * s.aux_entry_bytes as f64;

        // Step 1(a), Equation 8: tree traversal + dictionary write stream,
        // then a random scatter into the delta partition.
        let step1a_stream = 4.0 * ej * s.u_d as f64 / self.streaming_bytes_per_cycle;
        let step1a_random = (2.0 * l + 4.0) * s.n_d as f64 / self.random_bytes_per_cycle;
        let step1a_cpt = (step1a_stream + step1a_random) / n;

        // Step 1(b), Equations 9 + 10 (+ 15 when parallel), all streaming.
        let mut traffic = ej * (s.u_m + s.u_d + s.u_merged) as f64 + aux_traffic; // Eq. 9
        traffic += ej * s.u_merged as f64 + aux_traffic; // Eq. 10
        if s.threads > 1 {
            traffic += ej * (s.u_m + s.u_d) as f64 + 2.0 * ej * s.u_merged as f64;
            // Eq. 15
        }
        if self.charge_zero_init {
            // vec![0; ..] passes over the merged dictionary and aux tables.
            traffic += ej * s.u_merged as f64 + aux_traffic;
        }
        let step1b_bw = traffic / self.streaming_bytes_per_cycle;
        let step1b_compute =
            self.dict_merge_ops_per_element * s.u_merged as f64 / s.threads.max(1) as f64;
        let step1b_compute_bound = step1b_compute > step1b_bw;
        let step1b_cpt = step1b_bw.max(step1b_compute) / n;

        // Step 2: input stream (Eq. 13) + output stream with write-allocate
        // (Eq. 14) + the auxiliary gather, which is either cache-resident
        // (instruction bound) or one line per tuple from memory (Eq. 12).
        let aux_fits_cache = s.aux_bytes() <= self.llc_bytes;
        let gather = if aux_fits_cache {
            self.step2_cache_ops_per_tuple * n / s.threads.max(1) as f64
        } else {
            l * n / self.random_bytes_per_cycle
        };
        let stream_in = ec * n / 8.0 / self.streaming_bytes_per_cycle;
        let mut stream_out = 2.0 * ec_after * n / 8.0 / self.streaming_bytes_per_cycle;
        if self.charge_zero_init {
            // BitPackedVec::zeroed writes the output once before Step 2 fills it.
            stream_out += ec_after * n / 8.0 / self.streaming_bytes_per_cycle;
        }
        let step2_cpt = (gather + stream_in + stream_out) / n;

        ModelPrediction {
            step1a_cpt,
            step1b_cpt,
            step2_cpt,
            aux_fits_cache,
            step1b_compute_bound,
        }
    }
}

// ---------------------------------------------------------------------------
// Calibration micro-benchmarks.
// ---------------------------------------------------------------------------

fn read_sysfs_cache_bytes() -> Option<usize> {
    for index in ["index3", "index2"] {
        let path = format!("/sys/devices/system/cpu/cpu0/cache/{index}/size");
        if let Ok(text) = std::fs::read_to_string(&path) {
            let text = text.trim();
            let (num, mult) = if let Some(k) = text.strip_suffix('K') {
                (k, 1024)
            } else if let Some(m) = text.strip_suffix('M') {
                (m, 1024 * 1024)
            } else {
                (text, 1)
            };
            if let Ok(v) = num.parse::<usize>() {
                return Some(v * mult);
            }
        }
    }
    None
}

fn read_cpuinfo_hz() -> Option<f64> {
    let text = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    for line in text.lines() {
        if line.starts_with("cpu MHz") {
            let mhz: f64 = line.split(':').nth(1)?.trim().parse().ok()?;
            if mhz > 100.0 {
                return Some(mhz * 1e6);
            }
        }
    }
    None
}

/// Estimate the clock by timing a dependent-add chain (~1 add per cycle).
fn measure_hz() -> f64 {
    const ITERS: u64 = 200_000_000;
    let mut acc: u64 = 0;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        acc = black_box(acc).wrapping_add(1);
    }
    let secs = t0.elapsed().as_secs_f64();
    black_box(acc);
    ITERS as f64 / secs
}

/// Aggregate streaming bandwidth: each thread sums a private large array.
fn measure_streaming_bytes_per_sec(threads: usize, bytes_per_thread: usize) -> f64 {
    let words = bytes_per_thread / 8;
    let arrays: Vec<Vec<u64>> = (0..threads).map(|t| vec![t as u64 + 1; words]).collect();
    let passes = 3usize;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for a in &arrays {
            s.spawn(move || {
                let mut acc = 0u64;
                for _ in 0..passes {
                    for &x in a {
                        acc = acc.wrapping_add(x);
                    }
                }
                black_box(acc);
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    (threads * passes * words * 8) as f64 / secs
}

/// Aggregate random bandwidth: each thread gathers through a private
/// shuffled index array; counts `cache_line` bytes per access like the
/// paper's Equation 12.
fn measure_random_bytes_per_sec(threads: usize, bytes_per_thread: usize, cache_line: usize) -> f64 {
    let words = bytes_per_thread / 8;
    let accesses = words / 4;
    let setups: Vec<(Vec<u64>, Vec<u32>)> = (0..threads)
        .map(|t| {
            let data = vec![t as u64 + 1; words];
            // Multiplicative-congruential permutation walk over the array.
            let mut idx = Vec::with_capacity(accesses);
            let mut x = 0x9E37_79B9u64 + t as u64;
            for _ in 0..accesses {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                idx.push((x % words as u64) as u32);
            }
            (data, idx)
        })
        .collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (data, idx) in &setups {
            s.spawn(move || {
                let mut acc = 0u64;
                for &i in idx {
                    acc = acc.wrapping_add(data[i as usize]);
                }
                black_box(acc);
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    (threads * accesses * cache_line) as f64 / secs
}

/// Single-threaded cycles per tuple of the cache-resident Step 2 inner loop
/// (`M'[i] <- X[M[i]]` over bit-packed codes). The paper charges 4 ops/tuple
/// for its SSE-tuned loop; our safe scalar loop costs more, and measuring it
/// keeps the model honest about *this* implementation.
fn measure_step2_ops_per_tuple(hz: f64) -> f64 {
    use hyrise_bitpack::BitPackedVec;
    let n = 1_000_000usize;
    let aux: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(7) % 1024).collect();
    let input = BitPackedVec::from_slice(10, &(0..n as u64).map(|i| i % 1024).collect::<Vec<_>>());
    let t0 = Instant::now();
    let mut out = BitPackedVec::zeroed(10, n);
    {
        // Same loop shape as the real Step 2: sequential cursor in, OR-only
        // sequential writer out.
        let mut regions = out.split_mut(1).into_regions();
        let region = regions.first_mut().expect("non-empty");
        let mut cur = input.cursor_at(0);
        region.fill_sequential(|_| aux[cur.next_value() as usize] as u64);
    }
    black_box(out.get(n / 2));
    t0.elapsed().as_secs_f64() * hz / n as f64
}

/// Single-threaded cycles per output element of the serial dictionary merge
/// with auxiliary-table writes (the paper's "around 12 ops" constant [5]).
fn measure_dict_merge_ops_per_element(hz: f64) -> f64 {
    let a: Vec<u64> = (0..500_000u64).map(|i| i * 2).collect();
    let b: Vec<u64> = (0..500_000u64).map(|i| i * 2 + 1).collect();
    let t0 = Instant::now();
    let dm = crate::step1::merge_dictionaries(&a, &b);
    let elems = dm.merged.len();
    black_box(dm.merged[elems / 2]);
    t0.elapsed().as_secs_f64() * hz / elems as f64
}

/// Run the calibration micro-benchmarks (a few hundred milliseconds) and
/// return a machine profile for `threads`-way execution — the analogue of
/// the paper's "both measured using separate micro-benchmarks, each running
/// with 6 threads". The two instruction-count constants are measured against
/// this implementation's loops rather than assumed from the paper's tuned
/// SSE code.
pub fn calibrate(threads: usize) -> MachineProfile {
    let hz = read_cpuinfo_hz().unwrap_or_else(measure_hz);
    let cache_line = 64usize;
    let llc_bytes = read_sysfs_cache_bytes().unwrap_or(32 * 1024 * 1024);
    let per_thread = (4 * llc_bytes / threads.max(1)).clamp(16 << 20, 128 << 20);
    let streaming = measure_streaming_bytes_per_sec(threads, per_thread) / hz;
    let random = measure_random_bytes_per_sec(threads, per_thread, cache_line) / hz;
    MachineProfile {
        hz,
        streaming_bytes_per_cycle: streaming,
        random_bytes_per_cycle: random,
        llc_bytes,
        cache_line,
        dict_merge_ops_per_element: measure_dict_merge_ops_per_element(hz),
        step2_cache_ops_per_tuple: measure_step2_ops_per_tuple(hz),
        threads,
        charge_zero_init: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Section 7.4's first worked example: N_M = 100M, N_D = 1M, E_j = 8,
    /// 100% unique. Step 1(a) should come to ~0.306 cycles/tuple on the
    /// paper's machine.
    #[test]
    fn section_7_4_step1a_example() {
        let m = MachineProfile::paper_single_socket();
        let s = MergeScenario {
            n_m: 100_000_000,
            n_d: 1_000_000,
            e_j: 8,
            u_m: 100_000_000,
            u_d: 1_000_000,
            u_merged: 101_000_000,
            bits_before: 27,
            bits_after: 27,
            threads: 6,
            aux_entry_bytes: 4,
        };
        let p = m.predict(&s);
        // (4*8*1M/7 + 132*1M/5) / 101M = 0.306 cpt (Equation 17)
        assert!(
            (p.step1a_cpt - 0.306).abs() < 0.01,
            "step1a = {}",
            p.step1a_cpt
        );
        assert!(!p.aux_fits_cache, "404 MB of aux cannot fit a 12 MB LLC");
    }

    /// Section 7.4's Step 2 example at 100% unique: ~14.2 cycles per tuple
    /// predicted (measured 15.0). The paper packs auxiliary entries at E'_C
    /// bits; with 27-bit entries the prediction uses Eq. 12's line-per-tuple
    /// gather, which dominates, so entry width barely matters.
    #[test]
    fn section_7_4_step2_bandwidth_bound() {
        let m = MachineProfile::paper_single_socket();
        let s = MergeScenario {
            n_m: 100_000_000,
            n_d: 1_000_000,
            e_j: 8,
            u_m: 100_000_000,
            u_d: 1_000_000,
            u_merged: 101_000_000,
            bits_before: 27,
            bits_after: 27,
            threads: 6,
            aux_entry_bytes: 4,
        };
        let p = m.predict(&s);
        assert!((p.step2_cpt - 14.2).abs() < 0.5, "step2 = {}", p.step2_cpt);
    }

    /// Section 7.4's cache-resident example (1% unique): Equation 18 gives
    /// ~1.73 cycles per tuple for Step 2.
    #[test]
    fn section_7_4_step2_cache_resident() {
        let m = MachineProfile::paper_single_socket();
        // lambda = 1%: |U_M| = 1M, E_C ~ 20 bits. The paper evaluates with
        // E_C = 19.9 "bits"; we use 20.
        let s = MergeScenario {
            n_m: 100_000_000,
            n_d: 1_000_000,
            e_j: 8,
            u_m: 1_000_000,
            u_d: 10_000,
            u_merged: 1_005_000,
            bits_before: 20,
            bits_after: 20,
            threads: 6,
            aux_entry_bytes: 4,
        };
        let p = m.predict(&s);
        assert!(p.aux_fits_cache, "~4 MB of aux fits a 12 MB LLC");
        assert!((p.step2_cpt - 1.73).abs() < 0.15, "step2 = {}", p.step2_cpt);
    }

    #[test]
    fn more_threads_never_slower_in_model() {
        let m = MachineProfile::paper_single_socket();
        let mk = |threads| MergeScenario {
            n_m: 10_000_000,
            n_d: 100_000,
            e_j: 8,
            u_m: 1_000_000,
            u_d: 50_000,
            u_merged: 1_040_000,
            bits_before: 20,
            bits_after: 21,
            threads,
            aux_entry_bytes: 4,
        };
        // Compute-bound parts shrink with threads; Eq. 15 adds a constant
        // traffic overhead when going parallel, so compare 2 vs 6.
        let p2 = m.predict(&mk(2)).total_cpt();
        let p6 = m.predict(&mk(6)).total_cpt();
        assert!(p6 <= p2 + 1e-9, "6T {p6} should not exceed 2T {p2}");
    }

    #[test]
    fn empty_scenario_predicts_zero() {
        let m = MachineProfile::paper_single_socket();
        let s = MergeScenario {
            n_m: 0,
            n_d: 0,
            e_j: 8,
            u_m: 0,
            u_d: 0,
            u_merged: 0,
            bits_before: 1,
            bits_after: 1,
            threads: 1,
            aux_entry_bytes: 4,
        };
        assert_eq!(m.predict(&s).total_cpt(), 0.0);
    }

    #[test]
    fn cache_cliff_raises_step2() {
        // Crossing the LLC with the aux tables must raise the predicted
        // Step 2 cost sharply (the Figure 9 cliff).
        let m = MachineProfile::paper_single_socket();
        let small = MergeScenario {
            n_m: 100_000_000,
            n_d: 1_000_000,
            e_j: 8,
            u_m: 1_000_000, // 4 MB aux: fits
            u_d: 10_000,
            u_merged: 1_005_000,
            bits_before: 20,
            bits_after: 20,
            threads: 6,
            aux_entry_bytes: 4,
        };
        let big = MergeScenario {
            u_m: 10_000_000,
            u_merged: 10_005_000,
            bits_before: 24,
            bits_after: 24,
            ..small
        };
        let ps = m.predict(&small);
        let pb = m.predict(&big);
        assert!(ps.aux_fits_cache && !pb.aux_fits_cache);
        assert!(
            pb.step2_cpt > 3.0 * ps.step2_cpt,
            "cliff: {} vs {}",
            pb.step2_cpt,
            ps.step2_cpt
        );
    }
}

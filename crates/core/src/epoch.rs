//! Epoch-published pointers: the lock-free read side of the online table.
//!
//! The paper's main/delta split only pays off if readers never block
//! writers (Section 3: "interferences with other queries are minimized").
//! [`EpochCell`] is the primitive that removes the table `RwLock` from the
//! steady-state read path: the table's immutable *generation* (main
//! partitions, frozen deltas, the handle to the append-only tail) lives
//! behind an atomic pointer, readers **pin** it with two atomic operations
//! and a re-check, and the merge path **swaps** in a new generation and
//! waits for the old one's pins to drain before freeing it.
//!
//! # Protocol
//!
//! Reads:
//! 1. load the epoch `e`;
//! 2. increment the pin counter of bank `e & 1` (the bank *owned* by epoch
//!    `e`);
//! 3. re-check that the epoch is still `e` — on mismatch, undo the pin and
//!    retry (a swap raced us; we must not touch a generation whose drain we
//!    may have missed);
//! 4. load the pointer and use it; the pin is released on guard drop.
//!
//! Swaps (externally serialized — in the table, by the merge gate):
//! 1. swap the pointer to the new generation;
//! 2. bump the epoch from `e` to `e + 1` (retiring bank `e & 1`);
//! 3. spin until bank `e & 1` drains to zero, then free the old
//!    generation.
//!
//! Soundness: a pin on bank `e & 1` whose re-check read epoch `e` is, in
//! the `SeqCst` total order, *before* the epoch bump, hence before every
//! drain load — so the drain cannot observe zero until that reader
//! unpins. A pin that arrives after the bump fails the re-check and never
//! dereferences the pointer. Because swaps are serialized and each drains
//! before returning, at most one retired generation exists at a time and
//! it can be freed immediately after its drain.
//!
//! Pin counters are striped (8 cache-line-sized stripes, threads assigned
//! round-robin) so concurrent readers don't all hammer one line.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

const STRIPES: usize = 8;

/// One stripe of pin counters: one counter per bank, padded to its own
/// cache line so reader stripes don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PinStripe {
    banks: [AtomicUsize; 2],
}

/// Round-robin stripe assignment; each thread keeps its stripe for life.
fn stripe_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// An atomically swappable, epoch-pinned pointer to an immutable `T`.
///
/// Readers call [`EpochCell::pin`] (wait-free unless a swap is in
/// progress); the single writer calls [`EpochCell::swap`]. Swaps **must**
/// be externally serialized — the online table runs them under its merge
/// gate, which the acceptance criteria except from the lock-free
/// guarantee.
pub struct EpochCell<T> {
    ptr: AtomicPtr<T>,
    epoch: AtomicU64,
    stripes: [PinStripe; STRIPES],
}

// The cell hands `&T` to arbitrary threads and moves `Box<T>` between
// them on swap.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell holding `value` at epoch 0.
    pub fn new(value: Box<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(value)),
            epoch: AtomicU64::new(0),
            stripes: Default::default(),
        }
    }

    /// The current publish epoch. Every [`Self::swap`] advances it by one;
    /// snapshots are tagged with the epoch they were pinned at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Pin the current value for reading. Lock-free: two atomic RMWs plus
    /// two loads on the happy path; retries only while a concurrent swap
    /// is bumping the epoch.
    pub fn pin(&self) -> EpochGuard<'_, T> {
        let stripe = stripe_id();
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let bank = (e & 1) as usize;
            self.stripes[stripe].banks[bank].fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                let ptr = self.ptr.load(Ordering::Acquire);
                return EpochGuard {
                    cell: self,
                    stripe,
                    bank,
                    epoch: e,
                    ptr,
                };
            }
            // A swap retired our bank between the epoch read and the pin;
            // our pin may have missed its drain. Undo and retry.
            self.stripes[stripe].banks[bank].fetch_sub(1, Ordering::SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publish `new`, retiring the current value once every reader pinned
    /// to it has unpinned. Returns after the retired value is freed, so
    /// the caller observes reclamation (the table recycles retired main
    /// partitions into its spare bank right after the swap).
    ///
    /// # Serialization
    /// Callers must ensure swaps never race each other (the table holds
    /// its merge gate across every swap). The calling thread must not
    /// hold a pin on this cell, or the drain would wait on itself.
    pub fn swap(&self, new: Box<T>) {
        let old = self.ptr.swap(Box::into_raw(new), Ordering::AcqRel);
        let e = self.epoch.fetch_add(1, Ordering::SeqCst);
        let bank = (e & 1) as usize;
        // Drain the retired bank: once a full pass over the stripes reads
        // zero, every reader that could dereference `old` has unpinned
        // (late pins on this bank fail their epoch re-check).
        loop {
            if self
                .stripes
                .iter()
                .all(|s| s.banks[bank].load(Ordering::SeqCst) == 0)
            {
                break;
            }
            std::thread::yield_now();
        }
        // SAFETY: `old` came from `Box::into_raw` (in `new` or a previous
        // `swap`), the drain above proves no reader still holds it, and
        // swap serialization means no other thread frees it.
        drop(unsafe { Box::from_raw(old) });
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the pointer is always a live Box.
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
    }
}

/// A pinned read of an [`EpochCell`]; derefs to the pinned value. Holding
/// a guard stalls any swap's drain, so keep pins short — clone the `Arc`s
/// you need out of the generation and drop the guard.
pub struct EpochGuard<'a, T> {
    cell: &'a EpochCell<T>,
    stripe: usize,
    bank: usize,
    epoch: u64,
    ptr: *const T,
}

impl<T> EpochGuard<'_, T> {
    /// The epoch this pin validated against — the snapshot's publish tag.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<T> std::ops::Deref for EpochGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the pin on `(stripe, bank)` keeps the pointed-to value
        // alive until drop (see module protocol).
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for EpochGuard<'_, T> {
    fn drop(&mut self) {
        self.cell.stripes[self.stripe].banks[self.bank].fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn pin_reads_current_value() {
        let cell = EpochCell::new(Box::new(41));
        assert_eq!(*cell.pin(), 41);
        assert_eq!(cell.epoch(), 0);
        cell.swap(Box::new(42));
        assert_eq!(*cell.pin(), 42);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.pin().epoch(), 1);
    }

    #[test]
    fn drop_frees_the_value() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::new(Box::new(Canary(Arc::clone(&drops))));
        cell.swap(Box::new(Canary(Arc::clone(&drops))));
        assert_eq!(drops.load(Ordering::SeqCst), 1, "swap frees the retiree");
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_pins_never_observe_a_freed_generation() {
        // Readers validate an invariant of the pinned value while a writer
        // swaps continuously; any use-after-free corrupts the pair.
        let cell = Arc::new(EpochCell::new(Box::new((0u64, !0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (cell, stop) = (Arc::clone(&cell), Arc::clone(&stop));
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let g = cell.pin();
                        let (a, b) = *g;
                        assert_eq!(a, !b, "torn or freed generation observed");
                    }
                });
            }
            for i in 1..2_000u64 {
                cell.swap(Box::new((i, !i)));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 1_999);
    }
}

//! The optimized linear-time merge, single-threaded (Section 5.3).
//!
//! Three modifications over the naive algorithm:
//!
//! * **Modified Step 1(a)** — while extracting the sorted delta dictionary
//!   `U_D` from the CSB+ tree, the delta partition is rewritten as
//!   fixed-width indices into `U_D` (scattered through the per-value
//!   tuple-id lists), so Step 2 sees fixed-width lookups on both sides.
//! * **Modified Step 1(b)** — the dictionary merge additionally populates the
//!   auxiliary translation tables `X_M` and `X_D`.
//! * **Modified Step 2(b)** — re-encoding a tuple is now
//!   `M'[i] <- X_M[M[i]]` (Equation 11): "a lookup and binary search in the
//!   original algorithm description is replaced by a lookup", giving overall
//!   `O(N_M + N_D + |U_M| + |U_D|)` (Equation 6).

use crate::pipeline::{merge_column_with, MergeScratch, MergeStrategy};
use crate::stats::MergeOutput;
use hyrise_storage::{DeltaPartition, MainPartition, Value};

/// Merge one column's delta into its main partition with the optimized
/// single-threaded algorithm.
///
/// A stage configuration of the unified [`crate::pipeline::MergePipeline`]:
/// Stage 1a compresses the delta against `U_D`, Stage 1b builds the
/// auxiliary tables, and the shared Stage 2 kernel runs serially with the
/// `X_M`/`X_D` lookup maps (Equation 11).
pub fn merge_column_optimized<V: Value>(
    main: &MainPartition<V>,
    delta: &DeltaPartition<V>,
) -> MergeOutput<MainPartition<V>> {
    merge_column_with(
        main,
        delta,
        MergeStrategy::Optimized,
        1,
        &mut MergeScratch::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::merge_column_naive;

    fn delta_from(values: &[u64]) -> DeltaPartition<u64> {
        let mut d = DeltaPartition::new();
        for &v in values {
            d.insert(v);
        }
        d
    }

    #[test]
    fn figure6_lookup_example() {
        // "the first compressed value in the main partition has a compressed
        // value of 4 (100 in binary). ... we look up the value stored at
        // index 4 in the auxiliary structure that corresponds to 6 (0110)."
        let main = MainPartition::from_values(&[8u64, 4, 6, 4, 1, 3, 9]);
        let delta = delta_from(&[2, 3, 7, 3, 25]);
        let out = merge_column_optimized(&main, &delta);
        assert_eq!(main.code(0), 4);
        assert_eq!(out.main.code(0), 6);
        assert_eq!(out.main.code_bits(), 4);
        let all: Vec<u64> = (0..out.main.len()).map(|i| out.main.get(i)).collect();
        assert_eq!(all, vec![8, 4, 6, 4, 1, 3, 9, 2, 3, 7, 3, 25]);
    }

    #[test]
    fn agrees_with_naive_on_random_data() {
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for trial in 0..5 {
            let main_vals: Vec<u64> = (0..2000).map(|_| next() % 300).collect();
            let delta_vals: Vec<u64> = (0..500).map(|_| next() % 400).collect();
            let main = MainPartition::from_values(&main_vals);
            let delta = delta_from(&delta_vals);
            let a = merge_column_naive(&main, &delta, 1);
            let b = merge_column_optimized(&main, &delta);
            assert_eq!(
                a.main.dictionary().values(),
                b.main.dictionary().values(),
                "trial {trial}: dictionaries differ"
            );
            assert_eq!(a.main.code_bits(), b.main.code_bits());
            let va: Vec<u64> = a.main.codes().collect();
            let vb: Vec<u64> = b.main.codes().collect();
            assert_eq!(va, vb, "trial {trial}: codes differ");
        }
    }

    #[test]
    fn empty_inputs() {
        let out = merge_column_optimized(&MainPartition::<u64>::empty(), &delta_from(&[]));
        assert_eq!(out.main.len(), 0);
        assert_eq!(out.stats.u_merged, 0);

        let out = merge_column_optimized(&MainPartition::from_values(&[1u64]), &delta_from(&[]));
        assert_eq!(out.main.len(), 1);
        assert_eq!(out.main.get(0), 1);

        let out = merge_column_optimized(&MainPartition::<u64>::empty(), &delta_from(&[4, 4, 2]));
        assert_eq!(out.main.len(), 3);
        assert_eq!(out.main.get(0), 4);
        assert_eq!(out.main.get(2), 2);
    }

    #[test]
    fn repeated_merges_accumulate() {
        // Merge three waves of deltas; the main must always equal the
        // concatenation of everything inserted so far.
        let mut main = MainPartition::<u64>::empty();
        let mut expected: Vec<u64> = Vec::new();
        for wave in 0..3u64 {
            let delta_vals: Vec<u64> = (0..100).map(|i| (wave * 1000 + i * 7) % 260).collect();
            let delta = delta_from(&delta_vals);
            expected.extend_from_slice(&delta_vals);
            main = merge_column_optimized(&main, &delta).main;
            let got: Vec<u64> = (0..main.len()).map(|i| main.get(i)).collect();
            assert_eq!(got, expected, "after wave {wave}");
        }
    }

    #[test]
    fn works_for_all_value_widths() {
        use hyrise_storage::V16;
        let main = MainPartition::from_values(&[3u32, 1]);
        let mut delta = DeltaPartition::new();
        delta.insert(2u32);
        let out = merge_column_optimized(&main, &delta);
        assert_eq!(
            (0..3).map(|i| out.main.get(i)).collect::<Vec<_>>(),
            vec![3, 1, 2]
        );

        let main = MainPartition::from_values(&[V16::from_seed(3)]);
        let mut delta = DeltaPartition::new();
        delta.insert(V16::from_seed(1));
        let out = merge_column_optimized(&main, &delta);
        assert_eq!(out.main.get(1), V16::from_seed(1));
        assert_eq!(out.main.dictionary().len(), 2);
    }
}

//! Unified table construction: [`TableConfig`], [`TableBuilder`], and
//! [`ShardedTableBuilder`].
//!
//! Durability made construction configuration-heavy — columns, a WAL
//! directory and fsync policy, a governor profile, sharding layout — and
//! the scattered positional constructors (`OnlineTable::new` and the
//! since-removed `ShardedTable::hash`/`range`) don't scale to that. The
//! builders are the one construction surface:
//!
//! ```
//! use hyrise_core::{Durability, OnlineTable};
//! # fn main() -> hyrise_core::Result<()> {
//! let table: OnlineTable<u64> = OnlineTable::builder()
//!     .columns(3)
//!     .durability(Durability::None)
//!     .build()?;
//! # Ok(())
//! # }
//! ```
//!
//! A durable table writes its manifest and opens its first WAL segment at
//! build time; building over a directory that already holds a table is a
//! [`Error::Config`] — re-open those with [`crate::recovery::recover`].

use crate::error::{Error, Result};
use crate::governor::GovernorConfig;
use crate::manager::OnlineTable;
use crate::pipeline::SpareBank;
use crate::shard::{ShardBy, ShardedTable};
use crate::wal::{self, Wal};
use hyrise_storage::Value;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Whether (and how) a table's delta survives a crash.
#[derive(Clone, Debug, Default)]
pub enum Durability {
    /// In-memory only — the existing zero-I/O path, byte-for-byte. A
    /// crash loses the delta (and everything else).
    #[default]
    None,
    /// Append a write-ahead record per insert batch / validity flip to
    /// `dir`, so [`crate::recovery::recover`] rebuilds the table after a
    /// crash.
    Wal {
        /// The table's directory: manifest, WAL segments, checkpoint,
        /// merge log. One table per directory.
        dir: PathBuf,
        /// `true`: records are fdatasync'd before the rows become
        /// visible — durable against power loss, at a large insert
        /// latency cost. `false` (*buffered*): records reach the OS
        /// page cache before the rows become visible — durable against
        /// process death (`kill -9`), not against kernel panic or power
        /// loss.
        fsync: bool,
    },
}

/// The resolved configuration a [`TableBuilder`] accumulates. Public so
/// callers can build configs programmatically and hand them around (the
/// workload driver threads one through its scenario set-up).
#[derive(Clone, Debug)]
pub struct TableConfig {
    /// Number of columns (must be ≥ 1).
    pub columns: usize,
    /// Crash-durability policy.
    pub durability: Durability,
    /// Governor profile recorded on the table (consumed by recovery's
    /// resume grant and by callers spawning schedulers).
    pub governor: Option<GovernorConfig>,
}

impl Default for TableConfig {
    fn default() -> Self {
        Self {
            columns: 1,
            durability: Durability::None,
            governor: None,
        }
    }
}

/// Builder for [`OnlineTable`] — see the module docs.
#[derive(Default)]
pub struct TableBuilder<V> {
    config: TableConfig,
    bank: Option<Arc<SpareBank<V>>>,
}

impl<V: Value> TableBuilder<V> {
    /// An empty builder: 1 column, [`Durability::None`], no governor.
    pub fn new() -> Self {
        Self {
            config: TableConfig::default(),
            bank: None,
        }
    }

    /// Start from an existing [`TableConfig`].
    pub fn from_config(config: TableConfig) -> Self {
        Self { config, bank: None }
    }

    /// Number of columns.
    pub fn columns(mut self, n: usize) -> Self {
        self.config.columns = n;
        self
    }

    /// Crash-durability policy.
    pub fn durability(mut self, d: Durability) -> Self {
        self.config.durability = d;
        self
    }

    /// Record a governor profile on the table.
    pub fn governor(mut self, cfg: GovernorConfig) -> Self {
        self.config.governor = Some(cfg);
        self
    }

    /// Share a [`SpareBank`] (e.g. across the shards of one table).
    pub fn spare_bank(mut self, bank: Arc<SpareBank<V>>) -> Self {
        self.bank = Some(bank);
        self
    }

    /// Build the table. Fails with [`Error::Config`] on zero columns or a
    /// WAL directory that already holds a table, and with [`Error::Io`]
    /// when the directory/manifest/segment cannot be created.
    pub fn build(self) -> Result<OnlineTable<V>> {
        if self.config.columns == 0 {
            return Err(Error::config("a table needs at least one column"));
        }
        let mut table = OnlineTable::new(self.config.columns);
        if let Some(bank) = self.bank {
            table = table.with_spare_bank(bank);
        }
        if let Durability::Wal { dir, fsync } = &self.config.durability {
            table.set_wal(Some(open_fresh_wal::<V>(dir, *fsync, self.config.columns)?));
        }
        table.set_governor_config(self.config.governor);
        Ok(table)
    }
}

/// Create `dir`, refuse it if it already holds a table, write the
/// manifest, and open segment 0.
fn open_fresh_wal<V: Value>(dir: &Path, fsync: bool, n_cols: usize) -> Result<Wal<V>> {
    std::fs::create_dir_all(dir).map_err(|e| Error::io("create table directory", e))?;
    if wal::manifest_exists(dir) || !wal::list_segments(dir)?.is_empty() {
        return Err(Error::config(format!(
            "{} already holds a table; re-open it with hyrise_core::recovery::recover",
            dir.display()
        )));
    }
    wal::write_manifest(
        dir,
        &wal::Manifest {
            n_cols,
            value_bytes: V::BYTES,
            fsync,
        },
    )?;
    Wal::create(dir, fsync, 0)
}

/// Builder for [`ShardedTable`]: shard count or range bounds, routing key
/// column, and the same column/durability/governor knobs as
/// [`TableBuilder`] applied per shard.
///
/// With [`Durability::Wal`] the directory becomes the *root*: a sharded
/// manifest plus one `shard-<i>/` table directory per shard, each with
/// its own segments and checkpoint (the per-shard WAL of the tentpole).
#[derive(Debug)]
pub struct ShardedTableBuilder<V> {
    shards: Option<usize>,
    by: ShardBy<V>,
    key_col: usize,
    config: TableConfig,
}

impl<V: Value> ShardedTableBuilder<V> {
    /// An empty builder: 1 hash shard, 1 column, key column 0,
    /// [`Durability::None`].
    pub fn new() -> Self {
        Self {
            shards: None,
            by: ShardBy::Hash,
            key_col: 0,
            config: TableConfig::default(),
        }
    }

    /// Number of shards (hash partitioning only; range partitioning
    /// derives the count from its bounds).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Routing scheme. [`ShardBy::Range`] bounds must be strictly
    /// ascending and imply `bounds.len() + 1` shards.
    pub fn partitioning(mut self, by: ShardBy<V>) -> Self {
        self.by = by;
        self
    }

    /// Route on `col` instead of column 0.
    pub fn key_col(mut self, col: usize) -> Self {
        self.key_col = col;
        self
    }

    /// Number of columns per shard.
    pub fn columns(mut self, n: usize) -> Self {
        self.config.columns = n;
        self
    }

    /// Crash-durability policy (per shard, under one root directory).
    pub fn durability(mut self, d: Durability) -> Self {
        self.config.durability = d;
        self
    }

    /// Record a governor profile on every shard.
    pub fn governor(mut self, cfg: GovernorConfig) -> Self {
        self.config.governor = Some(cfg);
        self
    }

    /// Build the sharded table, validating the layout first
    /// ([`Error::Config`] on unsorted range bounds, a shard-count
    /// mismatch, zero shards/columns, or a key column out of range).
    pub fn build(self) -> Result<ShardedTable<V>> {
        if self.config.columns == 0 {
            return Err(Error::config("a table needs at least one column"));
        }
        if self.key_col >= self.config.columns {
            return Err(Error::config(format!(
                "key column {} out of range for {} columns",
                self.key_col, self.config.columns
            )));
        }
        let num_shards = match &self.by {
            ShardBy::Hash => {
                let n = self.shards.unwrap_or(1);
                if n == 0 {
                    return Err(Error::config("a sharded table needs at least one shard"));
                }
                n
            }
            ShardBy::Range(bounds) => {
                if !bounds.windows(2).all(|w| w[0] < w[1]) {
                    return Err(Error::config("range bounds must be strictly ascending"));
                }
                let implied = bounds.len() + 1;
                if self.shards.is_some_and(|n| n != implied) {
                    return Err(Error::config(format!(
                        "{} range bounds imply {implied} shards, but .shards() asked for {}",
                        bounds.len(),
                        self.shards.unwrap_or(0)
                    )));
                }
                implied
            }
        };
        let bank = Arc::new(SpareBank::new());
        let mut shards = Vec::with_capacity(num_shards);
        for i in 0..num_shards {
            let mut builder = TableBuilder::new()
                .columns(self.config.columns)
                .spare_bank(Arc::clone(&bank));
            if let Some(g) = &self.config.governor {
                builder = builder.governor(g.clone());
            }
            if let Durability::Wal { dir, fsync } = &self.config.durability {
                builder = builder.durability(Durability::Wal {
                    dir: wal::shard_dir(dir, i),
                    fsync: *fsync,
                });
            }
            shards.push(builder.build()?);
        }
        if let Durability::Wal { dir, fsync } = &self.config.durability {
            wal::write_sharded_manifest(
                dir,
                &wal::ShardedManifest {
                    n_shards: num_shards,
                    n_cols: self.config.columns,
                    value_bytes: V::BYTES,
                    fsync: *fsync,
                    key_col: self.key_col,
                    by: self.by.clone(),
                },
            )?;
        }
        Ok(ShardedTable::from_parts(shards, self.by, self.key_col))
    }
}

impl<V: Value> Default for ShardedTableBuilder<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_new() {
        let t: OnlineTable<u64> = OnlineTable::builder().columns(3).build().unwrap();
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn zero_columns_is_a_config_error() {
        let err = OnlineTable::<u64>::builder()
            .columns(0)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::Config { .. }));
    }

    #[test]
    fn unsorted_range_bounds_are_a_config_error() {
        let err = ShardedTable::<u64>::builder()
            .partitioning(ShardBy::Range(vec![200, 100]))
            .columns(1)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::Config { .. }));
    }

    #[test]
    fn shard_count_mismatch_is_a_config_error() {
        let err = ShardedTable::<u64>::builder()
            .shards(5)
            .partitioning(ShardBy::Range(vec![100]))
            .columns(1)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::Config { .. }));
    }

    #[test]
    fn key_col_out_of_range_is_a_config_error() {
        let err = ShardedTable::<u64>::builder()
            .shards(2)
            .columns(2)
            .key_col(2)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::Config { .. }));
    }

    #[test]
    fn building_over_an_existing_table_is_refused() {
        let dir = std::env::temp_dir().join(format!(
            "hyrise-config-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let t: OnlineTable<u64> = OnlineTable::builder()
            .columns(2)
            .durability(Durability::Wal {
                dir: dir.clone(),
                fsync: false,
            })
            .build()
            .unwrap();
        drop(t);
        let err = OnlineTable::<u64>::builder()
            .columns(2)
            .durability(Durability::Wal {
                dir: dir.clone(),
                fsync: false,
            })
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::Config { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! A background merge scheduler (Section 3's strategy (b)).
//!
//! "We see two scheduling strategies: a) merging with all available
//! resources and b) minimizing resource utilization by constantly merging in
//! the background. ... A scheduling algorithm could constantly analyze the
//! available bandwidth and thus adjust the degree of parallelization for the
//! merge process." (Sections 3, 9)
//!
//! [`SourceScheduler`] owns a daemon thread that polls a [`MergeSource`]
//! through a [`ResourceGovernor`] — the piece that turns the merge
//! primitive into the hands-off system the paper describes. Every poll
//! round the governor samples read/write/memory pressure and emits the
//! round's [`MergeGrant`] (see [`crate::governor`] for the decision
//! table); [`SourceScheduler::spawn`] with a plain [`MergePolicy`] wraps
//! the policy in a default governor, so the static behavior is the
//! baseline row of that table. The scheduler supports pausing (it starts
//! nothing new while paused) and reports cumulative statistics including
//! the bounded trace of recent grant decisions.
//!
//! The scheduler is generic over *what* it merges: [`MergeScheduler`] is the
//! single-[`OnlineTable`] instance; the sharded generalization (N tables,
//! at most K concurrent merges, highest priority first) lives in
//! [`crate::shard::ShardedScheduler`] and polls the same governor core.

use crate::governor::{GovernorConfig, GrantRecord, LoadView, ResourceGovernor};
use crate::manager::{MergePolicy, OnlineTable};
use crate::pipeline::MergeGrant;
use crate::stats::StageTimings;
use hyrise_storage::{MemoryReport, Value};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What one completed background merge moved and cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Tuples moved from delta partitions into main partitions (per-column
    /// sum).
    pub tuples_moved: u64,
    /// Delta **rows** drained by the merge (`tuples_moved / N_C` — every
    /// column drains the same rows). This is the unit the governor's
    /// write-pressure window corrects with: delta lengths are row counts,
    /// so crediting the per-column sum back would overstate the insert
    /// rate by the column count.
    pub rows_moved: u64,
    /// Wall time of the merge.
    pub wall: Duration,
    /// Per-stage breakdown (summed over columns) — what the paper's
    /// Figure 7/8 stage-level plots are built from.
    pub stages: StageTimings,
}

/// Something a background scheduler can merge: reports its merge-trigger
/// ratio (plus the governor's write/memory samples) and runs one merge on
/// demand. Implemented by [`OnlineTable`]; a resource-granting scheduler
/// ([`SourceScheduler`], [`crate::shard::ShardedScheduler`]) needs nothing
/// more from its tables. *When* to merge is not the source's call — the
/// [`ResourceGovernor`] decides eligibility each round from
/// `delta_fraction × pressure` against the policy trigger.
pub trait MergeSource: Send + Sync + 'static {
    /// The merge-trigger ratio `N_D / max(N_M, 1)` (always finite; see
    /// [`OnlineTable::delta_fraction`]).
    fn delta_fraction(&self) -> f64;

    /// Tuples currently awaiting a merge — the governor's write-pressure
    /// sample (delta growth between polls). The default suits sources
    /// that cannot count; real tables should override.
    fn delta_tuples(&self) -> usize {
        0
    }

    /// Byte-level accounting for the governor's memory-pressure signal.
    /// The default (all zeros) never triggers memory pressure; real
    /// tables should override.
    fn memory_report(&self) -> MemoryReport {
        MemoryReport::default()
    }

    /// Cumulative rows ever inserted (monotonic). The governor differences
    /// successive polls into a sustained per-source write rate and ranks
    /// hot sources' merges first. The default (always zero) opts out of
    /// the boost; real tables should override.
    fn inserted_rows(&self) -> u64 {
        0
    }

    /// Run one merge under `grant` (threads, strategy, memory budget).
    /// Returns `None` when the merge did not commit (cancelled); schedulers
    /// simply retry on the next poll.
    fn run_merge(&self, grant: MergeGrant) -> Option<MergeOutcome>;
}

impl<V: Value> MergeSource for OnlineTable<V> {
    fn delta_fraction(&self) -> f64 {
        OnlineTable::delta_fraction(self)
    }

    fn delta_tuples(&self) -> usize {
        self.delta_len()
    }

    fn memory_report(&self) -> MemoryReport {
        OnlineTable::memory_report(self)
    }

    fn inserted_rows(&self) -> u64 {
        OnlineTable::inserted_rows(self)
    }

    fn run_merge(&self, grant: MergeGrant) -> Option<MergeOutcome> {
        let stats = self.merge_with(grant, None).ok()?;
        Some(MergeOutcome {
            tuples_moved: stats.columns.iter().map(|c| c.n_d as u64).sum(),
            rows_moved: stats.columns.first().map_or(0, |c| c.n_d as u64),
            wall: stats.t_wall,
            stages: stats.stage_timings(),
        })
    }
}

/// Cumulative scheduler statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SchedulerStats {
    /// Merges completed.
    pub merges: u64,
    /// Tuples moved from delta partitions into main partitions (per column
    /// sum).
    pub tuples_merged: u64,
    /// Total milliseconds spent inside merges.
    pub merge_millis: u64,
    /// Bounded trace of the governor's recent grant decisions (strategy,
    /// threads, budget K, triggering signal), oldest first.
    pub grants: Vec<GrantRecord>,
}

/// Handle to a running background merge scheduler over one [`MergeSource`].
/// Dropping the handle stops the daemon (joining its thread).
pub struct SourceScheduler<S: MergeSource> {
    source: Arc<S>,
    governor: Arc<ResourceGovernor>,
    stop: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    merges: Arc<AtomicU64>,
    tuples: Arc<AtomicU64>,
    millis: Arc<AtomicU64>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The single-table scheduler: a [`SourceScheduler`] over one
/// [`OnlineTable`].
pub type MergeScheduler<V> = SourceScheduler<OnlineTable<V>>;

impl<S: MergeSource> SourceScheduler<S> {
    /// Spawn a scheduler over `source` with `policy`, checking the trigger
    /// every `poll`. The policy is wrapped in a default
    /// [`ResourceGovernor`] ([`GovernorConfig::from_policy`]): same
    /// trigger, same grant at baseline, plus opportunistic thread raises
    /// when the process is read-idle. Use [`Self::spawn_governed`] to tune
    /// the adaptive behavior.
    pub fn spawn(source: Arc<S>, policy: MergePolicy, poll: Duration) -> Self {
        Self::spawn_governed(
            source,
            ResourceGovernor::new(GovernorConfig::from_policy(policy)),
            poll,
        )
    }

    /// Spawn a scheduler whose per-round grants come from `governor`.
    pub fn spawn_governed(source: Arc<S>, governor: ResourceGovernor, poll: Duration) -> Self {
        let governor = Arc::new(governor);
        let stop = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(false));
        let merges = Arc::new(AtomicU64::new(0));
        let tuples = Arc::new(AtomicU64::new(0));
        let millis = Arc::new(AtomicU64::new(0));

        let handle = {
            let source = Arc::clone(&source);
            let governor = Arc::clone(&governor);
            let stop = Arc::clone(&stop);
            let paused = Arc::clone(&paused);
            let merges = Arc::clone(&merges);
            let tuples = Arc::clone(&tuples);
            let millis = Arc::clone(&millis);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if !paused.load(Ordering::Relaxed) {
                        let plan = governor.plan(&LoadView::of_source(source.as_ref()));
                        if !plan.selected.is_empty() {
                            if let Some(out) = source.run_merge(plan.grant) {
                                merges.fetch_add(1, Ordering::Relaxed);
                                tuples.fetch_add(out.tuples_moved, Ordering::Relaxed);
                                millis.fetch_add(out.wall.as_millis() as u64, Ordering::Relaxed);
                                governor.record_outcome(&out);
                            }
                        }
                    }
                    std::thread::sleep(poll);
                }
            })
        };
        Self {
            source,
            governor,
            stop,
            paused,
            merges,
            tuples,
            millis,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// The merge source being managed (the table, for [`MergeScheduler`]).
    pub fn table(&self) -> &Arc<S> {
        &self.source
    }

    /// The governor granting this scheduler's merges.
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.governor
    }

    /// Pause scheduling: no new merges start until [`Self::resume`]. An
    /// in-flight merge completes (the paper's pause hook applies between
    /// merges; mid-merge pausing is the incremental session's job).
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Relaxed);
    }

    /// Resume scheduling after [`Self::pause`].
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Relaxed);
    }

    /// Is the scheduler currently paused?
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Relaxed)
    }

    /// Snapshot of cumulative statistics (including the governor's recent
    /// grant trace).
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            merges: self.merges.load(Ordering::Relaxed),
            tuples_merged: self.tuples.load(Ordering::Relaxed),
            merge_millis: self.millis.load(Ordering::Relaxed),
            grants: self.governor.recent_grants(),
        }
    }

    /// Stop the daemon and wait for it to exit. Called automatically on
    /// drop; explicit calls let tests assert on the final state.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl<S: MergeSource> Drop for SourceScheduler<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_rows(table: &OnlineTable<u64>, n: u64, tag: u64) {
        for i in 0..n {
            table.insert_row(&[tag + i, tag + i + 1]);
        }
    }

    #[test]
    fn scheduler_merges_when_triggered() {
        let table = Arc::new(OnlineTable::<u64>::new(2));
        insert_rows(&table, 10_000, 0);
        table.merge(2, None).unwrap();

        let policy = MergePolicy {
            delta_fraction: 0.01,
            threads: 2,
            ..MergePolicy::default()
        };
        let sched = MergeScheduler::spawn(Arc::clone(&table), policy, Duration::from_millis(5));
        // Push past the trigger and wait for the daemon.
        insert_rows(&table, 500, 1_000_000);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sched.stats().merges == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        sched.shutdown();
        let stats = sched.stats();
        assert!(stats.merges >= 1, "daemon must have merged");
        assert!(
            stats.tuples_merged >= 500 * 2,
            "both columns' delta tuples counted"
        );
        assert_eq!(table.delta_len(), 0);
        assert_eq!(table.row_count(), 10_500);
    }

    #[test]
    fn paused_scheduler_does_not_merge() {
        let table = Arc::new(OnlineTable::<u64>::new(2));
        insert_rows(&table, 1_000, 0); // fraction N_D/1: always triggered
        let policy = MergePolicy {
            delta_fraction: 0.01,
            threads: 1,
            ..MergePolicy::default()
        };
        let sched = MergeScheduler::spawn(Arc::clone(&table), policy, Duration::from_millis(2));
        sched.pause();
        assert!(sched.is_paused());
        // Give the daemon time it would have used to merge.
        std::thread::sleep(Duration::from_millis(100));
        // It may have completed at most one merge started before the pause.
        let before = sched.stats().merges;
        assert!(
            before <= 1,
            "paused scheduler must not keep merging, ran {before}"
        );
        // Refill the delta while paused: if the daemon won the race and merged
        // everything before the pause landed, resume would otherwise have
        // nothing to do and the test would hang on an empty delta.
        insert_rows(&table, 1_000, 2_000_000);
        sched.resume();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sched.stats().merges == before && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.shutdown();
        assert!(
            sched.stats().merges > before,
            "resume must re-enable merging"
        );
    }

    #[test]
    fn drop_stops_the_daemon() {
        let table = Arc::new(OnlineTable::<u64>::new(2));
        insert_rows(&table, 100, 0);
        let weak = {
            let sched = MergeScheduler::spawn(
                Arc::clone(&table),
                MergePolicy::default(),
                Duration::from_millis(1),
            );
            let _ = sched.stats();
            Arc::downgrade(sched.table())
        };
        // Scheduler dropped: its table Arc released; ours remains.
        assert!(weak.upgrade().is_some());
        drop(table);
        assert!(
            weak.upgrade().is_none(),
            "daemon thread must have released the table"
        );
    }

    #[test]
    fn scheduler_under_concurrent_writes() {
        let table = Arc::new(OnlineTable::<u64>::new(2));
        insert_rows(&table, 5_000, 0);
        table.merge(2, None).unwrap();
        let policy = MergePolicy {
            delta_fraction: 0.02,
            threads: 2,
            ..MergePolicy::default()
        };
        let sched = MergeScheduler::spawn(Arc::clone(&table), policy, Duration::from_millis(1));
        let writer = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    table.insert_row(&[i, i + 1]);
                }
            })
        };
        writer.join().unwrap();
        // Let the scheduler drain the tail.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while table.delta_fraction() > policy.delta_fraction && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        sched.shutdown();
        assert_eq!(
            table.row_count(),
            25_000,
            "no rows lost under daemon merging"
        );
        assert!(
            sched.stats().merges > 1,
            "sustained writes force repeated merges"
        );
        assert!(
            table.delta_fraction() <= policy.delta_fraction,
            "scheduler must keep the delta bounded"
        );
    }

    #[test]
    fn merge_source_trait_reports_through_online_table() {
        let table = OnlineTable::<u64>::new(2);
        insert_rows(&table, 64, 0);
        let src: &dyn MergeSource = &table;
        assert_eq!(src.delta_fraction(), 64.0);
        assert_eq!(src.delta_tuples(), 64);
        assert!(src.memory_report().delta_total() > 0);
        let out = src
            .run_merge(MergeGrant::with_threads(2))
            .expect("uncancelled merge commits");
        assert_eq!(out.tuples_moved, 64 * 2, "both columns counted");
        assert_eq!(src.delta_fraction(), 0.0);
        assert_eq!(src.delta_tuples(), 0);
        assert_eq!(src.memory_report().delta_total(), 0);
    }

    #[test]
    fn governed_scheduler_records_grants_and_shrinks_budget_under_pressure() {
        use crate::governor::{GovernorConfig, GrantSignal, ResourceGovernor};
        let table = Arc::new(OnlineTable::<u64>::new(2));
        insert_rows(&table, 4_000, 0);
        // A soft limit of one byte: every round is memory-pressured, so
        // every grant must carry the shrunk pressure budget.
        let config = GovernorConfig::from_policy(MergePolicy {
            delta_fraction: 0.01,
            threads: 2,
            ..MergePolicy::default()
        })
        .with_memory_soft_limit(1);
        let sched = MergeScheduler::spawn_governed(
            Arc::clone(&table),
            ResourceGovernor::new(config),
            Duration::from_millis(2),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sched.stats().merges == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.shutdown();
        let stats = sched.stats();
        assert!(stats.merges >= 1, "governed daemon must merge");
        assert!(!stats.grants.is_empty(), "grant decisions are traced");
        let g = stats.grants.last().unwrap();
        assert_eq!(g.signal, GrantSignal::MemoryPressure);
        assert_eq!(
            g.budget_columns,
            sched.governor().config().pressure_budget.max_columns(),
            "memory pressure shrinks the merge budget"
        );
        assert_eq!(table.delta_len(), 0, "pressure never blocks draining");
    }
}

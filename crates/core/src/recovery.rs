//! Crash recovery: rebuild an [`OnlineTable`] (or a
//! [`crate::shard::ShardedTable`]) from its durable directory.
//!
//! What is on disk after a crash, and what each piece becomes:
//!
//! | on disk | becomes |
//! |---|---|
//! | `TABLE` manifest | schema check (columns, value width, fsync policy) |
//! | `checkpoint.bin` | the main partitions + validity of rows below it |
//! | sealed `seg-*.wal` | one bit-packed [`hyrise_storage::FrozenDelta`] per column — *frozen* when an in-flight merge resumes, *pending* otherwise |
//! | live `seg-*.wal` | replayed into a fresh tail through the normal insert path |
//! | `merge.ckpt` + `staged/` | the interrupted merge, resumed from its last durable chunk |
//!
//! Replay rules, matching the WAL's ordering contract (see the private
//! `wal` module): a record is appended before its rows publish, so every
//! sealed segment is gap-free (a gap is [`crate::error::Error::Corrupt`]);
//! the live segment replays its maximal contiguous row prefix and
//! tolerates a torn final record; validity flips are row-addressed and
//! idempotent, so they apply last, in log order. A merge is resumed only
//! when its synced begin record exactly accounts for the sealed rows on
//! disk — anything else means the merge never durably started (or already
//! durably finished) and the rows replay as a plain pending delta, which
//! the next merge absorbs identically (merge output depends only on the
//! row value sequence).

use crate::error::{Error, Result};
use crate::governor::{GovernorConfig, ResourceGovernor};
use crate::manager::{MergePolicy, OnlineTable};
use crate::shard::ShardedTable;
use crate::wal::{self, Wal};
use hyrise_storage::{MainPartition, Value};
use std::path::Path;

/// Rebuild the table at `dir` to the exact durable state: byte-identical
/// dictionaries, packed code words, and validity versus the uncrashed
/// process. The WAL is re-attached (continuing the live segment, truncated
/// past any torn record), so the recovered table keeps logging.
pub fn recover<V: Value>(dir: impl AsRef<Path>) -> Result<OnlineTable<V>> {
    recover_impl(dir.as_ref(), None)
}

/// As [`recover`], additionally recording `governor` on the table and
/// deriving the resumed merge's grant from it
/// ([`ResourceGovernor::resume_grant`]) instead of the default grant.
pub fn recover_with<V: Value>(
    dir: impl AsRef<Path>,
    governor: GovernorConfig,
) -> Result<OnlineTable<V>> {
    recover_impl(dir.as_ref(), Some(governor))
}

fn recover_impl<V: Value>(dir: &Path, governor: Option<GovernorConfig>) -> Result<OnlineTable<V>> {
    let manifest = wal::read_manifest(dir)?;
    if manifest.value_bytes != V::BYTES {
        return Err(Error::recovery(format!(
            "table at {} holds {}-byte values, caller asked for {}-byte",
            dir.display(),
            manifest.value_bytes,
            V::BYTES
        )));
    }
    let n_cols = manifest.n_cols;

    // The checkpointed mains (or empty ones for a never-merged table).
    let ckpt = wal::read_checkpoint::<V>(dir)?;
    let (ckpt_rows, mains, ckpt_validity) = match ckpt {
        Some(c) => (c.rows, c.mains, Some(c.validity)),
        None => (
            0,
            (0..n_cols).map(|_| MainPartition::empty()).collect(),
            None,
        ),
    };
    if mains.len() != n_cols {
        return Err(Error::recovery(format!(
            "checkpoint has {} columns, manifest says {n_cols}",
            mains.len()
        )));
    }

    // Segments: drop the ones the checkpoint already absorbed (a crash
    // between checkpoint write and truncation leaves them behind), then
    // read the rest. All but the last must be sealed; the last, when
    // unsealed, is the live segment.
    let mut bases = Vec::new();
    for base in wal::list_segments(dir)? {
        if base < ckpt_rows {
            wal::remove_segment(dir, base)?;
        } else {
            bases.push(base);
        }
    }
    let mut segments = Vec::with_capacity(bases.len());
    for &base in &bases {
        segments.push(wal::read_segment::<V>(
            &wal::segment_file(dir, base),
            base,
            n_cols,
        )?);
    }
    let live = match segments.last() {
        Some(s) if !s.sealed => Some(segments.pop().expect("just matched")),
        _ => None,
    };

    // Sealed segments must chain contiguously from the checkpoint and be
    // internally gap-free (the ordering contract guarantees both for any
    // segment that ends with a seal record).
    let mut expected = ckpt_rows;
    let mut deltas: Vec<Vec<V>> = (0..n_cols).map(|_| Vec::new()).collect();
    let mut sealed_rows = 0usize;
    let mut flips: Vec<(usize, bool)> = Vec::new();
    for seg in &segments {
        if !seg.sealed {
            return Err(Error::corrupt(
                wal::segment_file(dir, seg.base),
                0,
                "unsealed segment below the live segment",
            ));
        }
        if seg.base != expected {
            return Err(Error::recovery(format!(
                "segment gap: expected base {expected}, found {}",
                seg.base
            )));
        }
        let rows = fold_segment_rows(dir, seg, &mut deltas, true)?;
        sealed_rows += rows;
        expected += rows;
        flips.extend_from_slice(&seg.flips);
    }

    // An in-flight merge resumes only when its begin record accounts for
    // exactly the sealed rows; otherwise the log is stale (the merge
    // finished, was cancelled, or never durably began) and the rows
    // replay as a pending delta.
    let mckpt = wal::read_merge_log(dir, n_cols)?;
    let resume = match &mckpt {
        Some(m) if m.frozen_end == ckpt_rows + sealed_rows && sealed_rows > 0 => true,
        Some(_) => {
            wal::clear_merge_log(dir)?;
            false
        }
        None => false,
    };

    let mut table = OnlineTable::from_recovered_parts(mains, deltas, resume);

    // Validity: checkpoint bits for the checkpointed prefix, replayed
    // inserts are valid until flipped, flips go last (idempotent,
    // row-addressed, so re-applying one the checkpoint already captured
    // is harmless).
    let validity = table.validity_handle();
    if let Some(v) = &ckpt_validity {
        for i in 0..ckpt_rows {
            if v.is_valid(i) {
                validity.set_valid(i);
            }
        }
    }
    for i in ckpt_rows..ckpt_rows + sealed_rows {
        validity.set_valid(i);
    }

    // The live segment replays through the normal insert path — the WAL
    // is not attached yet, so replay does not re-log.
    let live_base = ckpt_rows + sealed_rows;
    let (live_clean_len, live_flips) = match live {
        Some(seg) => {
            if seg.base != live_base {
                return Err(Error::recovery(format!(
                    "live segment base {} does not follow the sealed rows ({live_base})",
                    seg.base
                )));
            }
            let mut tail: Vec<Vec<V>> = (0..n_cols).map(|_| Vec::new()).collect();
            let rows = fold_segment_rows(dir, &seg, &mut tail, false)?;
            let mut batch: Vec<Vec<V>> = Vec::with_capacity(rows);
            for r in 0..rows {
                batch.push(tail.iter().map(|col| col[r]).collect());
            }
            if !batch.is_empty() {
                let range = table
                    .insert_rows(&batch)
                    .expect("no wal attached during replay");
                debug_assert_eq!(range.start, live_base, "replay preserves tuple ids");
            }
            (seg.clean_len, seg.flips)
        }
        None => (0, Vec::new()),
    };
    flips.extend(live_flips);

    let total = table.row_count();
    for (row, valid) in flips {
        if row >= total {
            return Err(Error::recovery(format!(
                "validity flip targets row {row}, but only {total} rows replayed"
            )));
        }
        if valid {
            validity.set_valid(row);
        } else {
            validity.invalidate(row);
        }
    }

    // Re-attach the log (continuing the live segment truncated to its
    // clean prefix, or opening a fresh one when the crash landed between
    // a seal and the next segment's creation), then resume the merge.
    table.set_wal(Some(Wal::attach(
        dir,
        manifest.fsync,
        live_base,
        live_clean_len,
    )?));
    table.set_governor_config(governor.clone());

    if resume {
        let m = mckpt.expect("resume implies a merge checkpoint");
        let mut staged = Vec::with_capacity(m.done_cols.len());
        for col in m.done_cols {
            staged.push((col, wal::read_staged_column::<V>(dir, col)?));
        }
        let grant = match governor {
            Some(cfg) => ResourceGovernor::new(cfg).resume_grant(table.delta_fraction()),
            None => MergePolicy::default().grant(),
        };
        table.resume_merge_with(grant, staged)?;
    }
    Ok(table)
}

/// Fold a segment's insert batches into per-column value vectors, in
/// global row order (the shape [`hyrise_storage::FrozenDelta`] freezes
/// from). Returns the number of contiguous rows folded. `sealed` demands
/// complete coverage (a sealed segment cannot have holes); a live segment
/// keeps its maximal contiguous prefix and drops the unpublished rest.
fn fold_segment_rows<V: Value>(
    dir: &Path,
    seg: &wal::SegmentData<V>,
    deltas: &mut [Vec<V>],
    sealed: bool,
) -> Result<usize> {
    let n_cols = deltas.len();
    // Batches append under a mutex but *reserve* slots beforehand, so
    // append order need not be row order: sort by start row.
    let mut order: Vec<usize> = (0..seg.inserts.len()).collect();
    order.sort_by_key(|&i| seg.inserts[i].start);
    let mut next = seg.base;
    let mut folded = 0usize;
    for &i in &order {
        let rec = &seg.inserts[i];
        if rec.start != next {
            if sealed {
                return Err(Error::corrupt(
                    wal::segment_file(dir, seg.base),
                    0,
                    format!(
                        "sealed segment skips rows {next}..{} (gap before a seal is impossible \
                         under the append-before-publish contract)",
                        rec.start
                    ),
                ));
            }
            break; // live segment: clean prefix only
        }
        for r in 0..rec.n_rows {
            for (c, d) in deltas.iter_mut().enumerate() {
                d.push(rec.values[r * n_cols + c]);
            }
        }
        next += rec.n_rows;
        folded += rec.n_rows;
    }
    Ok(folded)
}

/// Rebuild a durable [`ShardedTable`] from its root directory: the
/// `SHARDS` manifest restores the routing layout, and every `shard-<i>/`
/// directory recovers independently (per-shard logs, per-shard merges). A
/// multi-shard batch torn by the crash recovers torn — see
/// [`ShardedTable::insert_rows`] for why that is the honest contract.
pub fn recover_sharded<V: Value>(root: impl AsRef<Path>) -> Result<ShardedTable<V>> {
    let root = root.as_ref();
    let m = wal::read_sharded_manifest::<V>(root)?;
    if m.value_bytes != V::BYTES {
        return Err(Error::recovery(format!(
            "sharded table at {} holds {}-byte values, caller asked for {}-byte",
            root.display(),
            m.value_bytes,
            V::BYTES
        )));
    }
    let mut shards = Vec::with_capacity(m.n_shards);
    let bank = std::sync::Arc::new(crate::pipeline::SpareBank::new());
    for i in 0..m.n_shards {
        let shard: OnlineTable<V> = recover(wal::shard_dir(root, i))?;
        if shard.num_columns() != m.n_cols {
            return Err(Error::recovery(format!(
                "shard {i} has {} columns, sharded manifest says {}",
                shard.num_columns(),
                m.n_cols
            )));
        }
        shards.push(shard.with_spare_bank(std::sync::Arc::clone(&bank)));
    }
    Ok(ShardedTable::from_parts(shards, m.by, m.key_col))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimized::merge_column_optimized;
    use crate::wal::MergeLog;
    use hyrise_storage::DeltaPartition;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hyrise-recovery-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rows(n: u64) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| vec![i.wrapping_mul(97) % 501, i.wrapping_mul(31) % 777])
            .collect()
    }

    /// Hand-build the directory a crash leaves mid-merge — sealed rows, a
    /// synced begin record, column 0 staged and chunk-committed, column 1
    /// not started — and recovery must finish the merge byte-identically
    /// to a table that merged without crashing.
    #[test]
    fn interrupted_merge_resumes_from_staged_columns() {
        let dir = temp_dir("resume");
        std::fs::create_dir_all(&dir).unwrap();
        wal::write_manifest(
            &dir,
            &wal::Manifest {
                n_cols: 2,
                value_bytes: 8,
                fsync: false,
            },
        )
        .unwrap();
        let data = rows(300);
        {
            let w: Wal<u64> = Wal::create(&dir, false, 0).unwrap();
            w.append_insert(0, &data).unwrap();
            w.seal_and_rotate(300).unwrap();
            // The crash point: merge durably begun, first chunk staged.
            let log = MergeLog::begin(&dir, 300, 2).unwrap();
            let mut delta0 = DeltaPartition::new();
            for r in &data {
                delta0.insert(r[0]);
            }
            let merged0 = merge_column_optimized(&MainPartition::empty(), &delta0).main;
            wal::write_staged_column(&dir, 0, &merged0).unwrap();
            log.chunk_done(&[0]).unwrap();
        }

        let back: OnlineTable<u64> = recover(&dir).unwrap();
        let reference = OnlineTable::<u64>::new(2);
        reference.insert_rows(&data).unwrap();
        reference.merge(1, None).unwrap();

        assert_eq!(back.row_count(), 300);
        assert_eq!(back.main_len(), 300, "recovery finished the merge");
        assert_eq!(back.delta_len(), 0);
        let (sa, sb) = (back.snapshot(), reference.snapshot());
        for c in 0..2 {
            assert_eq!(
                sa.col(c).main().dictionary().values(),
                sb.col(c).main().dictionary().values(),
                "column {c}: dictionaries differ"
            );
            assert_eq!(
                sa.col(c).main().packed_codes().words(),
                sb.col(c).main().packed_codes().words(),
                "column {c}: packed words differ"
            );
        }
        // The resumed merge checkpointed: a second recovery replays from
        // the checkpoint alone (segments truncated) and still matches.
        drop(back);
        let again: OnlineTable<u64> = recover(&dir).unwrap();
        assert_eq!(again.main_len(), 300);
        assert_eq!(
            again.snapshot().col(0).main().dictionary().values(),
            sb.col(0).main().dictionary().values()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A begin record that does not account for the sealed rows is stale
    /// (the merge committed, or never durably started): the log is
    /// discarded and the rows replay as a plain pending delta.
    #[test]
    fn stale_merge_log_is_discarded_and_rows_replay_pending() {
        let dir = temp_dir("stale");
        std::fs::create_dir_all(&dir).unwrap();
        wal::write_manifest(
            &dir,
            &wal::Manifest {
                n_cols: 2,
                value_bytes: 8,
                fsync: false,
            },
        )
        .unwrap();
        let data = rows(100);
        {
            let w: Wal<u64> = Wal::create(&dir, false, 0).unwrap();
            w.append_insert(0, &data).unwrap();
            w.seal_and_rotate(100).unwrap();
            let _log = MergeLog::begin(&dir, 42, 2).unwrap(); // wrong frozen_end
        }
        let back: OnlineTable<u64> = recover(&dir).unwrap();
        assert_eq!(back.row_count(), 100);
        assert_eq!(back.main_len(), 0, "no resume: rows stay in the delta");
        assert_eq!(back.delta_len(), 100);
        assert!(
            wal::read_merge_log(&dir, 2).unwrap().is_none(),
            "the stale log was cleared"
        );
        // And the table is fully usable: the next merge absorbs the rows.
        back.merge(1, None).unwrap();
        assert_eq!(back.main_len(), 100);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
